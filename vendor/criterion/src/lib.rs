//! Vendored, dependency-free stand-in for the subset of the `criterion`
//! bench harness this workspace uses.
//!
//! The build environment has no network access, so the workspace carries
//! its own harness: each `bench_function` runs a short warm-up, then
//! measures batches until a time budget is spent, and prints the mean,
//! minimum and iteration count. There is no statistical analysis or
//! HTML report — just honest wall-clock numbers suitable for tracking
//! the perf trajectory in CI logs.
//!
//! Environment knobs:
//!
//! * `AI2_BENCH_BUDGET_MS` — measurement budget per benchmark
//!   (default 1500 ms),
//! * `AI2_BENCH_MIN_ITERS` — minimum timed iterations (default 5).

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing hint, accepted for API compatibility and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    min: Duration,
    budget: Duration,
    min_iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        let budget_ms = std::env::var("AI2_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1500u64);
        let min_iters = std::env::var("AI2_BENCH_MIN_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5u64);
        Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            budget: Duration::from_millis(budget_ms),
            min_iters,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up (untimed)
        black_box(routine());
        loop {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters_done += 1;
            if self.total >= self.budget && self.iters_done >= self.min_iters {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters_done += 1;
            if self.total >= self.budget && self.iters_done >= self.min_iters {
                break;
            }
        }
    }
}

fn report(name: &str, b: &Bencher) {
    let mean = if b.iters_done > 0 {
        b.total / b.iters_done as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {name:<44} mean {:>12} min {:>12} ({} iters)",
        fmt_duration(mean),
        fmt_duration(b.min),
        b.iters_done
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&name, &b);
        self
    }

    /// Opens a named group; member benches print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into());
        let mut b = Bencher::new();
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Ends the group (no-op, for API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
