//! Vendored, dependency-free stand-in for the subset of `serde_json`
//! this workspace uses: [`to_string`] / [`from_str`] over the stand-in
//! `serde` document model, plus an [`Error`] type the callers wrap.
//!
//! Numbers are rendered from their preserved literal text, so `u64` and
//! `f64` values survive a save/load round trip bit-exactly. Non-finite
//! floats are rendered as bare `NaN` / `inf` literals — not interoperable
//! JSON, but unambiguous for the workspace's own files (and `f64::parse`
//! accepts them back).

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

pub use serde::Value as JsonValue;

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Renders a value as a compact JSON string.
///
/// # Errors
///
/// Never fails for the document model used here; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed input or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing input at byte {}", p.i)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.i,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.i)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        // accept the same character set `f64`/`u64` parsing understands,
        // including the non-standard NaN / inf spellings we emit
        while let Some(b) = self.peek() {
            if b.is_ascii_digit()
                || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                || b.is_ascii_alphabetic()
            {
                self.i += 1;
            } else {
                break;
            }
        }
        if start == self.i {
            return Err(Error(format!("expected number at byte {start}")));
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error("non-utf8 number".into()))?;
        Ok(Value::Number(text.to_string()))
    }

    /// Reads exactly four hex digits at the cursor (the payload of a
    /// `\uXXXX` escape) and advances past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .s
            .get(self.i..self.i + 4)
            .ok_or_else(|| Error("short \\u escape".into()))?;
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err(Error("bad \\u escape".into()));
        }
        let code = u32::from_str_radix(std::str::from_utf8(hex).expect("ascii hex"), 16)
            .expect("4 hex digits fit u32");
        self.i += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let code = match hi {
                                // High surrogate: a low surrogate must
                                // follow (JSON escapes non-BMP chars as
                                // UTF-16 surrogate pairs).
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(Error(
                                            "high surrogate not followed by \\u escape".into(),
                                        ));
                                    }
                                    self.i += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(Error(
                                            "high surrogate not followed by \\u escape".into(),
                                        ));
                                    }
                                    self.i += 1;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(Error(format!(
                                            "expected low surrogate after \\u{hi:04x}, got \\u{lo:04x}"
                                        )));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error(format!("lone low surrogate \\u{hi:04x}")));
                                }
                                c => c,
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            // hex4 consumed everything; skip the shared
                            // escape-length increment below
                            continue;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // consume one UTF-8 encoded char
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error("non-utf8 string".into()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("bad array separator {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(Error(format!("bad object separator {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let s = to_string(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn roundtrip_floats_exactly() {
        let xs = vec![0.1f64, 1.0 / 3.0, -2.5e-10, 6.02e23];
        let back: Vec<f64> = from_str(&to_string(&xs).unwrap()).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn string_escapes() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F600}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<u64>>("[1,,2]").is_err());
        assert!(from_str::<Vec<u64>>("[1] trailing").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn escaped_strings_from_foreign_encoders_parse() {
        // every escape a spec-conforming encoder may emit
        let s: String = from_str(r#""q\" b\\ s\/ n\n r\r t\t bs\b ff\f ué""#).unwrap();
        assert_eq!(s, "q\" b\\ s/ n\n r\r t\t bs\u{8} ff\u{c} u\u{e9}");
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_chars() {
        // ensure_ascii-style encoders escape non-BMP chars as UTF-16
        // surrogate pairs: U+1F600 (grinning face), U+1D11E (G clef)
        let s: String = from_str(r#""\ud83d\ude00 \ud834\udd1e""#).unwrap();
        assert_eq!(s, "\u{1F600} \u{1D11E}");
        // uppercase hex is equally valid
        let s: String = from_str(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(s, "\u{1F600}");
    }

    #[test]
    fn lone_or_malformed_surrogates_are_rejected() {
        assert!(from_str::<String>(r#""\ud83d""#).is_err()); // lone high
        assert!(from_str::<String>(r#""\ude00""#).is_err()); // lone low
        assert!(from_str::<String>(r#""\ud83dx""#).is_err()); // high + raw char
        assert!(from_str::<String>(r#""\ud83d\n""#).is_err()); // high + other escape
        assert!(from_str::<String>(r#""\ud83d\ud83d""#).is_err()); // high + high
        assert!(from_str::<String>(r#""\u12g4""#).is_err()); // bad hex
        assert!(from_str::<String>(r#""\u+123""#).is_err()); // sign is not hex
        assert!(from_str::<String>(r#""\u12""#).is_err()); // short
    }

    #[test]
    fn arbitrary_model_names_roundtrip_the_wire() {
        // the serving protocol carries user-supplied model names; any
        // Unicode content must survive encode → decode bit-exactly
        let names = [
            "resnet50",
            "llama2_7b \"edge\" build",
            "path\\to\\model",
            "tab\tnewline\nreturn\r",
            "ctrl\u{1}\u{1f}",
            "emoji\u{1F600}\u{1D11E}",
            "中文名 + ünïcödé",
        ];
        for name in names {
            let wire = to_string(&name.to_string()).unwrap();
            let back: String = from_str(&wire).unwrap();
            assert_eq!(back, name, "wire form {wire}");
        }
    }
}
