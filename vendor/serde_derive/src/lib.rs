//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` stand-in crate.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! since the build has no network access): the input item is parsed at
//! the token level just far enough to recover the type name, the field
//! names of structs, and the variant shapes of enums; the generated
//! impls are then rendered as source text and re-parsed.
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields,
//! * tuple and unit structs,
//! * enums whose variants are unit, tuple, or struct-like
//!   (externally-tagged encoding, like real serde's default).
//!
//! Generics and `#[serde(...)]` attributes are intentionally not
//! supported and produce a compile error naming the offending type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_serialize(&item))
}

/// Derives the stand-in `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_deserialize(&item))
}

fn render(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive: generated code failed to parse: {e}\n{code}"))
}

// --------------------------------------------------------------------
// item model

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// --------------------------------------------------------------------
// token-level parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Skips tokens until a top-level comma (angle-bracket depth aware) and
/// consumes the comma itself.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // `:`
        skip_past_comma(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_past_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // skip an optional discriminant (`= expr`) and the trailing comma
        skip_past_comma(&tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

// --------------------------------------------------------------------
// code generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("serde::Value::Object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn ser_variant_arm(ty: &str, v: &Variant) -> String {
    let var = &v.name;
    match &v.fields {
        Fields::Unit => format!("{ty}::{var} => serde::Value::String(String::from(\"{var}\")),"),
        Fields::Tuple(1) => format!(
            "{ty}::{var}(f0) => serde::Value::Object(vec![(String::from(\"{var}\"), \
             serde::Serialize::to_value(f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{var}({}) => serde::Value::Object(vec![(String::from(\"{var}\"), \
                 serde::Value::Array(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        Fields::Named(fs) => {
            let binds = fs.join(", ");
            let entries: Vec<String> = fs
                .iter()
                .map(|f| format!("(String::from(\"{f}\"), serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "{ty}::{var} {{ {binds} }} => serde::Value::Object(vec![(String::from(\"{var}\"), \
                 serde::Value::Object(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: serde::de_field(v, \"{f}\")?"))
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("serde::de_index(v, {k})?"))
                        .collect();
                    format!("Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| de_variant_arm(name, v))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::String(s) => match s.as_str() {{\n\
                                 {units}\n\
                                 other => Err(serde::DeError(format!(\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, content) = &entries[0];\n\
                                 let _ = content;\n\
                                 match tag.as_str() {{\n\
                                     {tagged}\n\
                                     other => Err(serde::DeError(format!(\
                                         \"unknown {name} variant {{other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::DeError(format!(\
                                 \"expected {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}

fn de_variant_arm(ty: &str, v: &Variant) -> String {
    let var = &v.name;
    match &v.fields {
        Fields::Unit => unreachable!("unit variants handled in the string match"),
        Fields::Tuple(1) => {
            format!("\"{var}\" => Ok({ty}::{var}(serde::Deserialize::from_value(content)?)),")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("serde::de_index(content, {k})?"))
                .collect();
            format!("\"{var}\" => Ok({ty}::{var}({})),", inits.join(", "))
        }
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .map(|f| format!("{f}: serde::de_field(content, \"{f}\")?"))
                .collect();
            format!("\"{var}\" => Ok({ty}::{var} {{ {} }}),", inits.join(", "))
        }
    }
}
