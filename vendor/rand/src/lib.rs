//! Vendored, dependency-free stand-in for the small subset of the `rand`
//! crate API this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random_range`, `seq::SliceRandom::shuffle`).
//!
//! The build environment has no network access, so the workspace carries
//! its own implementation. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, fast, and deterministic across platforms,
//! which is all the reproduction needs (every experiment is seeded).
//!
//! This is **not** the real `rand` crate: streams differ from upstream
//! `StdRng`, and only the methods used in-tree are provided.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing RNG trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p {p} out of [0, 1]");
        self.random_f64() < p
    }
}

/// Ranges a value can be uniformly sampled from (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u128<R: Rng>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 everywhere in this workspace; keep the wide type
    // for the i128 arithmetic above.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u = rng.random_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let u = rng.random_f64() as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Deterministic per seed, portable
    /// across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling and choice (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.random_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
