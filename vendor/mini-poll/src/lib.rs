//! Vendored minimal readiness poller — the `mio`-shaped subset the
//! event-driven serve front end needs, with **zero crates.io
//! dependencies** (the build environment is offline; see
//! `vendor/README.md`).
//!
//! * On Linux the backend is `epoll` through hand-declared `extern "C"`
//!   syscall bindings (no `libc` crate in the tree).
//! * On other Unixes the backend is portable `poll(2)`: the registered
//!   fd set is rebuilt into a `pollfd` array on every wait. Slower per
//!   call but semantically identical at this crate's API.
//! * Non-Unix targets compile but every operation returns
//!   [`std::io::ErrorKind::Unsupported`] — the serve crate gates the
//!   event front end on the same condition.
//!
//! The API is level-triggered everywhere: an fd that is still readable
//! keeps reporting readable. Callers register an fd with a `usize`
//! token and get that token back in [`Event`]s; a [`Waker`] (self-pipe)
//! interrupts a blocked [`Poller::wait`] from any thread.

/// What readiness to watch an fd for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a peer hangup to observe).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Watch for nothing (the fd stays registered; useful for
    /// backpressure: park a connection without forgetting it).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd is readable (includes EOF: the read will return 0).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored; reads/writes will fail or
    /// return 0. Reported even when the registered interest was empty.
    pub hangup: bool,
}

pub use sys::{raise_nofile_limit, Poller, Waker};

// --------------------------------------------------------------------
// Linux: epoll
#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    #[allow(non_camel_case_types)]
    type c_int = i32;
    #[allow(non_camel_case_types)]
    type c_void = std::ffi::c_void;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const O_CLOEXEC: c_int = 0o2000000;
    const O_NONBLOCK: c_int = 0o4000;
    const RLIMIT_NOFILE: c_int = 7;

    // x86 kernels lay epoll_event out packed; other arches align it
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    struct epoll_event {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    struct rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP; // hangups are always observed
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// The epoll instance behind [`Poller::wait`].
    pub struct Poller {
        epfd: RawFd,
    }

    // the epoll fd is thread-safe at the kernel level: ctl and wait may
    // race freely
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// A fresh poller.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_create1` failure.
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = epoll_event {
                events: mask_of(interest),
                data: token as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` failure (e.g. the fd is already
        /// registered).
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest (and token) of a registered fd.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` failure.
        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` failure.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks until at least one registered fd is ready (or
        /// `timeout_ms` elapses; `-1` blocks indefinitely), replacing
        /// `events` with the ready set. Interrupted waits retry.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_wait` failure.
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            events.clear();
            let mut buf = [epoll_event { events: 0, data: 0 }; 256];
            let n = loop {
                let rc = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// A self-pipe that interrupts a blocked [`Poller::wait`] from any
    /// thread. Register-once: construction registers the read end under
    /// the given token.
    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        /// A waker registered on `poller` under `token`.
        ///
        /// # Errors
        ///
        /// Returns the pipe or registration failure.
        pub fn new(poller: &Poller, token: usize) -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe2(fds.as_mut_ptr(), O_CLOEXEC | O_NONBLOCK) } < 0 {
                return Err(io::Error::last_os_error());
            }
            let waker = Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            };
            poller.register(waker.read_fd, token, Interest::READABLE)?;
            Ok(waker)
        }

        /// Interrupts the poller. A full pipe means a wake is already
        /// pending — that is success, not an error.
        pub fn wake(&self) {
            let byte = 1u8;
            unsafe { write(self.write_fd, (&raw const byte).cast::<c_void>(), 1) };
        }

        /// Drains pending wake bytes (call after the waker's token
        /// fires, or a level-triggered poller spins on it).
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
                if n <= 0 {
                    return;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    /// Raises the process `RLIMIT_NOFILE` soft limit toward `target`
    /// (clamped to the hard limit) and returns the soft limit actually
    /// in effect afterwards. Benches opening thousands of sockets call
    /// this first; failure is not fatal — the caller sizes itself to
    /// the returned limit.
    pub fn raise_nofile_limit(target: u64) -> u64 {
        unsafe {
            let mut lim = rlimit {
                rlim_cur: 0,
                rlim_max: 0,
            };
            if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
                return 1024;
            }
            if lim.rlim_cur >= target {
                return lim.rlim_cur;
            }
            let want = rlimit {
                rlim_cur: target.min(lim.rlim_max),
                rlim_max: lim.rlim_max,
            };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                want.rlim_cur
            } else {
                lim.rlim_cur
            }
        }
    }
}

// --------------------------------------------------------------------
// other Unixes: poll(2)
#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;

    #[allow(non_camel_case_types)]
    type c_int = i32;
    #[allow(non_camel_case_types)]
    type c_short = i16;
    #[allow(non_camel_case_types)]
    type c_ulong = u64;
    #[allow(non_camel_case_types)]
    type c_void = std::ffi::c_void;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0x0004; // BSD/macOS value
    const RLIMIT_NOFILE: c_int = 8; // BSD/macOS value

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct pollfd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[repr(C)]
    struct rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }

    /// The registered-set poller: `poll(2)` over a rebuilt `pollfd`
    /// array per wait.
    pub struct Poller {
        fds: Mutex<HashMap<RawFd, (usize, Interest)>>,
    }

    impl Poller {
        /// A fresh poller.
        ///
        /// # Errors
        ///
        /// Infallible on this backend (signature matches Linux).
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Mutex::new(HashMap::new()),
            })
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        ///
        /// Rejects double registration.
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().expect("poller set poisoned");
            if fds.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        /// Changes the interest (and token) of a registered fd.
        ///
        /// # Errors
        ///
        /// Rejects unknown fds.
        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().expect("poller set poisoned");
            match fds.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Rejects unknown fds.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut fds = self.fds.lock().expect("poller set poisoned");
            match fds.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Blocks until at least one registered fd is ready (or
        /// `timeout_ms` elapses; `-1` blocks indefinitely), replacing
        /// `events` with the ready set.
        ///
        /// # Errors
        ///
        /// Returns the `poll` failure.
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            events.clear();
            let (mut pfds, tokens): (Vec<pollfd>, Vec<usize>) = {
                let fds = self.fds.lock().expect("poller set poisoned");
                fds.iter()
                    .map(|(&fd, &(token, interest))| {
                        let mut ev: c_short = 0;
                        if interest.readable {
                            ev |= POLLIN;
                        }
                        if interest.writable {
                            ev |= POLLOUT;
                        }
                        (
                            pollfd {
                                fd,
                                events: ev,
                                revents: 0,
                            },
                            token,
                        )
                    })
                    .unzip()
            };
            let n = loop {
                let rc = unsafe {
                    poll(
                        pfds.as_mut_ptr(),
                        pfds.len() as c_ulong,
                        timeout_ms as c_int,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for (pfd, token) in pfds.iter().zip(tokens) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    hangup: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    /// A self-pipe that interrupts a blocked [`Poller::wait`] from any
    /// thread.
    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        /// A waker registered on `poller` under `token`.
        ///
        /// # Errors
        ///
        /// Returns the pipe or registration failure.
        pub fn new(poller: &Poller, token: usize) -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            unsafe {
                fcntl(fds[0], F_SETFL, O_NONBLOCK);
                fcntl(fds[1], F_SETFL, O_NONBLOCK);
            }
            let waker = Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            };
            poller.register(waker.read_fd, token, Interest::READABLE)?;
            Ok(waker)
        }

        /// Interrupts the poller (a full pipe means a wake is already
        /// pending).
        pub fn wake(&self) {
            let byte = 1u8;
            unsafe { write(self.write_fd, (&raw const byte).cast::<c_void>(), 1) };
        }

        /// Drains pending wake bytes.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
                if n <= 0 {
                    return;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    /// Raises the `RLIMIT_NOFILE` soft limit toward `target`; returns
    /// the limit in effect afterwards.
    pub fn raise_nofile_limit(target: u64) -> u64 {
        unsafe {
            let mut lim = rlimit {
                rlim_cur: 0,
                rlim_max: 0,
            };
            if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
                return 1024;
            }
            if lim.rlim_cur >= target {
                return lim.rlim_cur;
            }
            let want = rlimit {
                rlim_cur: target.min(lim.rlim_max),
                rlim_max: lim.rlim_max,
            };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                want.rlim_cur
            } else {
                lim.rlim_cur
            }
        }
    }
}

// --------------------------------------------------------------------
// non-Unix: stub (the event front end is gated off)
#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest};
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mini-poll supports Unix targets only",
        ))
    }

    /// Stub poller for non-Unix targets; every operation fails with
    /// [`io::ErrorKind::Unsupported`].
    pub struct Poller;

    impl Poller {
        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// Always `Unsupported`.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// Always `Unsupported`.
        pub fn register(&self, _fd: i32, _token: usize, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// Always `Unsupported`.
        pub fn modify(&self, _fd: i32, _token: usize, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// Always `Unsupported`.
        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }

        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// Always `Unsupported`.
        pub fn wait(&self, _events: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Stub waker for non-Unix targets.
    pub struct Waker;

    impl Waker {
        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// Always `Unsupported`.
        pub fn new(_poller: &Poller, _token: usize) -> io::Result<Waker> {
            unsupported()
        }

        /// No-op on this target.
        pub fn wake(&self) {}

        /// No-op on this target.
        pub fn drain(&self) {}
    }

    /// No-op on this target; reports a conventional default.
    pub fn raise_nofile_limit(_target: u64) -> u64 {
        1024
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn sockets_report_readiness_under_their_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        // nothing pending: a short wait times out with no events
        let mut events = Vec::new();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty(), "{events:?}");

        // a connection attempt makes the listener readable
        let mut client = TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );
        let (mut server, _) = listener.accept().unwrap();

        // a fresh socket is writable, not readable
        server.set_nonblocking(true).unwrap();
        poller
            .register(server.as_raw_fd(), 8, Interest::BOTH)
            .unwrap();
        poller.wait(&mut events, 2000).unwrap();
        let ev = events.iter().find(|e| e.token == 8).expect("socket event");
        assert!(ev.writable && !ev.readable, "{ev:?}");

        // bytes in flight flip it readable; NONE parks it silently
        client.write_all(b"x").unwrap();
        poller
            .modify(server.as_raw_fd(), 8, Interest::READABLE)
            .unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 8 && e.readable),
            "{events:?}"
        );
        poller
            .modify(server.as_raw_fd(), 8, Interest::NONE)
            .unwrap();
        poller.wait(&mut events, 10).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 8 && e.readable),
            "parked fd still reported: {events:?}"
        );

        // hangup: client closes; re-arm read interest and observe
        let mut byte = [0u8; 1];
        server.read_exact(&mut byte).unwrap();
        drop(client);
        poller
            .modify(server.as_raw_fd(), 8, Interest::READABLE)
            .unwrap();
        poller.wait(&mut events, 2000).unwrap();
        let ev = events.iter().find(|e| e.token == 8).expect("hangup event");
        assert!(ev.readable, "EOF must be observable as a read: {ev:?}");
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_from_another_thread() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::new(Waker::new(&poller, 99).unwrap());
        let w = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
            w.wake(); // double wakes coalesce harmlessly
        });
        let mut events = Vec::new();
        poller.wait(&mut events, 5000).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        handle.join().unwrap();
        // drained: the next short wait is quiet again
        poller.wait(&mut events, 10).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 99),
            "drain left the waker hot: {events:?}"
        );
    }

    #[test]
    fn nofile_limit_reports_a_usable_value() {
        let limit = raise_nofile_limit(4096);
        assert!(limit >= 256, "implausible fd limit {limit}");
    }
}
