//! Vendored, dependency-free stand-in for the subset of `serde` this
//! workspace uses: the `Serialize` / `Deserialize` traits, their derive
//! macros (see `vendor/serde_derive`), and a small document [`Value`]
//! tree that `serde_json` renders to and parses from.
//!
//! The build environment has no network access, so the workspace carries
//! its own implementation. The data model is deliberately tiny:
//!
//! * numbers are kept as their literal text ([`Value::Number`]), so
//!   `u64`/`f32`/`f64` round-trip bit-exactly through the shortest
//!   Rust formatting,
//! * enums use the externally-tagged encoding the real serde defaults
//!   to (`"Variant"`, `{"Variant": content}`),
//! * structs become JSON objects in field order.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed or to-be-rendered JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// A numeric literal, kept as text for exact round-trips.
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure (wrong shape, missing field, bad number…).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Value`] (stand-in for `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` into the document model.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`] (stand-in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Parses `self` out of the document model.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent from the document.
    /// `None` (the default) makes the field required; `Option<T>`
    /// overrides this so an omitted field reads as `None` — matching
    /// real serde's treatment of `Option` fields.
    fn from_missing() -> Option<Self> {
        None
    }
}

/// Extracts and deserializes a struct field (used by the derive macro).
///
/// # Errors
///
/// Returns a [`DeError`] if `v` is not an object, the key is missing, or
/// the field fails to parse.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v.get(key) {
        Some(field) => T::from_value(field),
        None => T::from_missing().ok_or_else(|| DeError(format!("missing field `{key}`"))),
    }
}

/// Extracts and deserializes a tuple element (used by the derive macro).
///
/// # Errors
///
/// Returns a [`DeError`] if `v` is not an array or is too short.
pub fn de_index<T: Deserialize>(v: &Value, idx: usize) -> Result<T, DeError> {
    match v {
        Value::Array(items) => match items.get(idx) {
            Some(item) => T::from_value(item),
            None => Err(DeError(format!("missing tuple element {idx}"))),
        },
        _ => Err(DeError("expected array".into())),
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(format!("{self}"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(s) => s.parse::<$t>().map_err(|e| {
                        DeError(format!("bad {} literal {s:?}: {e}", stringify!($t)))
                    }),
                    _ => Err(DeError(format!("expected number, got {v:?}"))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok((de_index(v, 0)?, de_index(v, 1)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok((de_index(v, 0)?, de_index(v, 1)?, de_index(v, 2)?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError(format!("expected object, got {v:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // sorted for deterministic output
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError(format!("expected object, got {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_text_roundtrips_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e300, -2.5e-10, 123_456_789.123_456_79] {
            let v = x.to_value();
            assert_eq!(f64::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn option_and_vec_shapes() {
        let v = Some(3u32).to_value();
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let back = BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
