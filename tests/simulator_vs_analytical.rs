//! Cross-validation of the two cost substrates: the cycle-level systolic
//! simulator (`ai2-systolic`) and the analytical MAESTRO-style model
//! (`ai2-maestro`) must agree on compute-side *trends* — the analytical
//! model is only trustworthy as a DSE oracle if its latency ordering
//! matches what an actual array does.

use airchitect_repro::maestro::{AcceleratorConfig, CostModel, Dataflow, GemmWorkload};
use airchitect_repro::systolic_check::spearman64;
use airchitect_repro::tensor::stats::spearman;

/// Compute-side comparison points: compute-bound settings (huge L2, so
/// the analytical model's DRAM term never binds).
fn analytical_compute_cycles(wl: &GemmWorkload, pes: u32) -> f64 {
    let model = CostModel::default();
    let hw = AcceleratorConfig::new(pes, 2 * 1024 * 1024);
    let r = model.evaluate(wl, Dataflow::OutputStationary, &hw);
    r.compute_cycles as f64 + r.fill_drain_cycles as f64
}

fn simulated_cycles(wl: &GemmWorkload, pes: u32) -> f64 {
    use airchitect_repro::systolic::{ArrayConfig, GemmSimulation};
    let cfg = ArrayConfig::squarest(pes as usize);
    let (m, n, k) = (wl.m as usize, wl.n as usize, wl.k as usize);
    let a = vec![1.0f32; m * k];
    let b = vec![1.0f32; k * n];
    GemmSimulation::run(&cfg, &a, &b, m, n, k)
        .report()
        .total_cycles as f64
}

#[test]
fn analytical_and_simulated_latencies_correlate_across_workloads() {
    let workloads = [
        GemmWorkload::new(8, 8, 16),
        GemmWorkload::new(16, 16, 32),
        GemmWorkload::new(32, 8, 64),
        GemmWorkload::new(4, 48, 24),
        GemmWorkload::new(24, 24, 96),
        GemmWorkload::new(48, 16, 48),
        GemmWorkload::new(12, 40, 80),
        GemmWorkload::new(64, 32, 16),
    ];
    let analytical: Vec<f32> = workloads
        .iter()
        .map(|w| analytical_compute_cycles(w, 16) as f32)
        .collect();
    let simulated: Vec<f32> = workloads
        .iter()
        .map(|w| simulated_cycles(w, 16) as f32)
        .collect();
    let rho = spearman(&analytical, &simulated);
    assert!(
        rho > 0.85,
        "analytical vs simulated rank correlation too low: {rho} \
         (analytical {analytical:?}, simulated {simulated:?})"
    );
}

#[test]
fn both_substrates_agree_more_pes_help_large_gemms() {
    let wl = GemmWorkload::new(48, 48, 64);
    let a_small = analytical_compute_cycles(&wl, 16);
    let a_big = analytical_compute_cycles(&wl, 64);
    let s_small = simulated_cycles(&wl, 16);
    let s_big = simulated_cycles(&wl, 64);
    assert!(a_big < a_small, "analytical: more PEs did not help");
    assert!(s_big < s_small, "simulated: more PEs did not help");
}

#[test]
fn both_substrates_agree_tiny_gemms_waste_big_arrays() {
    // utilization collapse on a 4×4×8 GEMM over a 64-PE array, in both
    let wl = GemmWorkload::new(4, 4, 8);
    use airchitect_repro::systolic::{ArrayConfig, GemmSimulation};
    let sim = GemmSimulation::run(
        &ArrayConfig::squarest(64),
        &[1.0; 4 * 8],
        &[1.0; 8 * 4],
        4,
        4,
        8,
    );
    assert!(
        sim.report().utilization < 0.3,
        "sim util {}",
        sim.report().utilization
    );
    let model = CostModel::default();
    let r = model.evaluate(
        &wl,
        Dataflow::OutputStationary,
        &AcceleratorConfig::new(64, 2 * 1024 * 1024),
    );
    assert!(r.utilization < 0.3, "analytical util {}", r.utilization);
}

#[test]
fn spearman_helper_consistency() {
    // the f64 helper used above must agree with the tensor-crate one
    let a = [1.0f32, 2.0, 3.0, 4.0];
    let b = [1.0f32, 4.0, 9.0, 16.0];
    let r32 = spearman(&a, &b);
    let r64 = spearman64(
        &a.iter().map(|&x| x as f64).collect::<Vec<_>>(),
        &b.iter().map(|&x| x as f64).collect::<Vec<_>>(),
    );
    assert!((r32 as f64 - r64).abs() < 1e-6);
}
