//! Pipeline-parity contract over real TCP: a pre-pipeline client — one
//! whose request lines carry no `"pipeline"` key at all — must receive
//! response lines **byte-identical** to what the one-shot kernel
//! (`recommend_batch`) encodes, even on a server with extra staged
//! pipelines registered. On the same server, `"pipeline": "staged"`
//! requests must answer through the stage graph (never worse than the
//! one-shot point under the clamp's feasibility-first order), the
//! `Pipelines` admin message must list every compiled pipeline, and the
//! stats endpoint must account recommendations per pipeline.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use airchitect_repro::airchitect::{train::TrainConfig, Airchitect2, ModelCheckpoint, ModelConfig};
use airchitect_repro::dse::pipeline::{RefineMethod, StageCfg};
use airchitect_repro::dse::{
    BackendId, Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective, PipelineCfg,
    PipelineSet,
};
use airchitect_repro::serve::protocol::{encode_line, PipelineServed};
use airchitect_repro::serve::{
    recommend_batch, AdminRequest, BackendEngines, Query, RecommendRequest, RecommendService,
    Request, Response, ServeConfig, TcpClient,
};

fn trained_checkpoint() -> (Arc<EvalEngine>, ModelCheckpoint) {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 60,
            seed: 0xC0FFEE,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    (engine, model.checkpoint())
}

/// The registry under test: the implicit `"default"` plus a
/// predict → refine → verify stage graph.
fn staged_pipelines() -> PipelineSet {
    PipelineSet::with(&[PipelineCfg {
        name: "staged".into(),
        stages: vec![
            StageCfg::Predict { backend: None },
            StageCfg::Refine {
                method: RefineMethod::Annealing,
                budget: 16,
                seed: 3,
                backend: None,
            },
            StageCfg::Verify {
                k: 2,
                backend: BackendId::Systolic,
            },
        ],
    }])
    .expect("the parity-test pipeline compiles")
}

fn mixed_requests() -> Vec<RecommendRequest> {
    const OBJECTIVES: [Objective; 3] = [Objective::Latency, Objective::Energy, Objective::Edp];
    const DATAFLOWS: [&str; 3] = ["ws", "os", "rs"];
    let mut reqs = Vec::new();
    for i in 0..9u64 {
        reqs.push(RecommendRequest {
            id: i,
            query: Query::Gemm {
                m: 1 + (i * 41) % 256,
                n: 1 + (i * 113) % 1677,
                k: 1 + (i * 97) % 1185,
                dataflow: DATAFLOWS[i as usize % 3].into(),
            },
            objective: OBJECTIVES[i as usize % 3],
            budget: if i % 4 == 0 {
                Budget::Unbounded
            } else {
                Budget::Edge
            },
            deadline_ms: None,
            backend: if i % 3 == 2 {
                Some("systolic".into())
            } else {
                None
            },
            pipeline: None,
        });
    }
    reqs.push(RecommendRequest {
        id: 9,
        query: Query::Model {
            name: "resnet18".into(),
        },
        objective: Objective::Edp,
        budget: Budget::Edge,
        deadline_ms: None,
        backend: None,
        pipeline: None,
    });
    reqs
}

/// Encode `req` the way a pre-pipeline client would: the request line
/// has no `"pipeline"` key at all (not even an explicit `null`).
fn pre_pipeline_line(req: &RecommendRequest) -> String {
    assert!(
        req.pipeline.is_none(),
        "legacy clients cannot name pipelines"
    );
    let line = encode_line(&Request::Recommend(req.clone()));
    let stripped = line.replace(",\"pipeline\":null", "");
    assert_ne!(
        stripped, line,
        "expected the encoded request to carry a pipeline:null field to strip: {line}"
    );
    stripped
}

#[test]
fn pipeline_less_tcp_lines_are_byte_identical_to_the_one_shot_kernel() {
    let (engine, ckpt) = trained_checkpoint();
    let mut service = RecommendService::start(
        ServeConfig {
            pipelines: staged_pipelines(),
            ..ServeConfig::default()
        },
        engine,
        ckpt.clone(),
    );
    let addr = service.listen("127.0.0.1:0").expect("ephemeral port");

    // ---- ground truth: the one-shot kernel on an independent replica
    let fresh_engine = EvalEngine::shared(DseTask::table_i_default());
    let replica =
        Airchitect2::from_checkpoint(Arc::clone(&fresh_engine), &ckpt).expect("restore replica");
    let fresh_engines = BackendEngines::new(fresh_engine);
    let reqs = mixed_requests();
    let expected = recommend_batch(&replica, &fresh_engines, &reqs);

    // ---- a raw pre-pipeline client: hand-written lines, byte compare
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    for (req, expect) in reqs.iter().zip(&expected) {
        assert!(
            matches!(expect, Response::Recommendation(_)),
            "parity fixture queries must all succeed: {expect:?}"
        );
        writer
            .write_all(format!("{}\n", pre_pipeline_line(req)).as_bytes())
            .expect("send raw line");
        let mut got = String::new();
        reader.read_line(&mut got).expect("response line");
        assert_eq!(
            got.trim_end(),
            encode_line(expect),
            "query {}: the served line is not byte-identical to the one-shot kernel's",
            req.id
        );
    }

    // warm (cached) answers must stay byte-identical too
    let repeat = RecommendRequest {
        id: 77,
        ..reqs[1].clone()
    };
    let Response::Recommendation(mut rec) = expected[1].clone() else {
        unreachable!("checked above");
    };
    rec.id = 77;
    writer
        .write_all(format!("{}\n", pre_pipeline_line(&repeat)).as_bytes())
        .expect("send raw line");
    let mut got = String::new();
    reader.read_line(&mut got).expect("response line");
    assert_eq!(got.trim_end(), encode_line(&Response::Recommendation(rec)));
    assert!(service.stats().cache_hits >= 1);

    service.shutdown();
}

#[test]
fn staged_requests_listing_and_per_pipeline_stats_work_over_tcp() {
    let (engine, ckpt) = trained_checkpoint();
    let mut service = RecommendService::start(
        ServeConfig {
            pipelines: staged_pipelines(),
            ..ServeConfig::default()
        },
        engine,
        ckpt.clone(),
    );
    let addr = service.listen("127.0.0.1:0").expect("ephemeral port");
    let mut tcp = TcpClient::connect(addr).expect("connect");

    // ---- the admin listing names every compiled pipeline ------------
    let listing = tcp
        .send(&Request::Admin(AdminRequest::Pipelines { id: 1 }))
        .unwrap();
    let Response::Pipelines { id: 1, pipelines } = &listing else {
        panic!("expected pipelines listing, got {listing:?}");
    };
    let listed: Vec<(&str, Vec<&str>)> = pipelines
        .iter()
        .map(|p| {
            (
                p.name.as_str(),
                p.stages.iter().map(String::as_str).collect(),
            )
        })
        .collect();
    assert_eq!(
        listed,
        vec![
            ("default", vec!["predict"]),
            ("staged", vec!["predict", "refine", "verify"]),
        ],
        "registration order, default first"
    );

    // ---- staged answers obey the feasibility-first never-worse clamp
    let fresh_engine = EvalEngine::shared(DseTask::table_i_default());
    let replica =
        Airchitect2::from_checkpoint(Arc::clone(&fresh_engine), &ckpt).expect("restore replica");
    let fresh_engines = BackendEngines::new(fresh_engine);
    let mut staged_served = 0u64;
    let mut default_served = 0u64;
    for (i, mut req) in mixed_requests().into_iter().enumerate() {
        let one_shot = recommend_batch(&replica, &fresh_engines, std::slice::from_ref(&req));
        let Response::Recommendation(one_shot) = &one_shot[0] else {
            panic!("one-shot fixture query failed: {one_shot:?}");
        };
        if matches!(req.query, Query::Gemm { .. }) && i % 2 == 0 {
            req.pipeline = Some("staged".into());
        }
        let staged = req.pipeline.is_some();
        let resp = tcp.send(&Request::Recommend(req.clone())).unwrap();
        let Response::Recommendation(rec) = &resp else {
            panic!("query {} failed: {resp:?}", req.id);
        };
        if staged {
            staged_served += 1;
            // re-score the one-shot point on the staged answer's
            // verifying backend: staged may cost more only when it buys
            // feasibility
            let backend: BackendId = rec.backend.parse().expect("served backend parses");
            let scorer = fresh_engines.get(backend);
            let input = req.query.as_dse_input().expect("GEMM input");
            let os_cost = scorer.score_unchecked_with(&input, one_shot.point, req.objective);
            let os_feasible = scorer.is_feasible_under(one_shot.point, req.budget);
            assert!(
                !((!rec.feasible && os_feasible)
                    || (rec.feasible == os_feasible && rec.cost > os_cost)),
                "query {}: staged (feasible={} cost={}) is worse than one-shot (feasible={} \
                 cost={})",
                req.id,
                rec.feasible,
                rec.cost,
                os_feasible,
                os_cost
            );
        } else {
            default_served += 1;
            assert_eq!(
                (rec.point, rec.cost.to_bits(), rec.feasible),
                (one_shot.point, one_shot.cost.to_bits(), one_shot.feasible),
                "query {}: default pipeline diverged from the one-shot kernel",
                req.id
            );
        }
    }

    // ---- unknown pipelines are rejected cleanly, service stays up ---
    let mut bad = mixed_requests().remove(0);
    bad.id = 50;
    bad.pipeline = Some("warp".into());
    let resp = tcp.send(&Request::Recommend(bad)).unwrap();
    assert!(
        matches!(&resp, Response::Error { id: 50, message } if message.contains("pipeline")),
        "unexpected {resp:?}"
    );

    // ---- stats account recommendations per pipeline -----------------
    let stats = tcp
        .send(&Request::Admin(AdminRequest::Stats { id: 60 }))
        .unwrap();
    let Response::Stats(stats) = &stats else {
        panic!("expected stats, got {stats:?}");
    };
    assert_eq!(
        stats.pipelines,
        vec![
            PipelineServed {
                name: "default".into(),
                served: default_served,
            },
            PipelineServed {
                name: "staged".into(),
                served: staged_served,
            },
        ],
        "per-pipeline accounting (errors excluded, name-sorted)"
    );
    assert_eq!(stats.served, default_served + staged_served);

    service.shutdown();
}
