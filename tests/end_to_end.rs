//! End-to-end integration: dataset generation → two-stage training →
//! one-shot prediction → model-level deployment, spanning every crate in
//! the workspace.

use airchitect_repro::airchitect::deploy::{method1, method2};
use airchitect_repro::airchitect::train::TrainConfig;
use airchitect_repro::prelude::*;
use airchitect_repro::workloads::zoo;

fn small_dataset(task: &DseTask, n: usize, seed: u64) -> DseDataset {
    DseDataset::generate(
        task,
        &GenerateConfig {
            num_samples: n,
            seed,
            threads: 2,
            ..GenerateConfig::default()
        },
    )
}

#[test]
fn full_pipeline_produces_usable_model() {
    let engine = EvalEngine::shared(DseTask::table_i_default());
    let ds = small_dataset(engine.task(), 600, 101);
    let (train, test) = ds.split(0.8, 1);

    let mut model =
        Airchitect2::with_engine(&ModelConfig::tiny(), std::sync::Arc::clone(&engine), &train);
    let report = model.fit(
        &train,
        &TrainConfig {
            stage1_epochs: 15,
            stage2_epochs: 20,
            batch_size: 64,
            ..TrainConfig::default()
        },
    );
    // losses decrease in both stages
    assert!(report.stage1.last().unwrap() < &report.stage1[0]);
    assert!(report.stage2.last().unwrap() < &report.stage2[0]);

    // predictions are valid and better than a pessimal constant
    let p = model.predictor();
    let ratio = p.latency_ratio(&test);
    assert!(ratio.is_finite() && ratio >= 1.0);
    assert!(ratio < 20.0, "predictions are pathological: ratio {ratio}");

    // deployment works end-to-end on an unseen model
    let layers = zoo::resnet18().to_dse_layers();
    let rec = |input: &DseInput| -> DesignPoint { model.predict(&[*input])[0] };
    let d1 = method1(&engine, &layers, &rec);
    let d2 = method2(&engine, &layers, &rec);
    assert!(engine.is_feasible(d1.point));
    assert!(engine.is_feasible(d2.point));
    assert!(d1.latency > 0.0 && d1.latency.is_finite());
    assert!(
        d1.latency <= d2.latency + 1e-6,
        "Method 1 evaluates a superset"
    );
}

#[test]
fn oracle_labels_are_reachable_by_prediction_interface() {
    // the design points stored in the dataset must round-trip through the
    // space the model predicts over
    let task = DseTask::table_i_default();
    let ds = small_dataset(&task, 100, 102);
    for s in &ds.samples {
        let flat = task.space().flat_index(s.optimal);
        assert_eq!(task.space().from_flat(flat), s.optimal);
        assert!(
            task.is_feasible(s.optimal),
            "oracle produced infeasible label"
        );
    }
}

#[test]
fn trained_model_survives_checkpoint_roundtrip() {
    use airchitect_repro::nn::checkpoint::Checkpoint;

    let task = DseTask::table_i_default();
    let ds = small_dataset(&task, 300, 103);
    let mut model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
    model.fit(
        &ds,
        &TrainConfig {
            stage1_epochs: 6,
            stage2_epochs: 8,
            batch_size: 64,
            ..TrainConfig::default()
        },
    );
    let inputs: Vec<DseInput> = ds.samples.iter().take(16).map(|s| s.input()).collect();
    let before = model.predict(&inputs);

    // snapshot, perturb nothing, restore into an identically-shaped model
    let ck = Checkpoint::from_store(model.store());
    let mut clone = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
    ck.apply_to(clone.store_mut()).expect("restore checkpoint");
    let after = clone.predict(&inputs);
    assert_eq!(before, after, "checkpoint restore changed predictions");
}

#[test]
fn dataflow_is_a_real_input_feature() {
    // same GEMM, different dataflow, must be able to yield different
    // optima in the dataset (otherwise the 4th feature is dead)
    let task = DseTask::table_i_default();
    let mut differs = false;
    for (m, n, k) in [(16u64, 1600u64, 900u64), (128, 64, 900), (100, 700, 450)] {
        let a = task.oracle(&DseInput {
            gemm: GemmWorkload::new(m, n, k),
            dataflow: Dataflow::WeightStationary,
        });
        let b = task.oracle(&DseInput {
            gemm: GemmWorkload::new(m, n, k),
            dataflow: Dataflow::RowStationary,
        });
        if a.best_point != b.best_point {
            differs = true;
            break;
        }
    }
    assert!(differs, "dataflow never changed the optimal configuration");
}
