//! Online-refresh integration:
//!
//! 1. a **live checkpoint swap under 64 concurrent TCP queries** must
//!    drop zero requests, report the new lineage version through
//!    `stats`, and answer post-swap queries bit-identically to a fresh
//!    replica restored independently from the published checkpoint
//!    file;
//! 2. the **active-learning refresh loop** (replay buffer → oracle
//!    labels → disagreement-ranked fine-tune → publish) must reduce
//!    predictor-vs-oracle disagreement on held-out served queries
//!    versus the frozen seed checkpoint, under fixed seeds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use airchitect_repro::airchitect::{train::TrainConfig, Airchitect2, ModelCheckpoint, ModelConfig};
use airchitect_repro::dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
use airchitect_repro::maestro::{Dataflow, GemmWorkload};
use airchitect_repro::serve::{
    AdminRequest, Query, RecommendRequest, RecommendService, Recommendation, RefreshConfig,
    Request, Response, ServeConfig, TcpClient,
};
use airchitect_repro::workloads::generator::DseInput;

fn train_checkpoint(model_seed: u64, data_seed: u64, cfg: &TrainConfig) -> ModelCheckpoint {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 80,
            seed: data_seed,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(
        &ModelConfig {
            seed: model_seed,
            ..ModelConfig::tiny()
        },
        Arc::clone(&engine),
        &ds,
    );
    model.fit(&ds, cfg);
    model
        .checkpoint()
        .with_provenance(engine.backend_id().as_str(), ds.len() as u64)
}

fn gemm_req(id: u64, m: u64, n: u64, k: u64) -> RecommendRequest {
    RecommendRequest {
        id,
        query: Query::Gemm {
            m,
            n,
            k,
            dataflow: ["ws", "os", "rs"][id as usize % 3].into(),
        },
        objective: [Objective::Latency, Objective::Energy, Objective::Edp][(id / 2) as usize % 3],
        budget: Budget::Edge,
        deadline_ms: None,
        backend: None,
        pipeline: None,
    }
}

/// Query `i` of the 64-query swap storm (dims distinct from the
/// post-swap probe set below).
fn storm_req(i: u64) -> RecommendRequest {
    gemm_req(
        i,
        1 + (i * 37) % 256,
        1 + (i * 131) % 1500,
        1 + (i * 89) % 1000,
    )
}

#[test]
fn live_swap_under_64_concurrent_queries_drops_nothing() {
    let seed_ckpt = train_checkpoint(7, 0xAAA, &TrainConfig::quick()).with_version(1);
    let next_ckpt = train_checkpoint(99, 0xBBB, &TrainConfig::quick()).with_version(2);

    let dir = std::env::temp_dir().join("ai2_refresh_swap_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("next.json");
    next_ckpt.save(&path).expect("save next checkpoint");

    let engine = EvalEngine::shared(DseTask::table_i_default());
    let mut service = RecommendService::start(
        ServeConfig {
            shards: 2,
            max_batch: 16,
            cache_capacity: 256,
            ..ServeConfig::default()
        },
        Arc::clone(&engine),
        seed_ckpt,
    );
    let addr = service.listen("127.0.0.1:0").expect("ephemeral port");
    assert_eq!(service.model_version(), 1);

    // ---- 64 concurrent queries over 8 connections, swap mid-storm ---
    // Every worker fires 4 queries, rendezvouses at the barrier, then
    // fires 4 more while the swapper publishes the new checkpoint — so
    // the swap is guaranteed concurrent with in-flight traffic.
    let errors = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    let barrier = Barrier::new(9); // 8 workers + 1 swapper
    std::thread::scope(|scope| {
        for w in 0..8u64 {
            let (errors, answered, barrier) = (&errors, &answered, &barrier);
            scope.spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                let mut run = |ids: std::ops::Range<u64>| {
                    for i in ids {
                        match client.send(&Request::Recommend(storm_req(i))) {
                            Ok(Response::Recommendation(rec)) => {
                                assert_eq!(rec.id, i, "response routed to the wrong request");
                                answered.fetch_add(1, Ordering::Relaxed);
                            }
                            other => {
                                eprintln!("query {i} failed: {other:?}");
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                };
                run(w * 8..w * 8 + 4);
                barrier.wait();
                run(w * 8 + 4..w * 8 + 8);
            });
        }
        scope.spawn(|| {
            barrier.wait();
            let mut admin = TcpClient::connect(addr).expect("admin connect");
            let ack = admin
                .send(&Request::Admin(AdminRequest::Swap {
                    id: 1000,
                    path: path.to_string_lossy().into_owned(),
                    bump: None,
                }))
                .expect("swap transport");
            assert!(
                matches!(&ack, Response::Admin(a) if a.model_version == 2 && a.op == "swap"),
                "swap not acknowledged: {ack:?}"
            );
        });
    });

    // ---- zero dropped / errored requests ----------------------------
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "requests failed across the swap"
    );
    assert_eq!(
        answered.load(Ordering::Relaxed),
        64,
        "requests went missing"
    );
    let stats = service.stats();
    assert_eq!(stats.served, 64, "server-side accounting: {stats:?}");
    assert_eq!(stats.errors, 0, "server-side errors: {stats:?}");

    // ---- stats report the new version -------------------------------
    assert_eq!(stats.model_version, 2, "{stats:?}");
    assert_eq!(stats.swaps, 1, "{stats:?}");

    // ---- post-swap answers are bit-identical to a fresh replica -----
    // restored *independently from the published checkpoint file*
    let fresh_engine = EvalEngine::shared(DseTask::table_i_default());
    let published = ModelCheckpoint::load(&path).expect("reload published checkpoint");
    assert_eq!(published.version, 2);
    let replica = Airchitect2::from_checkpoint(Arc::clone(&fresh_engine), &published)
        .expect("restore replica");
    let mut tcp = TcpClient::connect(addr).expect("probe connect");
    for j in 0..12u64 {
        // probe dims disjoint from the storm (and from each other), so
        // nothing is answered from a cache slot
        let req = gemm_req(1_000 + j, 300 + j * 3, 1_700 + j * 7, 1_100 + j * 5);
        let resp = tcp
            .send(&Request::Recommend(req.clone()))
            .expect("probe send");
        let Response::Recommendation(served) = &resp else {
            panic!("post-swap probe {j} failed: {resp:?}");
        };
        let input: DseInput = req.query.as_dse_input().expect("valid probe");
        let point = replica.predict(std::slice::from_ref(&input))[0];
        let cost = fresh_engine.score_unchecked_with(&input, point, req.objective);
        let feasible = fresh_engine.is_feasible_under(point, req.budget);
        let hw = fresh_engine.space().config(point);
        let direct = Recommendation {
            id: req.id,
            point,
            num_pes: hw.num_pes,
            l2_bytes: hw.l2_bytes,
            cost,
            feasible,
            layers: 1,
            backend: "analytic".into(),
        };
        assert_eq!(
            served, &direct,
            "post-swap probe {j} diverged from the fresh replica"
        );
        assert_eq!(
            served.cost.to_bits(),
            direct.cost.to_bits(),
            "probe {j}: cost bits diverged"
        );
    }

    std::fs::remove_file(&path).ok();
    service.shutdown();
}

/// Queries in a narrow large-GEMM corner of the input space the weak
/// seed model has barely seen — where active learning has signal.
fn corner_input(i: u64) -> (u64, u64, u64) {
    (
        200 + (i * 7) % 56,
        1_200 + (i * 61) % 470,
        800 + (i * 37) % 380,
    )
}

#[test]
fn active_learning_refresh_reduces_disagreement_on_held_out_queries() {
    // a deliberately weak seed model: small corpus, short schedule
    let weak = TrainConfig {
        stage1_epochs: 6,
        stage2_epochs: 6,
        batch_size: 64,
        ..TrainConfig::default()
    };
    let seed_ckpt = train_checkpoint(7, 0xF00D, &weak).with_version(1);

    let engine = EvalEngine::shared(DseTask::table_i_default());
    let service = RecommendService::start(
        ServeConfig {
            shards: 1,         // deterministic replay order
            cache_capacity: 0, // every query computed (and recorded)
            refresh: Some(RefreshConfig {
                min_buffer: 32,
                keep_fraction: 0.75,
                train: TrainConfig {
                    stage2_epochs: 40,
                    batch_size: 32,
                    // the fine-tune rate, not the from-scratch rate
                    // (see RefreshConfig::default)
                    lr_stage2: 5e-4,
                    seed: 0x5EED,
                    ..TrainConfig::default()
                },
                ..RefreshConfig::default()
            }),
            ..ServeConfig::default()
        },
        Arc::clone(&engine),
        seed_ckpt.clone(),
    );

    // ---- serve 48 queries from the corner distribution --------------
    let client = service.client();
    for i in 0..48u64 {
        let (m, n, k) = corner_input(i);
        let resp = client.recommend(gemm_req(i, m, n, k));
        assert!(matches!(resp, Response::Recommendation(_)), "{resp:?}");
    }
    assert_eq!(service.replay_len(), 48);

    // ---- held-out set: same distribution, disjoint queries ----------
    let held_inputs: Vec<DseInput> = (0..24u64)
        .map(|j| {
            let (m, n, k) = corner_input(1_000 + j * 3 + 1);
            DseInput {
                gemm: GemmWorkload::new(m, n, k),
                dataflow: Dataflow::from_index((j % 3) as usize),
            }
        })
        .collect();
    let held_ds = DseDataset::label_inputs(&engine, &held_inputs);

    // frozen seed replica's disagreement on the held-out queries
    let frozen = Airchitect2::from_checkpoint(Arc::clone(&engine), &seed_ckpt).expect("restore");
    let ratio_frozen = frozen.predictor().latency_ratio(&held_ds);

    // ---- one refresh cycle ------------------------------------------
    let outcome = service.refresh_now().expect("refresh");
    assert_eq!(outcome.version, 2);
    assert_eq!(outcome.replayed, 48);
    assert_eq!(outcome.trained_on, 36, "75% of 48 selected by disagreement");
    assert!(
        outcome.disagreement_after < outcome.disagreement_before,
        "fine-tuning did not reduce on-buffer disagreement: {outcome:?}"
    );
    assert_eq!(service.model_version(), 2);
    let published = service.current_checkpoint();
    assert_eq!(published.provenance.training_samples, 36);
    assert!(service.replay_len() == 0, "refresh drains the buffer");

    // ---- the refreshed replica disagrees less on HELD-OUT queries ---
    let refreshed =
        Airchitect2::from_checkpoint(Arc::clone(&engine), &published).expect("restore refreshed");
    let ratio_refreshed = refreshed.predictor().latency_ratio(&held_ds);
    assert!(
        ratio_refreshed < ratio_frozen,
        "refresh did not help on held-out served queries: \
         frozen {ratio_frozen:.4} vs refreshed {ratio_refreshed:.4}"
    );

    service.shutdown();
}
