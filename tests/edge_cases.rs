//! Edge-case integration tests: boundary workloads and degenerate
//! configurations through the full pipeline.

use airchitect_repro::airchitect::deploy::model_latency;
use airchitect_repro::prelude::*;
use airchitect_repro::workloads::{Layer, TABLE_I_MAX_K, TABLE_I_MAX_M, TABLE_I_MAX_N};

#[test]
fn unit_gemm_is_labelable_and_predictable() {
    // the smallest possible layer must flow through oracle and features
    let task = DseTask::table_i_default();
    let input = DseInput {
        gemm: GemmWorkload::new(1, 1, 1),
        dataflow: Dataflow::WeightStationary,
    };
    let oracle = task.oracle(&input);
    assert!(oracle.best_score > 0.0);
    // for a unit GEMM every feasible config is latency-equivalent up to
    // fill/drain; the tie-break must choose the cheapest configuration
    let smallest = DesignPoint {
        pe_idx: 0,
        buf_idx: 0,
    };
    let s_small = task.score(&input, smallest).expect("feasible");
    assert!(
        oracle.best_score <= s_small,
        "oracle worse than smallest config"
    );
    assert_eq!(
        oracle.best_point, smallest,
        "unit GEMM should pick the cheapest configuration, got {:?}",
        oracle.best_point
    );
}

#[test]
fn maximal_table_i_gemm_is_labelable() {
    let task = DseTask::table_i_default();
    for df in Dataflow::ALL {
        let input = DseInput {
            gemm: GemmWorkload::new(TABLE_I_MAX_M, TABLE_I_MAX_N, TABLE_I_MAX_K),
            dataflow: df,
        };
        let oracle = task.oracle(&input);
        assert!(oracle.best_score.is_finite());
        // a maximal layer must not pick a minimal buffer
        assert!(
            oracle.best_point.pe_idx > 0 || oracle.best_point.buf_idx > 0,
            "maximal workload picked the minimal config"
        );
    }
}

#[test]
fn skinny_gemms_prefer_smaller_arrays_than_fat_gemms() {
    // aggregate sanity of the landscape: tiny-M decode-like layers should
    // not demand more PEs than a large square GEMM
    let task = DseTask::table_i_default();
    let skinny = task.oracle(&DseInput {
        gemm: GemmWorkload::new(1, 64, 64),
        dataflow: Dataflow::OutputStationary,
    });
    let fat = task.oracle(&DseInput {
        gemm: GemmWorkload::new(256, 1677, 1185),
        dataflow: Dataflow::OutputStationary,
    });
    assert!(
        skinny.best_point.pe_idx <= fat.best_point.pe_idx,
        "skinny {:?} vs fat {:?}",
        skinny.best_point,
        fat.best_point
    );
}

#[test]
fn single_layer_model_deployment_matches_per_layer_oracle() {
    let engine = EvalEngine::table_i_default();
    let layer = Layer::new("only", GemmWorkload::new(64, 256, 128));
    let input_best = Dataflow::ALL
        .iter()
        .map(|&df| {
            engine.oracle(&DseInput {
                gemm: layer.gemm,
                dataflow: df,
            })
        })
        .min_by(|a, b| a.best_score.partial_cmp(&b.best_score).expect("finite"))
        .expect("three dataflows");
    // deploying a one-layer model on that layer's own optimum must yield
    // exactly the oracle latency
    let lat = model_latency(&engine, &[layer], input_best.best_point);
    assert!(
        (lat - input_best.best_score).abs() < 1e-9,
        "single-layer deployment {lat} != oracle {}",
        input_best.best_score
    );
}

#[test]
fn dataset_split_extremes_behave() {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 10,
            seed: 1,
            threads: 1,
            ..GenerateConfig::default()
        },
    );
    let (train, test) = ds.split(0.9, 0);
    assert_eq!(train.len(), 9);
    assert_eq!(test.len(), 1);
    let (train, test) = ds.split(0.1, 0);
    assert_eq!(train.len(), 1);
    assert_eq!(test.len(), 9);
}

#[test]
fn feature_encoder_extrapolates_beyond_training_ranges() {
    use airchitect_repro::airchitect::FeatureEncoder;
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 50,
            seed: 2,
            threads: 1,
            ..GenerateConfig::default()
        },
    );
    let enc = FeatureEncoder::fit(&ds);
    // an out-of-distribution huge layer must still encode to finite values
    let f = enc.encode_input(&DseInput {
        gemm: GemmWorkload::new(10_000, 50_000, 20_000),
        dataflow: Dataflow::RowStationary,
    });
    assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
}

#[test]
fn uov_and_design_space_widths_are_consistent() {
    use airchitect_repro::uov::{ConfigCodec, UovCodec};
    let task = DseTask::table_i_default();
    let pe = UovCodec::new(16, task.space().num_pe_choices());
    let buf = UovCodec::new(16, task.space().num_buf_choices());
    assert_eq!(pe.width(), 16);
    assert_eq!(buf.width(), 12, "12 buffer choices clamp 16 buckets to 12");
    // every grid point encodes and decodes
    for p in task.space().iter_points() {
        assert_eq!(pe.decode(&pe.encode(p.pe_idx)), p.pe_idx);
        assert_eq!(buf.decode(&buf.encode(p.buf_idx)), p.buf_idx);
    }
}
