//! Cross-method integration: all four learning-based techniques train on
//! the same corpus and are scored by the same metrics — a scaled-down
//! Table III whose *ordering* must already emerge at small size.

use std::sync::Arc;

use airchitect_repro::airchitect::predictor::{bucket_accuracy_of, evaluate_of, PredictFn};
use airchitect_repro::airchitect::train::TrainConfig;
use airchitect_repro::baselines::{
    AirchitectV1, Gandse, GandseConfig, V1Config, Vaesa, VaesaConfig,
};
use airchitect_repro::prelude::*;

fn dataset(task: &DseTask) -> DseDataset {
    DseDataset::generate(
        task,
        &GenerateConfig {
            num_samples: 1200,
            seed: 77,
            threads: 2,
            ..GenerateConfig::default()
        },
    )
}

#[test]
fn all_methods_produce_valid_predictions_and_v2_is_competitive() {
    // one shared evaluation substrate across dataset generation, all
    // four methods and every metric below
    let engine = EvalEngine::shared(DseTask::table_i_default());
    let task = engine.task().clone();
    let ds = dataset(&task);
    let (train, test) = ds.split(0.8, 7);

    // --- train all four methods at matched (small) budgets
    let mut v2 = Airchitect2::with_engine(&ModelConfig::default(), Arc::clone(&engine), &train);
    // 50/60 epochs: enough for v2 to converge at this tiny scale under
    // the vendored RNG stream (accuracy is init-seed-stable there,
    // verified by a 4-seed sweep)
    v2.fit(
        &train,
        &TrainConfig {
            stage1_epochs: 50,
            stage2_epochs: 60,
            ..TrainConfig::default()
        },
    );
    let v2p = v2.predictor();

    let mut v1 = AirchitectV1::with_engine(
        &V1Config {
            epochs: 30,
            ..V1Config::default()
        },
        Arc::clone(&engine),
        &train,
    );
    v1.fit(&train);

    let mut gan = Gandse::with_engine(
        &GandseConfig {
            epochs: 30,
            ..GandseConfig::default()
        },
        Arc::clone(&engine),
        &train,
    );
    gan.fit(&train);

    let mut vae = Vaesa::with_engine(
        &VaesaConfig {
            epochs: 30,
            bo_budget: 20,
            ..VaesaConfig::default()
        },
        Arc::clone(&engine),
        &train,
    );
    vae.fit(&train);

    // --- validity: every method emits in-range design points
    let inputs: Vec<DseInput> = test.samples.iter().map(|s| s.input()).collect();
    for (name, method) in [
        ("v2", &v2p as &dyn PredictFn),
        ("v1", &v1),
        ("gandse", &gan),
    ] {
        for p in method.predict_points(&inputs) {
            assert!(
                p.pe_idx < task.space().num_pe_choices()
                    && p.buf_idx < task.space().num_buf_choices(),
                "{name} emitted out-of-range point"
            );
        }
    }

    // --- quality: v2 at least matches the MLP baseline (the paper's gap
    //     is 13.5 points at full scale; at this scale we only require
    //     non-inferiority with a small tolerance)
    let rep_v2 = evaluate_of(&v2p, &engine, &test);
    let acc_v2 = rep_v2.bucket_accuracy;
    let ratio_v2 = rep_v2.latency_ratio;
    let acc_v1 = bucket_accuracy_of(&v1, &engine, &test);
    let acc_gan = bucket_accuracy_of(&gan, &engine, &test);
    println!("acc: v2 {acc_v2:.1} v1 {acc_v1:.1} gandse {acc_gan:.1}; v2 ratio {ratio_v2:.2}");
    assert!(acc_v2 > 0.0, "v2 learned nothing");
    assert!(
        acc_v2 >= acc_v1 - 5.0,
        "v2 ({acc_v2:.1}%) clearly lost to v1 ({acc_v1:.1}%)"
    );
    assert!(ratio_v2 < 10.0, "v2 latency quality pathological");

    // --- VAESA's search interface works (scored on a small subset: BO
    //     per input is expensive)
    let sub = DseDataset {
        backend: test.backend,
        samples: test.samples[..20.min(test.samples.len())].to_vec(),
    };
    let acc_vae = bucket_accuracy_of(&vae, &engine, &sub);
    assert!((0.0..=100.0).contains(&acc_vae));
}

#[test]
fn methods_are_deterministic_given_seeds() {
    let task = DseTask::table_i_default();
    let ds = dataset(&task);
    let (train, test) = ds.split(0.8, 7);
    let inputs: Vec<DseInput> = test.samples.iter().take(10).map(|s| s.input()).collect();

    let train_v1 = || {
        let mut v1 = AirchitectV1::new(&V1Config::quick(), &task, &train);
        v1.fit(&train);
        v1.predict_points(&inputs)
    };
    assert_eq!(train_v1(), train_v1(), "v1 training is not deterministic");
}
