//! Line-framing property test: a request stream must parse identically
//! no matter how the bytes arrive.
//!
//! Both front ends reassemble newline-delimited requests from partial
//! reads — the threaded one through `BufReader::read_line`, the event
//! one through its per-connection read buffer. The framing contract at
//! the `Endpoint::handle_line` seam is the same: one `\n`-terminated
//! line, one request, leftovers carried to the next read. This test
//! drives a real TCP server on each front end with the *same* request
//! byte stream fragmented many different ways — one shot, byte at a
//! time, fixed 7-byte chunks straddling request boundaries, and
//! seeded-random splits — and requires byte-identical response
//! sequences from every fragmentation on both front ends.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use airchitect_repro::airchitect::{train::TrainConfig, Airchitect2, ModelConfig};
use airchitect_repro::dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
use airchitect_repro::serve::protocol::encode_line;
use airchitect_repro::serve::{
    AdminRequest, Query, RecommendRequest, RecommendService, Request, ServeConfig,
};

fn started_service() -> RecommendService {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 40,
            seed: 0xF8A,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    let ckpt = model.checkpoint();
    RecommendService::start(
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
        engine,
        ckpt,
    )
}

/// The request stream under test: recommendations, an interleaved
/// malformed line (must answer an error and keep the connection alive),
/// and a stats probe at the end.
fn request_stream() -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in 0..6u64 {
        let req = Request::Recommend(RecommendRequest {
            id: i,
            query: Query::Gemm {
                m: 8 + i * 31,
                n: 280,
                k: 140,
                dataflow: "os".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        });
        bytes.extend_from_slice(encode_line(&req).as_bytes());
        bytes.push(b'\n');
        if i == 2 {
            // a malformed line in the middle must not desynchronise the
            // framing of anything after it
            bytes.extend_from_slice(b"{\"Recommend\":{\"id\":oops}}\n");
        }
    }
    bytes
        .extend_from_slice(encode_line(&Request::Admin(AdminRequest::Stats { id: 99 })).as_bytes());
    bytes.push(b'\n');
    bytes
}

/// Writes `stream` split at the given chunk boundaries, then reads
/// exactly `expect` response lines.
fn drive(addr: std::net::SocketAddr, chunks: &[&[u8]], expect: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for chunk in chunks {
        writer.write_all(chunk).expect("write chunk");
        writer.flush().expect("flush");
        // let partial bytes actually land as a separate read on the
        // server side instead of coalescing in the socket buffer
        std::thread::sleep(Duration::from_micros(300));
    }
    let mut responses = Vec::with_capacity(expect);
    for _ in 0..expect {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        assert!(line.ends_with('\n'), "truncated response {line:?}");
        responses.push(line);
    }
    responses
}

/// Splits `bytes` into chunks of sizes drawn from a seeded LCG in
/// `1..=max`, so every seed is a distinct reproducible fragmentation.
fn seeded_splits(bytes: &[u8], seed: u64, max: usize) -> Vec<&[u8]> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut chunks = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let take = 1 + (state >> 33) as usize % max;
        let end = (at + take).min(bytes.len());
        chunks.push(&bytes[at..end]);
        at = end;
    }
    chunks
}

#[test]
fn any_fragmentation_parses_identically_on_both_front_ends() {
    let mut service = started_service();
    let threaded = service.listen(("127.0.0.1", 0)).expect("listen threads");
    let event = service
        .listen_event(("127.0.0.1", 0), 1)
        .expect("listen event");

    let stream = request_stream();
    let expect = 8; // 6 recommendations + 1 malformed error + 1 stats
                    // the trailing stats line carries cumulative, time-varying counters
                    // (served, uptime, throughput) — framing only guarantees it arrives
                    // last and echoes its id, not its bytes
    let check = |responses: &[String], oneshot: &[String], what: &str| {
        assert_eq!(&responses[..7], &oneshot[..7], "{what}");
        assert!(
            responses[7].contains("\"Stats\"") && responses[7].contains("\"id\":99"),
            "{what}: stats probe must answer last: {:?}",
            responses[7]
        );
    };
    for addr in [threaded, event] {
        let oneshot = drive(addr, &[&stream[..]], expect);
        assert!(
            oneshot[3].contains("malformed"),
            "garbage line must answer an inline error: {:?}",
            oneshot[3]
        );
        check(&oneshot, &oneshot, "one shot");

        // byte at a time: the worst case every reassembly path must hold
        let bytes: Vec<&[u8]> = stream.chunks(1).collect();
        check(&drive(addr, &bytes, expect), &oneshot, "byte-at-a-time");

        // fixed 7-byte chunks deliberately straddle every request
        // boundary (no request line is a multiple of 7 bytes long)
        let sevens: Vec<&[u8]> = stream.chunks(7).collect();
        check(&drive(addr, &sevens, expect), &oneshot, "7-byte chunks");

        for seed in 1..=8u64 {
            let random = seeded_splits(&stream, seed, 23);
            check(
                &drive(addr, &random, expect),
                &oneshot,
                &format!("seeded fragmentation (seed {seed})"),
            );
        }
    }
    service.shutdown();
}
