//! End-to-end coverage of the pluggable `CostBackend` layer: the
//! cycle-accurate systolic backend must be reachable from a TCP query
//! (`"backend": "systolic"`) and from dataset generation; the analytic
//! backend through the same path must stay bit-identical to the direct
//! `DseTask`; and the per-backend caches must never mix.

use std::sync::Arc;

use airchitect_repro::airchitect::{train::TrainConfig, Airchitect2, ModelConfig};
use airchitect_repro::dse::{
    BackendId, Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective,
};
use airchitect_repro::serve::{
    Query, RecommendRequest, RecommendService, Request, Response, ServeConfig, TcpClient,
};

fn gemm_req(id: u64, backend: Option<&str>) -> RecommendRequest {
    RecommendRequest {
        id,
        query: Query::Gemm {
            m: 72,
            n: 640,
            k: 320,
            dataflow: "os".into(),
        },
        objective: Objective::Latency,
        budget: Budget::Edge,
        deadline_ms: None,
        backend: backend.map(str::to_string),
        pipeline: None,
    }
}

#[test]
fn systolic_backend_is_reachable_over_tcp_with_isolated_caches() {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 40,
            seed: 0xBACC,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task.clone());
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    let ckpt = model.checkpoint();

    let mut service = RecommendService::start(ServeConfig::default(), engine, ckpt.clone());
    let addr = service.listen("127.0.0.1:0").expect("ephemeral port");
    let mut tcp = TcpClient::connect(addr).unwrap();

    // -- the same canonical GEMM on both backends ---------------------
    let ana = tcp.send(&Request::Recommend(gemm_req(1, None))).unwrap();
    let sys = tcp
        .send(&Request::Recommend(gemm_req(2, Some("systolic"))))
        .unwrap();
    let (Response::Recommendation(ana), Response::Recommendation(sys)) = (&ana, &sys) else {
        panic!("expected recommendations: {ana:?} / {sys:?}");
    };
    assert_eq!(ana.backend, "analytic");
    assert_eq!(sys.backend, "systolic");
    // the predicted point is backend-independent, its verified cost is not
    assert_eq!(ana.point, sys.point);
    assert_ne!(ana.cost.to_bits(), sys.cost.to_bits());

    // -- served costs match independently built engines ----------------
    let input = gemm_req(0, None).query.as_dse_input().unwrap();
    let fresh_analytic = EvalEngine::for_backend(task.clone(), BackendId::Analytic);
    let fresh_systolic = EvalEngine::for_backend(task.clone(), BackendId::Systolic);
    assert_eq!(
        ana.cost.to_bits(),
        fresh_analytic
            .score_unchecked_with(&input, ana.point, Objective::Latency)
            .to_bits(),
        "served analytic cost diverged from a fresh analytic engine"
    );
    assert_eq!(
        sys.cost.to_bits(),
        fresh_systolic
            .score_unchecked_with(&input, sys.point, Objective::Latency)
            .to_bits(),
        "served systolic cost diverged from a fresh systolic engine"
    );
    // and the analytic path is bit-identical to the direct DseTask
    assert_eq!(
        ana.cost.to_bits(),
        task.score_unchecked(&input, ana.point).to_bits(),
        "analytic backend broke DseTask bit-identicality"
    );

    // -- response cache: per-backend slots, no cross-talk -------------
    assert_eq!(service.stats().cache_hits, 0);
    let again_sys = tcp
        .send(&Request::Recommend(gemm_req(3, Some("systolic"))))
        .unwrap();
    let Response::Recommendation(again_sys) = &again_sys else {
        panic!("expected recommendation: {again_sys:?}");
    };
    assert_eq!(again_sys.cost.to_bits(), sys.cost.to_bits());
    assert_eq!(again_sys.backend, "systolic");
    assert_eq!(service.stats().cache_hits, 1);

    // -- unknown backends are rejected cleanly, service stays up ------
    let bad = tcp
        .send(&Request::Recommend(gemm_req(4, Some("rtl"))))
        .unwrap();
    assert!(
        matches!(&bad, Response::Error { id: 4, message } if message.contains("backend")),
        "unexpected {bad:?}"
    );
    assert!(matches!(
        tcp.send(&Request::Recommend(gemm_req(5, None))).unwrap(),
        Response::Recommendation(_)
    ));

    // -- whole-model queries route through the systolic engine too ----
    let model_req = RecommendRequest {
        id: 6,
        query: Query::Model {
            name: "resnet18".into(),
        },
        objective: Objective::Latency,
        budget: Budget::Edge,
        deadline_ms: None,
        backend: Some("systolic".into()),
        pipeline: None,
    };
    let deployed = tcp.send(&Request::Recommend(model_req)).unwrap();
    let Response::Recommendation(deployed) = &deployed else {
        panic!("expected recommendation: {deployed:?}");
    };
    assert_eq!(deployed.backend, "systolic");
    assert!(deployed.cost > 0.0 && deployed.layers > 1);

    service.shutdown();
}

#[test]
fn cascade_backend_is_reachable_over_tcp_with_isolated_caches() {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 40,
            seed: 0xCA5C,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task.clone());
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    let ckpt = model.checkpoint();

    let mut service = RecommendService::start(ServeConfig::default(), engine, ckpt);
    let addr = service.listen("127.0.0.1:0").expect("ephemeral port");
    let mut tcp = TcpClient::connect(addr).unwrap();

    // -- the same canonical GEMM on all three backends ----------------
    let ana = tcp.send(&Request::Recommend(gemm_req(1, None))).unwrap();
    let sys = tcp
        .send(&Request::Recommend(gemm_req(2, Some("systolic"))))
        .unwrap();
    let cas = tcp
        .send(&Request::Recommend(gemm_req(3, Some("cascade"))))
        .unwrap();
    let (
        Response::Recommendation(ana),
        Response::Recommendation(sys),
        Response::Recommendation(cas),
    ) = (&ana, &sys, &cas)
    else {
        panic!("expected recommendations: {ana:?} / {sys:?} / {cas:?}");
    };
    assert_eq!(cas.backend, "cascade");
    // the predicted point is backend-independent; the verified cost is
    // the cascade's systolic-calibrated cell, not the analytic number
    assert_eq!(cas.point, ana.point);
    assert_ne!(cas.cost.to_bits(), ana.cost.to_bits());

    // -- the served cascade cost matches a fresh staged engine --------
    let input = gemm_req(0, None).query.as_dse_input().unwrap();
    let fresh_cascade = EvalEngine::for_backend(task.clone(), BackendId::Cascade);
    assert_eq!(
        cas.cost.to_bits(),
        fresh_cascade
            .score_unchecked_with(&input, cas.point, Objective::Latency)
            .to_bits(),
        "served cascade cost diverged from a fresh prefilter+escalate engine"
    );

    // -- three per-backend cache slots, no cross-talk -----------------
    assert_eq!(service.stats().cache_hits, 0);
    for (id, backend, expected) in [
        (4, Some("cascade"), cas.cost),
        (5, None, ana.cost),
        (6, Some("systolic"), sys.cost),
    ] {
        let again = tcp
            .send(&Request::Recommend(gemm_req(id, backend)))
            .unwrap();
        let Response::Recommendation(again) = &again else {
            panic!("expected recommendation: {again:?}");
        };
        assert_eq!(again.cost.to_bits(), expected.to_bits());
    }
    assert_eq!(
        service.stats().cache_hits,
        3,
        "each backend's repeat must hit its own cache slot"
    );

    // -- the unknown-backend error names cascade as a choice ----------
    let bad = tcp
        .send(&Request::Recommend(gemm_req(7, Some("rtl"))))
        .unwrap();
    assert!(
        matches!(&bad, Response::Error { id: 7, message }
            if message.contains("cascade") && message.contains("systolic")),
        "the backend error must enumerate every valid backend: {bad:?}"
    );

    service.shutdown();
}

#[test]
fn dataset_generation_trains_on_systolic_labels_end_to_end() {
    let task = DseTask::table_i_default();
    let analytic_cfg = GenerateConfig {
        num_samples: 60,
        seed: 0x5157,
        threads: 0,
        ..GenerateConfig::default()
    };
    let systolic_cfg = GenerateConfig {
        backend: BackendId::Systolic,
        ..analytic_cfg.clone()
    };
    let analytic_ds = DseDataset::generate(&task, &analytic_cfg);
    let systolic_ds = DseDataset::generate(&task, &systolic_cfg);

    // same seeded inputs, different oracle labels
    assert_eq!(analytic_ds.len(), systolic_ds.len());
    for (a, s) in analytic_ds.samples.iter().zip(&systolic_ds.samples) {
        assert_eq!((a.m, a.n, a.k, a.dataflow), (s.m, s.n, s.k, s.dataflow));
    }
    assert!(
        analytic_ds
            .samples
            .iter()
            .zip(&systolic_ds.samples)
            .any(|(a, s)| a.best_score.to_bits() != s.best_score.to_bits()),
        "systolic labels never diverged from analytic — backend not wired through"
    );
    // the systolic labels really are the systolic engine's oracle
    let engine = EvalEngine::for_backend(task.clone(), BackendId::Systolic);
    for s in systolic_ds.samples.iter().take(8) {
        let oracle = engine.oracle(&s.input());
        assert_eq!(s.optimal, oracle.best_point);
        assert_eq!(s.best_score.to_bits(), oracle.best_score.to_bits());
    }

    // the full training pipeline accepts the systolic-labeled corpus
    let shared = Arc::new(EvalEngine::for_backend(task, BackendId::Systolic));
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), shared, &systolic_ds);
    let report = model.fit(&systolic_ds, &TrainConfig::quick());
    assert!(report.stage1.iter().all(|l| l.is_finite()));
    assert!(report.stage2.iter().all(|l| l.is_finite()));
    let predicted = model.predict(&[systolic_ds.samples[0].input()]);
    assert_eq!(predicted.len(), 1);
}
