//! End-to-end serving integration: 64 concurrent mixed queries (GEMM +
//! zoo models, all three objectives) through the TCP path must return
//! recommendations **bit-identical** to direct `Predictor` +
//! `EvalEngine` calls made from an independently restored replica of the
//! same checkpoint.

use std::collections::HashMap;
use std::sync::Arc;

use airchitect_repro::airchitect::{train::TrainConfig, Airchitect2, ModelCheckpoint, ModelConfig};
use airchitect_repro::dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
use airchitect_repro::serve::{
    recommend_batch, BackendEngines, Query, RecommendRequest, RecommendService, Recommendation,
    Request, Response, ServeConfig, TcpClient,
};
use airchitect_repro::workloads::generator::DseInput;
use airchitect_repro::workloads::zoo;

fn trained_checkpoint() -> (Arc<EvalEngine>, ModelCheckpoint) {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 60,
            seed: 0xC0FFEE,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    (engine, model.checkpoint())
}

/// 64 mixed queries: 52 GEMMs sweeping dims × dataflows × objectives,
/// 12 whole-model queries over four zoo models × all three objectives.
fn mixed_queries() -> Vec<RecommendRequest> {
    const OBJECTIVES: [Objective; 3] = [Objective::Latency, Objective::Energy, Objective::Edp];
    const DATAFLOWS: [&str; 3] = ["ws", "os", "rs"];
    const MODELS: [&str; 4] = ["resnet18", "alexnet", "mobilenet_v2", "ncf"];
    let mut reqs = Vec::new();
    for i in 0..52u64 {
        reqs.push(RecommendRequest {
            id: i,
            query: Query::Gemm {
                m: 1 + (i * 37) % 256,
                n: 1 + (i * 131) % 1677,
                k: 1 + (i * 89) % 1185,
                dataflow: DATAFLOWS[i as usize % 3].into(),
            },
            objective: OBJECTIVES[(i / 3) as usize % 3],
            budget: if i % 5 == 0 {
                Budget::Unbounded
            } else {
                Budget::Edge
            },
            deadline_ms: None,
            backend: None,
            pipeline: None,
        });
    }
    for (j, (name, objective)) in MODELS
        .iter()
        .flat_map(|m| OBJECTIVES.iter().map(move |o| (*m, *o)))
        .enumerate()
    {
        reqs.push(RecommendRequest {
            id: 52 + j as u64,
            query: Query::Model { name: name.into() },
            objective,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        });
    }
    assert_eq!(reqs.len(), 64);
    reqs
}

fn assert_bit_identical(served: &Recommendation, direct: &Recommendation, what: &str) {
    assert_eq!(served.point, direct.point, "{what}: point diverged");
    assert_eq!(served.num_pes, direct.num_pes, "{what}: PEs diverged");
    assert_eq!(served.l2_bytes, direct.l2_bytes, "{what}: L2 diverged");
    assert_eq!(
        served.cost.to_bits(),
        direct.cost.to_bits(),
        "{what}: cost diverged ({} vs {})",
        served.cost,
        direct.cost
    );
    assert_eq!(served.feasible, direct.feasible, "{what}: feasibility");
    assert_eq!(served.layers, direct.layers, "{what}: layer count");
    assert_eq!(served.backend, direct.backend, "{what}: backend");
}

#[test]
fn concurrent_tcp_queries_match_direct_predictor_engine_calls() {
    let (engine, ckpt) = trained_checkpoint();
    let mut service = RecommendService::start(
        ServeConfig {
            shards: 2,
            max_batch: 16,
            cache_capacity: 256,
            ..ServeConfig::default()
        },
        engine,
        ckpt.clone(),
    );
    let addr = service.listen("127.0.0.1:0").expect("ephemeral port");

    // ---- 64 concurrent queries over 8 TCP connections ---------------
    let reqs = mixed_queries();
    let served: HashMap<u64, Recommendation> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in reqs.chunks(8) {
            let chunk = chunk.to_vec();
            handles.push(scope.spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                chunk
                    .into_iter()
                    .map(|req| {
                        let id = req.id;
                        match client.send(&Request::Recommend(req)).expect("send") {
                            Response::Recommendation(rec) => {
                                assert_eq!(rec.id, id, "response routed to the wrong request");
                                (id, rec)
                            }
                            other => panic!("query {id} failed: {other:?}"),
                        }
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(served.len(), 64);

    // ---- ground truth from an independently restored replica --------
    // A fresh engine (empty caches) and a fresh model restored from the
    // same checkpoint: what a direct Predictor + EvalEngine user gets.
    let fresh_engine = EvalEngine::shared(DseTask::table_i_default());
    let replica =
        Airchitect2::from_checkpoint(Arc::clone(&fresh_engine), &ckpt).expect("restore replica");
    let fresh_engines = BackendEngines::new(Arc::clone(&fresh_engine));

    for req in &reqs {
        let rec = &served[&req.id];
        match &req.query {
            Query::Gemm { .. } => {
                // direct calls: one predict, one engine verification
                let input: DseInput = req.query.as_dse_input().expect("valid dataflow");
                let point = replica.predict(&[input])[0];
                let cost = fresh_engine.score_unchecked_with(&input, point, req.objective);
                let feasible = fresh_engine.is_feasible_under(point, req.budget);
                let hw = fresh_engine.space().config(point);
                let direct = Recommendation {
                    id: req.id,
                    point,
                    num_pes: hw.num_pes,
                    l2_bytes: hw.l2_bytes,
                    cost,
                    feasible,
                    layers: 1,
                    backend: "analytic".into(),
                };
                assert_bit_identical(rec, &direct, &format!("gemm query {}", req.id));
            }
            Query::Model { name } => {
                // direct call: the pure kernel on a singleton batch
                let direct = recommend_batch(&replica, &fresh_engines, std::slice::from_ref(req));
                let Response::Recommendation(direct) = &direct[0] else {
                    panic!("direct model query {name} failed: {direct:?}");
                };
                assert_bit_identical(rec, direct, &format!("model query {name}"));
                assert_eq!(
                    rec.layers,
                    zoo::model_by_name(name).unwrap().to_dse_layers().len()
                );
            }
        }
    }

    // ---- service-side accounting ------------------------------------
    let stats = service.stats();
    assert_eq!(stats.served, 64, "every query served: {stats:?}");
    assert_eq!(stats.errors, 0, "no errors: {stats:?}");
    assert_eq!(stats.shards, 2);
    let (p50, p99) = (
        stats.p50_us.expect("warm percentiles"),
        stats.p99_us.expect("warm percentiles"),
    );
    assert!(p50 > 0.0 && p99 >= p50);
    assert!(stats.throughput_rps > 0.0);

    service.shutdown();
}

#[test]
fn served_answers_are_stable_across_cache_and_shards() {
    // the same canonical query asked cold, warm (cached), and via a
    // different connection must answer identically
    let (engine, ckpt) = trained_checkpoint();
    let mut service = RecommendService::start(ServeConfig::default(), engine, ckpt);
    let addr = service.listen("127.0.0.1:0").expect("ephemeral port");
    let req = |id: u64| RecommendRequest {
        id,
        query: Query::Gemm {
            m: 48,
            n: 900,
            k: 333,
            dataflow: "rs".into(),
        },
        objective: Objective::Edp,
        budget: Budget::Edge,
        deadline_ms: Some(5_000),
        backend: None,
        pipeline: None,
    };
    let mut a = TcpClient::connect(addr).unwrap();
    let mut b = TcpClient::connect(addr).unwrap();
    let cold = a.send(&Request::Recommend(req(1))).unwrap();
    let warm = a.send(&Request::Recommend(req(2))).unwrap();
    let other_conn = b.send(&Request::Recommend(req(3))).unwrap();
    let (Response::Recommendation(x), Response::Recommendation(y), Response::Recommendation(z)) =
        (&cold, &warm, &other_conn)
    else {
        panic!("expected recommendations: {cold:?} {warm:?} {other_conn:?}");
    };
    assert_bit_identical(y, x, "warm vs cold");
    assert_bit_identical(z, x, "cross-connection vs cold");
    assert!(service.stats().cache_hits >= 2);
    service.shutdown();
}
