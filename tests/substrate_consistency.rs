//! Cross-crate consistency of the substrates: cost model × workloads ×
//! design space × searchers must agree on units, feasibility, and
//! determinism.

use airchitect_repro::dse::search::{
    bo::BoSearcher, AnnealingSearcher, ConfuciuxSearcher, GammaSearcher, RandomSearcher, Searcher,
};
use airchitect_repro::dse::stats::LabelHistogram;
use airchitect_repro::prelude::*;
use airchitect_repro::workloads::{manifest, zoo};

#[test]
fn every_zoo_layer_is_costable_on_every_grid_corner() {
    let task = DseTask::table_i_default();
    let space = task.space();
    let corners = [
        DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        },
        DesignPoint {
            pe_idx: 0,
            buf_idx: space.num_buf_choices() - 1,
        },
        DesignPoint {
            pe_idx: space.num_pe_choices() - 1,
            buf_idx: 0,
        },
        DesignPoint {
            pe_idx: space.num_pe_choices() - 1,
            buf_idx: space.num_buf_choices() - 1,
        },
    ];
    for model in zoo::training_models()
        .into_iter()
        .chain(zoo::evaluation_models())
    {
        for layer in model.to_dse_layers() {
            for df in Dataflow::ALL {
                let input = DseInput {
                    gemm: layer.gemm,
                    dataflow: df,
                };
                for &p in &corners {
                    let s = task.score_unchecked(&input, p);
                    assert!(
                        s.is_finite() && s > 0.0,
                        "{}::{} {df} at {p:?} → {s}",
                        model.name,
                        layer.name
                    );
                }
            }
        }
    }
}

#[test]
fn manifest_derived_dataset_matches_table_i_complexity() {
    // input space ≈ 256 × 1677 × 1185 × 3 ≈ 1.5e9, as claimed in §III-A
    let m = 256u64 * 1677 * 1185 * 3;
    assert!(m > 1_000_000_000, "input space should be O(10^9), got {m}");
    // manifest provides exactly the paper's 105 workloads
    assert_eq!(manifest::manifest_105().len(), 105);
    // output grid is exactly 64 × 12
    let task = DseTask::table_i_default();
    assert_eq!(task.space().num_points(), 768);
}

#[test]
fn dataset_exhibits_long_tail_like_fig3b() {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 1500,
            seed: 9,
            threads: 2,
            ..GenerateConfig::default()
        },
    );
    let hist = LabelHistogram::from_dataset(&ds);
    // long tail: many distinct optima, but the head dominates
    assert!(
        hist.num_distinct() > 30,
        "too few distinct optima: {}",
        hist.num_distinct()
    );
    assert!(
        hist.head_coverage(10) > 0.25,
        "head-10 coverage too flat: {}",
        hist.head_coverage(10)
    );
    assert!(
        hist.imbalance_factor() > 10.0,
        "distribution not long-tailed: imbalance {}",
        hist.imbalance_factor()
    );
}

#[test]
fn all_searchers_respect_feasibility_and_return_within_grid() {
    let engine = EvalEngine::table_i_default();
    let input = DseInput {
        gemm: GemmWorkload::new(100, 900, 500),
        dataflow: Dataflow::OutputStationary,
    };
    let searchers: Vec<Box<dyn Searcher>> = vec![
        Box::new(RandomSearcher::new(1)),
        Box::new(AnnealingSearcher::new(1)),
        Box::new(GammaSearcher::new(1)),
        Box::new(ConfuciuxSearcher::new(1)),
        Box::new(BoSearcher::new(1)),
    ];
    for mut s in searchers {
        let res = s.search(&engine, input, 60);
        assert!(
            engine.is_feasible(res.best_point),
            "{} infeasible",
            s.name()
        );
        assert!(res.best_score.is_finite());
        assert!(res.trace.len() <= 70, "{} trace too long", s.name());
        // best-so-far trace is monotone non-increasing once finite
        let finite: Vec<f64> = res
            .trace
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        for w in finite.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{} trace not monotone", s.name());
        }
    }
}

#[test]
fn energy_and_edp_objectives_change_the_optimum_somewhere() {
    let base = DseTask::table_i_default();
    let mut energy_task = base.clone();
    energy_task.objective = Objective::Energy;
    let mut found = false;
    for seed in 0..10u64 {
        let gemm = GemmWorkload::new(17 + seed * 23, 200 + seed * 140, 100 + seed * 90);
        let input = DseInput {
            gemm,
            dataflow: Dataflow::WeightStationary,
        };
        if base.oracle(&input).best_point != energy_task.oracle(&input).best_point {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "energy objective never changed the optimum — suspicious"
    );
}

#[test]
fn budgets_are_ordered_edge_within_cloud_within_unbounded() {
    let edge = DseTask::table_i_default();
    let mut cloud = edge.clone();
    cloud.budget = Budget::Cloud;
    let mut unbounded = edge.clone();
    unbounded.budget = Budget::Unbounded;
    let input = DseInput {
        gemm: GemmWorkload::new(64, 512, 256),
        dataflow: Dataflow::WeightStationary,
    };
    let e = edge.oracle(&input);
    let c = cloud.oracle(&input);
    let u = unbounded.oracle(&input);
    assert!(e.feasible_points <= c.feasible_points);
    assert!(c.feasible_points <= u.feasible_points);
    // more freedom can only improve the optimum
    assert!(c.best_score <= e.best_score);
    assert!(u.best_score <= c.best_score);
}
