//! # AIrchitect v2 — a Rust reproduction
//!
//! This crate is the facade of the workspace reproducing *AIRCHITECT v2:
//! Learning the Hardware Accelerator Design Space through Unified
//! Representations* (Seo, Ramachandran et al., DATE 2025), including every
//! substrate the paper depends on:
//!
//! | re-export | crate | role |
//! |-----------|-------|------|
//! | [`tensor`] | `ai2-tensor` | dense tensors, PCA, Cholesky |
//! | [`nn`] | `ai2-nn` | autograd, transformer layers, losses, optimizers |
//! | [`maestro`] | `ai2-maestro` | analytical accelerator cost model |
//! | [`workloads`] | `ai2-workloads` | DNN/LLM model zoo + generators |
//! | [`dse`] | `ai2-dse` | design space, oracle, search baselines, dataset |
//! | [`uov`] | `ai2-uov` | Unified Ordinal Vectors |
//! | [`airchitect`] | `airchitect` | the paper's encoder–decoder model |
//! | [`serve`] | `ai2-serve` | batched, sharded recommendation service |
//! | [`baselines`] | `ai2-baselines` | AIrchitect v1, GANDSE, VAESA |
//!
//! See `examples/quickstart.rs` for the end-to-end flow and the
//! `ai2-bench` binaries (`table2` … `fig9`) for the per-table /
//! per-figure experiment harness.

pub use ai2_baselines as baselines;
pub use ai2_dse as dse;
pub use ai2_maestro as maestro;
pub use ai2_nn as nn;
pub use ai2_serve as serve;
pub use ai2_systolic as systolic;
pub use ai2_tensor as tensor;
pub use ai2_uov as uov;
pub use ai2_workloads as workloads;
pub use airchitect;

/// Rank-correlation helper shared by the simulator-validation tests.
pub mod systolic_check {
    /// Spearman rank correlation over `f64` slices (ties get averaged
    /// ranks), mirroring `ai2_tensor::stats::spearman` for f64 data.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn spearman64(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "spearman64: length mismatch");
        let fa: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let fb: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        ai2_tensor::stats::spearman(&fa, &fb) as f64
    }
}

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use ai2_dse::{
        Budget, DesignPoint, DesignSpace, DseDataset, DseTask, EvalEngine, GenerateConfig,
        Objective,
    };
    pub use ai2_maestro::{AcceleratorConfig, CostModel, Dataflow, GemmWorkload};
    pub use ai2_uov::{ConfigCodec, UovCodec};
    pub use ai2_workloads::generator::DseInput;
    pub use airchitect::{train::TrainConfig, Airchitect2, HeadKind, ModelConfig};
}
