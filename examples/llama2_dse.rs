//! DSE for Llama2-7B prefill layers: one-shot learned recommendation vs
//! iterative search, per layer.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example llama2_dse
//! ```

use airchitect_repro::dse::search::{GammaSearcher, Searcher};
use airchitect_repro::prelude::*;
use airchitect_repro::workloads::zoo;

fn main() {
    let engine = EvalEngine::shared(DseTask::table_i_default());

    println!("training AIrchitect v2 (Llama2-7B never seen)…");
    let data = DseDataset::generate_with(
        &engine,
        &GenerateConfig {
            num_samples: 3000,
            seed: 11,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let mut model = Airchitect2::with_engine(
        &ModelConfig::default(),
        std::sync::Arc::clone(&engine),
        &data,
    );
    let cfg = TrainConfig {
        stage1_epochs: 40,
        stage2_epochs: 60,
        ..TrainConfig::default()
    };
    model.fit(&data, &cfg);

    let llama = zoo::llama2_7b();
    let layers = llama.to_dse_layers();
    println!(
        "\nLlama2-7B prefill: {} unique layer shapes (tiled to Table I ranges), {:.2} TMACs total",
        layers.len(),
        llama.total_macs() as f64 / 1e12
    );

    println!(
        "\n{:<22} {:>14} {:>14} {:>14} {:>10}",
        "layer", "v2 one-shot", "GA (200 ev)", "oracle", "v2/oracle"
    );
    let mut ga = GammaSearcher::new(0);
    for layer in &layers {
        let input = DseInput {
            gemm: layer.gemm,
            dataflow: Dataflow::WeightStationary,
        };
        // one-shot: a single forward pass
        let p = model.predict(&[input])[0];
        let v2_lat = engine.score(&input, p).unwrap_or(f64::INFINITY);
        // iterative: 200 cost-model queries
        let ga_res = ga.search(&engine, input, 200);
        let oracle = engine.oracle(&input);
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>14.0} {:>10.3}",
            layer.name,
            v2_lat,
            ga_res.best_score,
            oracle.best_score,
            v2_lat / oracle.best_score
        );
    }

    // timing comparison on one layer: how long does a recommendation take?
    let input = DseInput {
        gemm: layers[0].gemm,
        dataflow: Dataflow::WeightStationary,
    };
    let t0 = std::time::Instant::now();
    let n_rep = 50;
    for _ in 0..n_rep {
        let _ = model.predict(&[input]);
    }
    let oneshot = t0.elapsed() / n_rep;
    let t1 = std::time::Instant::now();
    for _ in 0..n_rep {
        let _ = GammaSearcher::new(1).search(&engine, input, 200);
    }
    let search = t1.elapsed() / n_rep;
    println!(
        "\nper-layer DSE cost: one-shot {:?} vs GA-200 {:?} ({}x)",
        oneshot,
        search,
        (search.as_nanos() / oneshot.as_nanos().max(1))
    );
}
