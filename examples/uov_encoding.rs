//! The paper's Fig. 6, as a runnable demo: the same design choice under
//! pure regression, pure classification, and the Unified Ordinal Vector
//! representation.
//!
//! Run with:
//!
//! ```text
//! cargo run --example uov_encoding
//! ```

use airchitect_repro::uov::{ConfigCodec, OneHotCodec, RegressionCodec, UovCodec};

fn show(label: &str, v: &[f32]) {
    let body: Vec<String> = v.iter().map(|x| format!("{x:.2}")).collect();
    println!("{label:<16} [{}]", body.join(", "));
}

fn main() {
    // 8 discrete design choices, as in the paper's illustration; encode
    // choice index 6 (the "7th" configuration).
    let choices = 8;
    let target = 6;

    println!("design choice {target} of {choices}:\n");

    let regression = RegressionCodec::new(choices);
    show("regression", &regression.encode(target));
    println!("{:<16} single scalar — scalable but unconstrained\n", "");

    let classification = OneHotCodec::new(choices);
    show("classification", &classification.encode(target));
    println!(
        "{:<16} one-hot — constrained but discretizes the space\n",
        ""
    );

    let uov = UovCodec::new(4, choices); // 4 buckets over 8 choices
    let encoded = uov.encode(target);
    show("UOV (K=4)", &encoded);
    println!(
        "{:<16} ordinal ramp: buckets below the target are on and decay\n\
         {:<16} toward it; the boundary value regresses the position\n",
        "", ""
    );

    // all three decode back to the same choice
    assert_eq!(regression.decode(&regression.encode(target)), target);
    assert_eq!(
        classification.decode(&classification.encode(target)),
        target
    );
    assert_eq!(uov.decode(&encoded), target);
    println!("all three representations decode back to choice {target} ✓");

    // the ordinal structure: larger choices dominate smaller ones
    let smaller = uov.encode(2);
    show("\nUOV of choice 2", &smaller);
    let dominated = smaller.iter().zip(&encoded).all(|(s, l)| s <= l);
    println!("choice-2 vector is elementwise ≤ choice-6 vector: {dominated} (ordinal ordering)");
}
