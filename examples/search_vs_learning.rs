//! The paper's Fig. 1 motivation, measured: iterative search-based DSE
//! vs one-shot learning-based DSE on the same workloads — solution
//! quality against the number of cost-model queries spent.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example search_vs_learning
//! ```

use airchitect_repro::dse::search::{
    bo::BoSearcher, AnnealingSearcher, ConfuciuxSearcher, GammaSearcher, RandomSearcher, Searcher,
};
use airchitect_repro::prelude::*;
use airchitect_repro::tensor::rng;
use airchitect_repro::workloads::generator::WorkloadSampler;

fn main() {
    let engine = EvalEngine::shared(DseTask::table_i_default());

    println!("training AIrchitect v2 once (amortized over all future queries)…");
    let data = DseDataset::generate_with(
        &engine,
        &GenerateConfig {
            num_samples: 3000,
            seed: 3,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let mut model = Airchitect2::with_engine(
        &ModelConfig::default(),
        std::sync::Arc::clone(&engine),
        &data,
    );
    let cfg = TrainConfig {
        stage1_epochs: 40,
        stage2_epochs: 60,
        ..TrainConfig::default()
    };
    model.fit(&data, &cfg);

    // fresh evaluation workloads
    let sampler = WorkloadSampler::new();
    let mut r = rng::seeded(999);
    let inputs = sampler.sample_n(&mut r, 30);

    let budgets = [25usize, 50, 100, 200];
    println!("\ngeomean latency vs oracle (lower is better; one-shot spends ZERO queries)\n");
    print!("{:<26}", "method");
    for b in budgets {
        print!("{:>12}", format!("{b} evals"));
    }
    println!();

    let geomean = |scores: &[f64]| -> f64 {
        (scores.iter().map(|s| s.ln()).sum::<f64>() / scores.len() as f64).exp()
    };

    let run = |name: &str, mk: &mut dyn FnMut(u64) -> Box<dyn Searcher>| {
        print!("{name:<26}");
        for &budget in &budgets {
            let mut ratios = Vec::new();
            for (i, input) in inputs.iter().enumerate() {
                let oracle = engine.oracle(input).best_score;
                let res = mk(i as u64).search(&engine, *input, budget);
                ratios.push(res.best_score / oracle);
            }
            print!("{:>12.3}", geomean(&ratios));
        }
        println!();
    };

    run("random", &mut |s| Box::new(RandomSearcher::new(s)));
    run("simulated annealing", &mut |s| {
        Box::new(AnnealingSearcher::new(s))
    });
    run("GAMMA (GA)", &mut |s| Box::new(GammaSearcher::new(s)));
    run("ConfuciuX (RL+GA)", &mut |s| {
        Box::new(ConfuciuxSearcher::new(s))
    });
    run("Bayesian optimization", &mut |s| {
        Box::new(BoSearcher::new(s))
    });

    // the learned model answers with no search at all
    let mut ratios = Vec::new();
    for input in &inputs {
        let oracle = engine.oracle(input).best_score;
        let p = model.predict(&[*input])[0];
        let score = engine
            .score(input, p)
            .unwrap_or_else(|| engine.score_unchecked(input, p) * 10.0);
        ratios.push(score / oracle);
    }
    println!(
        "{:<26}{:>12.3}   (same answer at every budget — 0 queries)",
        "AIrchitect v2 one-shot",
        geomean(&ratios)
    );
}
