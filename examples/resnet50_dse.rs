//! Per-layer DSE for ResNet-50 (an unseen evaluation model) and
//! model-level deployment with the paper's Method 1 and Method 2.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example resnet50_dse
//! ```

use std::sync::Arc;

use airchitect_repro::airchitect::deploy::{method1, method2};
use airchitect_repro::prelude::*;
use airchitect_repro::workloads::zoo;

fn main() {
    // one shared evaluation substrate for dataset labeling, training
    // metrics, per-layer oracles and deployment
    let engine = EvalEngine::shared(DseTask::table_i_default());
    let task = engine.task().clone();

    println!("training AIrchitect v2 on random workloads (ResNet-50 never seen)…");
    let data = DseDataset::generate_with(
        &engine,
        &GenerateConfig {
            num_samples: 3000,
            seed: 7,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let mut model = Airchitect2::with_engine(&ModelConfig::default(), Arc::clone(&engine), &data);
    let cfg = TrainConfig {
        stage1_epochs: 40,
        stage2_epochs: 60,
        ..TrainConfig::default()
    };
    model.fit(&data, &cfg);

    let resnet = zoo::resnet50();
    let layers = resnet.to_dse_layers();
    println!(
        "\nResNet-50: {} unique layers, {} executed instances, {:.2} GMACs",
        resnet.num_unique_layers(),
        resnet.num_layer_instances(),
        resnet.total_macs() as f64 / 1e9
    );

    // per-layer recommendations (weight-stationary mapping as an example)
    println!("\nper-layer recommendations (first 8 layers, WS dataflow):");
    for layer in layers.iter().take(8) {
        let input = DseInput {
            gemm: layer.gemm,
            dataflow: Dataflow::WeightStationary,
        };
        let p = model.predict(&[input])[0];
        let hw = task.space().config(p);
        let oracle = task.space().config(engine.oracle(&input).best_point);
        println!(
            "  {:<28} {:<14} → {:<12} (oracle {})",
            layer.name,
            layer.gemm.to_string(),
            hw.to_string(),
            oracle
        );
    }

    // model-level deployment
    let rec = |input: &DseInput| -> DesignPoint { model.predict(&[*input])[0] };
    let d1 = method1(&engine, &layers, &rec);
    let d2 = method2(&engine, &layers, &rec);
    let oracle_rec = |input: &DseInput| -> DesignPoint { engine.oracle(input).best_point };
    let d_oracle = method1(&engine, &layers, &oracle_rec);

    println!("\nmodel-level deployment:");
    println!(
        "  Method 1 (global argmin) : {} @ {:.3e} cycles",
        task.space().config(d1.point),
        d1.latency
    );
    println!(
        "  Method 2 (bottleneck)    : {} @ {:.3e} cycles",
        task.space().config(d2.point),
        d2.latency
    );
    println!(
        "  oracle reference         : {} @ {:.3e} cycles ({:.3}x of Method 1)",
        task.space().config(d_oracle.point),
        d_oracle.latency,
        d1.latency / d_oracle.latency
    );
}
