//! Quickstart: generate a DSE dataset, train AIrchitect v2, and get a
//! one-shot hardware recommendation for a new layer.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use airchitect_repro::prelude::*;

fn main() {
    // 1. The DSE problem of the paper's Table I: inputs (M, N, K,
    //    dataflow), outputs (#PEs out of 64 options, L2 buffer out of 12),
    //    latency objective under an edge-area budget.
    let task = DseTask::table_i_default();
    println!(
        "design space: {} PE options × {} buffer options = {} configurations",
        task.space().num_pe_choices(),
        task.space().num_buf_choices(),
        task.space().num_points()
    );

    // 2. Generate a labeled dataset: random workloads, each labeled with
    //    the exact optimum by exhaustive evaluation of the cost model
    //    (the quantity ConfuciuX searches for in the paper's pipeline).
    println!("generating dataset…");
    let data = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 3000,
            seed: 42,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let (train, test) = data.split(0.8, 42);

    // 3. Train the two-stage model: contrastive encoder, then UOV decoder.
    println!("training AIrchitect v2 (scaled-down schedule)…");
    let mut model = Airchitect2::new(&ModelConfig::default(), &task, &train);
    let cfg = TrainConfig {
        stage1_epochs: 40,
        stage2_epochs: 60,
        ..TrainConfig::default()
    };
    model.fit(&train, &cfg);

    // 4. Evaluate.
    let p = model.predictor();
    println!("test bucket accuracy : {:.2}%", p.accuracy(&test));
    println!("test exact accuracy  : {:.2}%", p.exact_accuracy(&test));
    println!(
        "latency vs oracle    : {:.3}x (geomean)",
        p.latency_ratio(&test)
    );

    // 5. One-shot inference for a brand-new layer: a BERT-base FFN tile.
    let layer = DseInput {
        gemm: GemmWorkload::new(128, 1536, 768),
        dataflow: Dataflow::WeightStationary,
    };
    let point = model.predict(&[layer])[0];
    let hw = task.space().config(point);
    let oracle = task.oracle(&layer);
    let oracle_hw = task.space().config(oracle.best_point);
    println!("\nnew layer {}:", layer.gemm);
    println!("  recommended : {hw}");
    println!("  oracle      : {oracle_hw}");
    let got = task.score(&layer, point).unwrap_or(f64::INFINITY);
    println!(
        "  latency     : {:.0} cycles (oracle {:.0}, ratio {:.3})",
        got,
        oracle.best_score,
        got / oracle.best_score
    );
}
