//! Service observability over the `ai2_obs` substrate: one lock-free
//! metrics [`Registry`] per shard (plus one service-level registry for
//! cross-shard state like queue depth), merged on read into the
//! [`MetricsSnapshot`] the `stats` endpoint serves.
//!
//! Latency percentiles come from the bounded log-scale
//! [`Histogram`](ai2_obs::Histogram) — fixed memory for the life of the
//! process (the old implementation kept an unbounded sample `Vec`;
//! `ai2_obs`'s `steady_state` test pins the allocation-free fix) at the
//! price of ≲3% quantile error.
//!
//! Metric names (the glossary the README documents):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `serve.served` | counter | recommendations answered, incl. cache hits |
//! | `serve.cache_hits` | counter | answers straight from the response cache |
//! | `serve.deadline_expired` | counter | requests dropped past their deadline |
//! | `serve.errors` | counter | error responses issued |
//! | `serve.sheds` | counter | requests refused at admission (overload policy) |
//! | `serve.queue_depth` | gauge | jobs admitted but not yet drained |
//! | `serve.latency_ns` | histogram | admission→response latency |
//! | `serve.latency_ns.analytic` / `.systolic` / `.cascade` | histogram | same, split by cost backend |
//! | `serve.latency_ns.f32` / `.int8` | histogram | same, split by decoder flavor |
//! | `serve.batch_size` | histogram | drained micro-batch sizes |

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ai2_obs::{Counter, Gauge, Histogram, MetricsDump, Registry};

/// Per-service metrics: a service-level registry plus one registry per
/// shard, all updated lock-free through pre-resolved handles.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    service: Registry,
    queue_depth: Arc<Gauge>,
    errors: Arc<Counter>,
    sheds: Arc<Counter>,
    /// Mirror of the queue-depth gauge so the high-water mark can be
    /// maintained with one `fetch_max` per admission (the gauge itself
    /// has no read-back cheaper than a full registry snapshot).
    depth_mirror: AtomicI64,
    queue_high_water: AtomicU64,
    shards: Vec<ShardMetrics>,
}

/// One shard's metric handles (backed by that shard's own registry, so
/// recording never contends with siblings).
#[derive(Debug)]
pub struct ShardMetrics {
    registry: Registry,
    served: Arc<Counter>,
    cache_hits: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    errors: Arc<Counter>,
    latency_ns: Arc<Histogram>,
    latency_analytic: Arc<Histogram>,
    latency_systolic: Arc<Histogram>,
    latency_cascade: Arc<Histogram>,
    latency_f32: Arc<Histogram>,
    latency_int8: Arc<Histogram>,
    batch_size: Arc<Histogram>,
}

impl ShardMetrics {
    fn new() -> ShardMetrics {
        let registry = Registry::new();
        ShardMetrics {
            served: registry.counter("serve.served"),
            cache_hits: registry.counter("serve.cache_hits"),
            deadline_expired: registry.counter("serve.deadline_expired"),
            errors: registry.counter("serve.errors"),
            latency_ns: registry.histogram("serve.latency_ns"),
            latency_analytic: registry.histogram("serve.latency_ns.analytic"),
            latency_systolic: registry.histogram("serve.latency_ns.systolic"),
            latency_cascade: registry.histogram("serve.latency_ns.cascade"),
            latency_f32: registry.histogram("serve.latency_ns.f32"),
            latency_int8: registry.histogram("serve.latency_ns.int8"),
            batch_size: registry.histogram("serve.batch_size"),
            registry,
        }
    }

    /// Records one served recommendation: its admission→response
    /// latency, the cost backend that verified it, and the decoder
    /// flavor of the replica that answered.
    pub fn record_served(&self, latency_ns: u64, from_cache: bool, backend: &str, int8: bool) {
        self.served.inc();
        if from_cache {
            self.cache_hits.inc();
        }
        self.latency_ns.record(latency_ns);
        match backend {
            "systolic" => self.latency_systolic.record(latency_ns),
            "cascade" => self.latency_cascade.record(latency_ns),
            _ => self.latency_analytic.record(latency_ns),
        }
        if int8 {
            self.latency_int8.record(latency_ns);
        } else {
            self.latency_f32.record(latency_ns);
        }
    }

    /// Records the size of one drained micro-batch.
    pub fn record_batch(&self, size: usize) {
        self.batch_size.record(size as u64);
    }

    /// Records a request dropped for an expired deadline.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.inc();
        self.errors.inc();
    }

    /// Records an error response (bad query, unknown model …).
    pub fn record_error(&self) {
        self.errors.inc();
    }
}

/// A point-in-time metrics snapshot (merged across every shard).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Recommendations answered, including cache hits.
    pub served: u64,
    /// Answers straight from the response cache.
    pub cache_hits: u64,
    /// Requests dropped because their deadline had expired.
    pub deadline_expired: u64,
    /// Error responses issued.
    pub errors: u64,
    /// Milliseconds since service start.
    pub uptime_ms: u64,
    /// Served requests per second over the uptime.
    pub throughput_rps: f64,
    /// Jobs admitted but not yet drained by any shard.
    pub queue_depth: u64,
    /// Median latency (µs); `None` before any request was served (a
    /// cold server has no percentiles — and `NaN` is not legal JSON, so
    /// the wire shows `null` instead).
    pub p50_us: Option<f64>,
    /// 95th percentile (µs); `None` on a cold server.
    pub p95_us: Option<f64>,
    /// 99th percentile (µs); `None` on a cold server.
    pub p99_us: Option<f64>,
    /// Median drained micro-batch size; `None` before any batch ran.
    pub batch_size_p50: Option<f64>,
    /// 95th-percentile micro-batch size; `None` before any batch ran.
    pub batch_size_p95: Option<f64>,
    /// Requests refused at admission by the overload policy.
    pub sheds: u64,
    /// Highest queue depth ever observed at an admission.
    pub queue_high_water: u64,
}

impl ServiceMetrics {
    /// Fresh metrics for `shards` worker shards, clock started now.
    pub fn new(shards: usize) -> ServiceMetrics {
        let service = Registry::new();
        ServiceMetrics {
            started: Instant::now(),
            queue_depth: service.gauge("serve.queue_depth"),
            errors: service.counter("serve.errors"),
            sheds: service.counter("serve.sheds"),
            depth_mirror: AtomicI64::new(0),
            queue_high_water: AtomicU64::new(0),
            service,
            shards: (0..shards.max(1)).map(|_| ShardMetrics::new()).collect(),
        }
    }

    /// The metric handles of shard `i`.
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards[i]
    }

    /// Tracks admissions (`+n`) and drains (`-n`) of the shared queue,
    /// folding the post-admission depth into the high-water mark.
    pub fn queue_depth_add(&self, n: i64) {
        self.queue_depth.add(n);
        let depth = self.depth_mirror.fetch_add(n, Ordering::SeqCst) + n;
        if n > 0 && depth > 0 {
            self.queue_high_water
                .fetch_max(depth as u64, Ordering::SeqCst);
        }
    }

    /// Records a request refused at admission by the overload policy.
    pub fn record_shed(&self) {
        self.sheds.inc();
        self.errors.inc();
    }

    /// Records a service-level error response (malformed line, rejected
    /// admin message) that no shard owns.
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// The merged raw dump across the service and every shard registry.
    pub fn dump(&self) -> MetricsDump {
        let mut dump = self.service.snapshot();
        for shard in &self.shards {
            dump.merge(&shard.registry.snapshot());
        }
        dump
    }

    /// Aggregates counters and histogram percentiles across shards.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let dump = self.dump();
        let served = dump.counter("serve.served");
        let uptime = self.started.elapsed();
        let secs = uptime.as_secs_f64();
        let latency = dump.histogram("serve.latency_ns");
        let lat_us = |q: f64| {
            latency
                .filter(|h| !h.is_empty())
                .and_then(|h| h.quantile(q))
                .map(|ns| ns / 1e3)
        };
        let batch = dump.histogram("serve.batch_size");
        let batch_q = |q: f64| batch.filter(|h| !h.is_empty()).and_then(|h| h.quantile(q));
        MetricsSnapshot {
            served,
            cache_hits: dump.counter("serve.cache_hits"),
            deadline_expired: dump.counter("serve.deadline_expired"),
            errors: dump.counter("serve.errors"),
            uptime_ms: uptime.as_millis() as u64,
            throughput_rps: if secs > 0.0 {
                served as f64 / secs
            } else {
                0.0
            },
            queue_depth: dump.gauge("serve.queue_depth").max(0) as u64,
            p50_us: lat_us(0.50),
            p95_us: lat_us(0.95),
            p99_us: lat_us(0.99),
            batch_size_p50: batch_q(0.50),
            batch_size_p95: batch_q(0.95),
            sheds: dump.counter("serve.sheds"),
            queue_high_water: self.queue_high_water.load(Ordering::SeqCst),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles_aggregate_across_shards() {
        let m = ServiceMetrics::new(2);
        for i in 1..=100u64 {
            // spread over both shards; latencies 1..=100 µs
            m.shard((i % 2) as usize)
                .record_served(i * 1_000, i % 4 == 0, "analytic", false);
        }
        m.shard(0).record_deadline_expired();
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.served, 100);
        assert_eq!(s.cache_hits, 25);
        assert_eq!(s.deadline_expired, 1);
        assert_eq!(s.errors, 2);
        // samples 1..=100 µs → the exact p50 is 50.5; the log-scale
        // histogram interpolates within its bucket (≲3% error)
        let (p50, p95, p99) = (
            s.p50_us.expect("warm percentiles"),
            s.p95_us.expect("warm percentiles"),
            s.p99_us.expect("warm percentiles"),
        );
        assert!((p50 - 50.5).abs() <= 2.0, "p50 {p50}");
        assert!((p95 - 95.05).abs() <= 5.0, "p95 {p95}");
        assert!(p95 > p50 && p99 >= p95);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn empty_window_reports_no_percentiles_not_nan() {
        // NaN is not legal JSON: a cold server's percentiles must be
        // absent (None → null on the wire), never NaN
        let s = ServiceMetrics::new(2).snapshot();
        assert_eq!(s.served, 0);
        assert_eq!(s.p50_us, None);
        assert_eq!(s.p95_us, None);
        assert_eq!(s.p99_us, None);
        assert_eq!(s.batch_size_p50, None);
        assert_eq!(s.batch_size_p95, None);
        assert_eq!(s.queue_depth, 0);
    }

    #[test]
    fn queue_depth_and_batch_sizes_surface_in_the_snapshot() {
        let m = ServiceMetrics::new(1);
        m.queue_depth_add(5);
        m.queue_depth_add(-2);
        for size in [4u64, 4, 4, 8] {
            m.shard(0).record_batch(size as usize);
        }
        let s = m.snapshot();
        assert_eq!(s.queue_depth, 3);
        // the high-water mark keeps the +5 peak even after the drain
        assert_eq!(s.queue_high_water, 5);
        let p50 = s.batch_size_p50.expect("batches recorded");
        assert!((p50 - 4.0).abs() < 0.5, "p50 {p50}");
        assert!(s.batch_size_p95.expect("batches recorded") >= p50);
    }

    #[test]
    fn sheds_count_as_errors_but_keep_their_own_counter() {
        let m = ServiceMetrics::new(1);
        m.record_shed();
        m.record_shed();
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.sheds, 2);
        assert_eq!(s.errors, 3);
        assert_eq!(s.served, 0);
    }

    #[test]
    fn latency_splits_by_backend_and_flavor() {
        let m = ServiceMetrics::new(1);
        m.shard(0).record_served(1_000, false, "analytic", false);
        m.shard(0).record_served(2_000, false, "systolic", true);
        m.shard(0).record_served(3_000, false, "cascade", false);
        m.shard(0).record_served(4_000, false, "cascade", true);
        let dump = m.dump();
        assert_eq!(dump.histogram("serve.latency_ns").unwrap().count(), 4);
        assert_eq!(
            dump.histogram("serve.latency_ns.analytic").unwrap().count(),
            1
        );
        assert_eq!(
            dump.histogram("serve.latency_ns.systolic").unwrap().count(),
            1
        );
        assert_eq!(
            dump.histogram("serve.latency_ns.cascade").unwrap().count(),
            2
        );
        assert_eq!(dump.histogram("serve.latency_ns.f32").unwrap().count(), 2);
        assert_eq!(dump.histogram("serve.latency_ns.int8").unwrap().count(), 2);
    }
}
