//! Service observability: lock-light counters plus a bounded latency
//! reservoir feeding the `stats` endpoint's percentiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ai2_tensor::stats::try_percentile_sorted;

/// How many recent request latencies the percentile window keeps. A ring
/// buffer: once full, new samples overwrite the oldest, so p50/p95/p99
/// always describe recent traffic instead of the whole uptime.
const LATENCY_WINDOW: usize = 1 << 16;

/// Counters and the latency window of one service instance.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    served: AtomicU64,
    cache_hits: AtomicU64,
    deadline_expired: AtomicU64,
    errors: AtomicU64,
    window: Mutex<LatencyWindow>,
}

#[derive(Debug)]
struct LatencyWindow {
    samples_us: Vec<f64>,
    next: usize,
}

/// A point-in-time metrics snapshot (pre-percentile aggregation).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Recommendations answered, including cache hits.
    pub served: u64,
    /// Answers straight from the response cache.
    pub cache_hits: u64,
    /// Requests dropped because their deadline had expired.
    pub deadline_expired: u64,
    /// Error responses issued.
    pub errors: u64,
    /// Milliseconds since service start.
    pub uptime_ms: u64,
    /// Served requests per second over the uptime.
    pub throughput_rps: f64,
    /// Median latency over the recent window (µs); `None` while the
    /// window is empty (a cold server has no percentiles — and `NaN` is
    /// not legal JSON, so the wire shows `null` instead).
    pub p50_us: Option<f64>,
    /// 95th percentile (µs); `None` on an empty window.
    pub p95_us: Option<f64>,
    /// 99th percentile (µs); `None` on an empty window.
    pub p99_us: Option<f64>,
}

impl ServiceMetrics {
    /// Fresh metrics, clock started now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            served: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            window: Mutex::new(LatencyWindow {
                samples_us: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Records one served recommendation and its admission→response
    /// latency.
    pub fn record_served(&self, latency_us: f64, from_cache: bool) {
        self.served.fetch_add(1, Ordering::Relaxed);
        if from_cache {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut w = self.window.lock().expect("latency window poisoned");
        if w.samples_us.len() < LATENCY_WINDOW {
            w.samples_us.push(latency_us);
        } else {
            let next = w.next;
            w.samples_us[next] = latency_us;
            w.next = (next + 1) % LATENCY_WINDOW;
        }
    }

    /// Records a request dropped for an expired deadline.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an error response (bad query, unknown model …).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregates counters and window percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = {
            let w = self.window.lock().expect("latency window poisoned");
            w.samples_us.clone()
        };
        // one sort serves all three quantiles
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let served = self.served.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let secs = uptime.as_secs_f64();
        MetricsSnapshot {
            served,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            uptime_ms: uptime.as_millis() as u64,
            throughput_rps: if secs > 0.0 {
                served as f64 / secs
            } else {
                0.0
            },
            p50_us: try_percentile_sorted(&samples, 50.0),
            p95_us: try_percentile_sorted(&samples, 95.0),
            p99_us: try_percentile_sorted(&samples, 99.0),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles_aggregate() {
        let m = ServiceMetrics::new();
        for i in 1..=100 {
            m.record_served(i as f64, i % 4 == 0);
        }
        m.record_deadline_expired();
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.served, 100);
        assert_eq!(s.cache_hits, 25);
        assert_eq!(s.deadline_expired, 1);
        assert_eq!(s.errors, 2);
        // samples 1..=100 → p50 interpolates to 50.5
        let (p50, p95, p99) = (
            s.p50_us.expect("non-empty window"),
            s.p95_us.expect("non-empty window"),
            s.p99_us.expect("non-empty window"),
        );
        assert!((p50 - 50.5).abs() < 1e-9, "p50 {p50}");
        assert!(p95 > p50 && p99 >= p95);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn empty_window_reports_no_percentiles_not_nan() {
        // NaN is not legal JSON: a cold server's percentiles must be
        // absent (None → null on the wire), never NaN
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s.served, 0);
        assert_eq!(s.p50_us, None);
        assert_eq!(s.p95_us, None);
        assert_eq!(s.p99_us, None);
    }
}
