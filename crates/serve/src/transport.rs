//! Pluggable line transports: how encoded protocol lines travel between
//! clients and the service [`Endpoint`].
//!
//! Both implementations dispatch every received line through the *same*
//! [`Endpoint::handle_line`] seam, so they cannot diverge in decoding,
//! admin handling, or error behavior:
//!
//! * [`TcpTransport`] — the thread-per-connection front end: a
//!   non-blocking listener thread accepting NDJSON connections, one
//!   handler thread per connection (exactly the wire behavior the load
//!   generator and the CI smoke test exercise).
//! * [`crate::EventTransport`] — the event-driven front end: one
//!   acceptor plus a small pool of event-loop threads multiplexing all
//!   connections through a readiness poller (see `event.rs`).
//! * [`VirtualTransport`] — the deterministic in-process transport the
//!   `ai2_simtest` harness drives: no sockets, no threads, no wall
//!   clock. Scripted client lines sit in per-connection outboxes with
//!   explicit earliest-delivery stamps; the test driver decides, one
//!   call at a time, which line is delivered next and when in-flight
//!   answers are polled — so the whole exchange replays bit-for-bit
//!   from a seed, including injected delays and disconnects.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{decode_line, encode_line, Request, Response};
use crate::server::{Endpoint, Pending, Submission};

/// What a transport is reachable at after [`Transport::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundAddr {
    /// A real socket address clients can connect to.
    Tcp(SocketAddr),
    /// No address: lines are injected in-process (the virtual
    /// transport).
    InProcess,
}

impl BoundAddr {
    /// The socket address, when there is one.
    pub fn tcp(&self) -> Option<SocketAddr> {
        match self {
            BoundAddr::Tcp(addr) => Some(*addr),
            BoundAddr::InProcess => None,
        }
    }
}

/// A sharable stop signal: every transport hands clones of one
/// `Shutdown` to the threads it spawns, and [`Transport::stop`] requests
/// it before joining them. Cloning is cheap (an `Arc` bump) and any
/// clone can both request and observe the signal.
#[derive(Debug, Clone, Default)]
pub struct Shutdown(Arc<AtomicBool>);

impl Shutdown {
    /// A fresh, un-requested signal.
    pub fn new() -> Shutdown {
        Shutdown::default()
    }

    /// Asks every holder of this signal to wind down. Idempotent.
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A line transport bound to a service [`Endpoint`].
///
/// The contract is deliberately small: a transport moves request lines
/// *into* [`Endpoint::handle_line`] and response lines *back* to
/// whichever client sent them; how lines arrive (sockets, in-process
/// queues) and when (wall clock, simulated schedule) is the
/// implementation's business. The lifecycle is split so callers learn
/// the address before any traffic flows: [`Transport::bind`] claims
/// resources (sockets) and reports where the transport listens,
/// [`Transport::run`] starts moving lines, [`Transport::stop`] requests
/// the shared [`Shutdown`] signal and joins every thread the transport
/// spawned.
pub trait Transport: Send {
    /// Short name for logs ("tcp" / "event" / "virtual").
    fn name(&self) -> &'static str;

    /// Claims the transport's resources and reports its address.
    ///
    /// # Errors
    ///
    /// Returns the bind error (e.g. the port is taken), or an error if
    /// already bound.
    fn bind(&mut self) -> io::Result<BoundAddr>;

    /// Starts moving lines against `endpoint`. Requires a prior
    /// [`Transport::bind`].
    ///
    /// # Errors
    ///
    /// Returns the startup error (e.g. thread spawn failure, run before
    /// bind).
    fn run(&mut self, endpoint: Endpoint) -> io::Result<()>;

    /// The shared stop signal; requesting it begins a wind-down without
    /// blocking (use [`Transport::stop`] to also join the threads).
    fn shutdown(&self) -> Shutdown;

    /// Stops the transport: requests [`Transport::shutdown`] and joins
    /// every thread it spawned.
    fn stop(&mut self);
}

// --------------------------------------------------------------------
// TCP

/// The production thread-per-connection NDJSON-over-TCP front end.
pub struct TcpTransport {
    addrs: Vec<SocketAddr>,
    listener: Option<TcpListener>,
    local: Option<SocketAddr>,
    shutdown: Shutdown,
    acceptor: Option<JoinHandle<()>>,
    /// Live connection handler threads; stop() joins them all so no
    /// handler can outlive the transport and race a dropped endpoint.
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpTransport {
    /// A transport that will listen on `addr` (use port 0 for an
    /// ephemeral port). Nothing is bound until [`Transport::bind`].
    ///
    /// # Errors
    ///
    /// Returns the address resolution error.
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ));
        }
        Ok(TcpTransport {
            addrs,
            listener: None,
            local: None,
            shutdown: Shutdown::new(),
            acceptor: None,
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (`None` before [`Transport::bind`]).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn bind(&mut self) -> io::Result<BoundAddr> {
        if self.listener.is_some() || self.local.is_some() {
            return Err(io::Error::other("TcpTransport already bound"));
        }
        let listener = TcpListener::bind(&self.addrs[..])?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        self.listener = Some(listener);
        self.local = Some(local);
        Ok(BoundAddr::Tcp(local))
    }

    fn run(&mut self, endpoint: Endpoint) -> io::Result<()> {
        let listener = self
            .listener
            .take()
            .ok_or_else(|| io::Error::other("TcpTransport not bound (or already running)"))?;
        let shutdown = self.shutdown.clone();
        let conns = Arc::clone(&self.conns);
        let handle = std::thread::Builder::new()
            .name("ai2-serve-accept".into())
            .spawn(move || accept_main(&endpoint, &shutdown, &listener, &conns))?;
        self.acceptor = Some(handle);
        Ok(())
    }

    fn shutdown(&self) -> Shutdown {
        self.shutdown.clone()
    }

    fn stop(&mut self) {
        self.shutdown.request();
        if let Some(h) = self.acceptor.take() {
            h.join().expect("acceptor panicked");
        }
        let handlers = std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for h in handlers {
            h.join().expect("connection handler panicked");
        }
    }
}

fn accept_main(
    endpoint: &Endpoint,
    shutdown: &Shutdown,
    listener: &TcpListener,
    conns: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shutdown.requested() && !endpoint.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                let endpoint = endpoint.clone();
                let conn_shutdown = shutdown.clone();
                let spawned = std::thread::Builder::new()
                    .name("ai2-serve-conn".into())
                    .spawn(move || {
                        let _ = connection_main(&endpoint, &conn_shutdown, stream);
                    });
                if let Ok(handle) = spawned {
                    let mut registry = conns.lock().expect("conn registry poisoned");
                    // finished handlers need no join; drop them here so
                    // the registry tracks only live connections
                    registry.retain(|h: &JoinHandle<()>| !h.is_finished());
                    registry.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

fn connection_main(endpoint: &Endpoint, shutdown: &Shutdown, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if shutdown.requested() || endpoint.stopped() {
            return Ok(());
        }
        // `line` is cleared only after a complete line is handled: a
        // read timeout mid-line leaves the partial fragment in place so
        // the next read_line call appends the rest (a slow writer must
        // not have its request torn in half).
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {
                let resp = match endpoint.handle_line(&line) {
                    Submission::Ignored => {
                        line.clear();
                        continue;
                    }
                    Submission::Ready(resp) => resp,
                    // TCP connections answer strictly in request order,
                    // so a queued recommendation blocks the line
                    Submission::Queued(pending) => pending.wait(),
                };
                line.clear();
                writer.write_all(encode_line(&resp).as_bytes())?;
                writer.write_all(b"\n")?;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll the stop flag, then keep reading
            }
            Err(e) => return Err(e),
        }
    }
}

/// A blocking NDJSON client over one TCP connection — what the load
/// generator and the CI smoke test speak.
pub struct TcpClient {
    pub(crate) reader: BufReader<TcpStream>,
    pub(crate) writer: TcpStream,
}

impl TcpClient {
    /// Connects to a running service.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(TcpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request line and blocks for its response line.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or an unparsable response.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        self.writer.write_all(encode_line(req).as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        decode_line(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

// --------------------------------------------------------------------
// virtual

/// What one [`VirtualTransport::deliver_next`] call did.
// an `Answered` response is consumed by the caller in the same step it
// is produced, so the size skew against the unit variants is transient
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Delivery {
    /// The line was answered inline (stats, admin, malformed input).
    Answered(Response),
    /// The line was a recommendation and is now queued for a shard.
    Submitted,
    /// The line was consumed but owes no response (a blank keepalive —
    /// the same lines the TCP path skips without answering).
    Ignored,
    /// The connection's front line is still under its delivery delay.
    Held,
    /// The connection has nothing queued.
    Empty,
    /// The connection was disconnected; nothing can be delivered.
    Disconnected,
}

struct HeldLine {
    line: String,
    /// Virtual-clock nanosecond before which the line must not arrive
    /// at the server (injected network delay).
    not_before_ns: u64,
}

struct VirtualConn {
    connected: bool,
    outbox: VecDeque<HeldLine>,
    /// Queued recommendations awaiting a shard, in submission order.
    inflight: VecDeque<Pending>,
}

/// The deterministic in-process transport: per-connection outboxes of
/// scripted lines, explicit delivery, explicit completion polling. All
/// ordering decisions belong to the caller (the simulation driver), so
/// a run is a pure function of the call sequence.
#[derive(Default)]
pub struct VirtualTransport {
    endpoint: Option<Endpoint>,
    conns: Vec<VirtualConn>,
    shutdown: Shutdown,
}

impl VirtualTransport {
    /// An unstarted transport with no connections.
    pub fn new() -> VirtualTransport {
        VirtualTransport::default()
    }

    /// Opens a new virtual connection and returns its id.
    pub fn open(&mut self) -> usize {
        self.conns.push(VirtualConn {
            connected: true,
            outbox: VecDeque::new(),
            inflight: VecDeque::new(),
        });
        self.conns.len() - 1
    }

    /// Number of connections ever opened (ids are never reused).
    pub fn conns(&self) -> usize {
        self.conns.len()
    }

    /// Whether `conn` is still connected.
    pub fn connected(&self, conn: usize) -> bool {
        self.conns[conn].connected
    }

    /// Drops the connection: undelivered lines are discarded (they
    /// never reached the server), but requests already admitted stay
    /// in flight — exactly like a TCP client hanging up mid-compute —
    /// and still surface through [`VirtualTransport::poll`].
    pub fn disconnect(&mut self, conn: usize) {
        let c = &mut self.conns[conn];
        c.connected = false;
        c.outbox.clear();
    }

    /// Scripts one wire line on `conn`, to be delivered no earlier than
    /// virtual-clock nanosecond `not_before_ns`.
    pub fn enqueue(&mut self, conn: usize, line: String, not_before_ns: u64) {
        assert!(self.conns[conn].connected, "enqueue on a dead connection");
        self.conns[conn].outbox.push_back(HeldLine {
            line,
            not_before_ns,
        });
    }

    /// Delivers the front line of `conn`'s outbox to the endpoint if
    /// its delay has elapsed at virtual time `now_ns`.
    pub fn deliver_next(&mut self, conn: usize, now_ns: u64) -> Delivery {
        let endpoint = self.endpoint.as_ref().expect("transport not started");
        let c = &mut self.conns[conn];
        if !c.connected {
            return Delivery::Disconnected;
        }
        let Some(front) = c.outbox.front() else {
            return Delivery::Empty;
        };
        if now_ns < front.not_before_ns {
            return Delivery::Held;
        }
        let held = c.outbox.pop_front().expect("front just seen");
        match endpoint.handle_line(&held.line) {
            Submission::Ignored => Delivery::Ignored,
            Submission::Ready(resp) => Delivery::Answered(resp),
            Submission::Queued(pending) => {
                c.inflight.push_back(pending);
                Delivery::Submitted
            }
        }
    }

    /// Polls every in-flight submission across all connections (in
    /// connection order, then submission order — deterministic) and
    /// returns the newly completed `(conn, response)` pairs.
    pub fn poll(&mut self) -> Vec<(usize, Response)> {
        let mut done = Vec::new();
        for (id, conn) in self.conns.iter_mut().enumerate() {
            let mut still = VecDeque::with_capacity(conn.inflight.len());
            for pending in conn.inflight.drain(..) {
                match pending.poll() {
                    Some(resp) => done.push((id, resp)),
                    None => still.push_back(pending),
                }
            }
            conn.inflight = still;
        }
        done
    }

    /// Lines scripted but not yet delivered, across all connections.
    pub fn held_lines(&self) -> usize {
        self.conns.iter().map(|c| c.outbox.len()).sum()
    }

    /// Lines scripted but not yet delivered on one connection.
    pub fn held_on(&self, conn: usize) -> usize {
        self.conns[conn].outbox.len()
    }

    /// The largest `not_before_ns` of any held line (0 when none) — the
    /// virtual time by which every scripted line becomes deliverable.
    pub fn latest_hold_ns(&self) -> u64 {
        self.conns
            .iter()
            .flat_map(|c| c.outbox.iter().map(|l| l.not_before_ns))
            .max()
            .unwrap_or(0)
    }

    /// Admitted requests still awaiting an answer, across all
    /// connections.
    pub fn inflight(&self) -> usize {
        self.conns.iter().map(|c| c.inflight.len()).sum()
    }
}

impl Transport for VirtualTransport {
    fn name(&self) -> &'static str {
        "virtual"
    }

    fn bind(&mut self) -> io::Result<BoundAddr> {
        Ok(BoundAddr::InProcess)
    }

    fn run(&mut self, endpoint: Endpoint) -> io::Result<()> {
        self.endpoint = Some(endpoint);
        Ok(())
    }

    fn shutdown(&self) -> Shutdown {
        self.shutdown.clone()
    }

    fn stop(&mut self) {
        self.shutdown.request();
        self.endpoint = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, VirtualClock};
    use crate::protocol::{AdminRequest, Query, RecommendRequest};
    use crate::server::{Driver, RecommendService, ServeConfig};
    use ai2_dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
    use airchitect::train::TrainConfig;
    use airchitect::{Airchitect2, ModelConfig};

    fn gemm_req(id: u64, m: u64) -> RecommendRequest {
        RecommendRequest {
            id,
            query: Query::Gemm {
                m,
                n: 280,
                k: 140,
                dataflow: "os".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        }
    }

    fn services() -> (RecommendService, RecommendService, Arc<VirtualClock>) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 40,
                seed: 21,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task.clone());
        let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        let ckpt = model.checkpoint();
        let threaded = RecommendService::start(ServeConfig::default(), engine, ckpt.clone());
        let clock = Arc::new(VirtualClock::new());
        let stepped = RecommendService::start_with(
            ServeConfig {
                driver: Driver::Manual,
                ..ServeConfig::default()
            },
            EvalEngine::shared(task),
            ckpt,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (threaded, stepped, clock)
    }

    #[test]
    fn virtual_transport_matches_the_threaded_in_process_path() {
        let (threaded, stepped, clock) = services();
        // ground truth from the production threaded service
        let expected = threaded.client().recommend(gemm_req(7, 48));
        threaded.shutdown();

        let mut vt = VirtualTransport::new();
        assert_eq!(vt.bind().unwrap(), BoundAddr::InProcess);
        vt.run(stepped.endpoint()).unwrap();
        assert_eq!(vt.name(), "virtual");
        assert!(!vt.shutdown().requested());
        let conn = vt.open();
        vt.enqueue(
            conn,
            crate::protocol::encode_line(&Request::Recommend(gemm_req(7, 48))),
            0,
        );
        assert!(matches!(
            vt.deliver_next(conn, clock.now_ns()),
            Delivery::Submitted
        ));
        assert!(vt.poll().is_empty(), "no shard has stepped yet");
        assert!(stepped.step_shard(0));
        let done = vt.poll();
        assert_eq!(done.len(), 1);
        assert_eq!(vt.inflight(), 0);
        let (Response::Recommendation(a), Response::Recommendation(b)) = (&done[0].1, &expected)
        else {
            panic!("expected recommendations: {done:?} / {expected:?}");
        };
        assert_eq!(a.point, b.point);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        stepped.shutdown();
    }

    #[test]
    fn virtual_transport_honors_delays_disconnects_and_inline_answers() {
        let (threaded, stepped, clock) = services();
        threaded.shutdown();
        let mut vt = VirtualTransport::new();
        vt.bind().unwrap();
        vt.run(stepped.endpoint()).unwrap();
        let conn = vt.open();

        // inline answers: stats and malformed lines never occupy a shard
        vt.enqueue(
            conn,
            crate::protocol::encode_line(&Request::Admin(AdminRequest::Stats { id: 9 })),
            0,
        );
        let Delivery::Answered(Response::Stats(s)) = vt.deliver_next(conn, clock.now_ns()) else {
            panic!("stats must answer inline");
        };
        assert_eq!(s.id, 9);
        vt.enqueue(conn, "{not json}".into(), 0);
        assert!(matches!(
            vt.deliver_next(conn, clock.now_ns()),
            Delivery::Answered(Response::Error { .. })
        ));

        // a blank keepalive is consumed without a response — and must
        // NOT masquerade as an empty outbox, or a driver would strand
        // the lines queued behind it
        vt.enqueue(conn, "  ".into(), 0);
        vt.enqueue(
            conn,
            crate::protocol::encode_line(&Request::Admin(AdminRequest::Stats { id: 11 })),
            0,
        );
        assert!(matches!(
            vt.deliver_next(conn, clock.now_ns()),
            Delivery::Ignored
        ));
        assert!(matches!(
            vt.deliver_next(conn, clock.now_ns()),
            Delivery::Answered(Response::Stats(s)) if s.id == 11
        ));

        // a delayed line is held until the virtual clock passes its stamp
        vt.enqueue(
            conn,
            crate::protocol::encode_line(&Request::Recommend(gemm_req(1, 33))),
            5_000_000,
        );
        assert!(matches!(
            vt.deliver_next(conn, clock.now_ns()),
            Delivery::Held
        ));
        assert_eq!(vt.latest_hold_ns(), 5_000_000);
        clock.advance_ms(5);
        assert!(matches!(
            vt.deliver_next(conn, clock.now_ns()),
            Delivery::Submitted
        ));

        // a disconnect drops undelivered lines but in-flight work still
        // completes (the server never drops an admitted request)
        vt.enqueue(conn, "{never delivered}".into(), 0);
        vt.disconnect(conn);
        assert!(!vt.connected(conn));
        assert_eq!(vt.held_lines(), 0);
        assert!(matches!(
            vt.deliver_next(conn, clock.now_ns()),
            Delivery::Disconnected
        ));
        assert_eq!(vt.inflight(), 1);
        stepped.step_shard(1);
        let done = vt.poll();
        assert!(
            matches!(&done[..], [(c, Response::Recommendation(r))] if *c == conn && r.id == 1),
            "unexpected {done:?}"
        );
        stepped.shutdown();
    }
}
