//! `ai2_serve` — a batched, sharded recommendation service over the
//! [`EvalEngine`](ai2_dse::EvalEngine) and the trained AIrchitect v2
//! predictor.
//!
//! The paper's pitch is that a trained predictor answers design-space
//! queries orders of magnitude faster than search; this crate puts a
//! service in front of that claim. Clients ask *"what hardware should
//! run this GEMM (or this whole model) under this objective and area
//! budget?"* over a newline-delimited-JSON protocol, and get back a
//! design point with its engine-verified cost.
//!
//! * [`protocol`] — the wire types ([`Request`], [`Response`],
//!   [`Recommendation`], [`ServeStats`]) and the canonical [`QueryKey`].
//! * [`recommend`] — the pure batched kernel, now the **pipeline
//!   executor**: requests are grouped per selected
//!   [`PipelineSet`](ai2_dse::PipelineSet) entry and each group runs
//!   its stage graph over one coalesced micro-batch; requests that name
//!   no pipeline run the degenerate single-stage `"default"` pipeline,
//!   bit-identical to the historical one-shot path. Model queries run
//!   the Method-1-style whole-model deployment fold.
//! * [`server`] — the runtime: admission queue, micro-batching worker
//!   shards (each a warm model replica restored from one
//!   [`ModelCheckpoint`](airchitect::ModelCheckpoint)), an LRU response
//!   cache keyed by canonical query, per-request deadlines, a TCP
//!   listener plus in-process [`Client`], and a `stats` endpoint with
//!   throughput and p50/p95/p99 latency.
//! * [`transport`] — pluggable line transports over one shared
//!   [`Endpoint`](server::Endpoint) seam: the thread-per-connection TCP
//!   front end and the deterministic in-process [`VirtualTransport`] the
//!   `ai2_simtest` harness drives (seeded delivery order, injectable
//!   delays and disconnects, no sockets).
//! * [`event`] — the event-driven front end: one acceptor plus N
//!   event-loop threads multiplexing every connection through a
//!   vendored readiness poller (`mini-poll`), with per-connection write
//!   backpressure; pairs with `ServeConfig::overload` shed-or-queue
//!   admission control for 10k-connection scale.
//! * [`clock`] — the service's notion of time behind a trait:
//!   [`WallClock`] in production, [`VirtualClock`] under simulation so
//!   deadline expiry replays deterministically.
//! * [`registry`] — the live-model slot: versioned checkpoints are
//!   published atomically (monotonic lineage versions, freezable) and
//!   worker shards hot-swap onto them at micro-batch boundaries without
//!   dropping a request.
//! * [`refresh`] — the online-learning loop: a replay buffer of served
//!   queries, oracle labeling through the shared engine, active-learning
//!   selection of the most-disagreeing queries, a stage-2 fine-tune, and
//!   a publish through the registry.
//! * [`metrics`] — service observability over the [`ai2_obs`] substrate:
//!   one lock-free registry per shard merged on read, bounded log-scale
//!   latency histograms, and the per-request span tree (admission →
//!   queue wait → batch → kernel) exported as Chrome `trace_event`
//!   JSON through the `Trace` admin message or `serve --trace-out`.
//!
//! # Quickstart (in-process)
//!
//! ```no_run
//! use std::sync::Arc;
//! use ai2_dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
//! use ai2_serve::{Query, RecommendRequest, RecommendService, ServeConfig};
//! use airchitect::{train::TrainConfig, Airchitect2, ModelConfig};
//!
//! // train (or load) a model, snapshot it, start the service
//! let task = DseTask::table_i_default();
//! let ds = DseDataset::generate(&task, &GenerateConfig::default());
//! let engine = EvalEngine::shared(task);
//! let mut model = Airchitect2::with_engine(&ModelConfig::default(), Arc::clone(&engine), &ds);
//! model.fit(&ds, &TrainConfig::quick());
//! let mut service = RecommendService::start(ServeConfig::default(), engine, model.checkpoint());
//!
//! let addr = service.listen("127.0.0.1:0").unwrap(); // TCP front end
//! let resp = service.client().recommend(RecommendRequest {
//!     id: 1,
//!     query: Query::Gemm { m: 64, n: 512, k: 256, dataflow: "ws".into() },
//!     objective: Objective::Latency,
//!     budget: Budget::Edge,
//!     deadline_ms: Some(50),
//!     backend: None, // or Some("systolic".into()) for cycle-accurate costs
//!     pipeline: None, // or Some("staged".into()) for a configured stage graph
//! });
//! println!("{resp:?} (also serving on {addr})");
//! ```

pub mod cache;
pub mod clock;
pub mod event;
pub mod metrics;
pub mod protocol;
pub mod recommend;
pub mod refresh;
pub mod registry;
pub mod server;
pub mod transport;

pub use clock::{Clock, VirtualClock, WallClock};
pub use event::EventTransport;
pub use metrics::{MetricsSnapshot, ServiceMetrics, ShardMetrics};
pub use protocol::{
    AdminAck, AdminRequest, Query, QueryKey, RecommendRequest, Recommendation, Request, Response,
    ServeStats,
};
pub use recommend::{recommend_batch, recommend_batch_in, recommend_batch_with, BackendEngines};
pub use refresh::{refresh_once, RefreshConfig, RefreshOutcome, ReplayBuffer, ReplayEntry};
pub use registry::{ModelRegistry, PublishError};
pub use server::{
    Client, Driver, Endpoint, NotifyFn, OverloadPolicy, Pending, RecommendService, ServeConfig,
    Submission,
};
pub use transport::{
    BoundAddr, Delivery, Shutdown, TcpClient, TcpTransport, Transport, VirtualTransport,
};
