//! The pure recommendation kernel — now the **pipeline executor**: a
//! batch of parsed requests against one warm [`Airchitect2`], one
//! [`EvalEngine`] per cost backend ([`BackendEngines`]), and a
//! [`PipelineSet`] of named stage graphs, no queues or sockets.
//!
//! This is the function the worker shards call on every micro-batch, and
//! the function tests call directly to establish the ground truth the
//! served path must match bit-for-bit. Requests that select no pipeline
//! run the registry's built-in `"default"` — the degenerate single-stage
//! [`PredictorOneShot`](ai2_dse::pipeline::PredictorOneShot) pipeline,
//! whose answers are bit-identical to the historical one-shot path (the
//! per-(backend, objective) grouping that used to live here moved into
//! that stage, where it now exists exactly once). Per-row model
//! inference is batch-invariant (each row's forward pass touches only
//! its own activations), so coalescing or splitting requests across
//! `predict` calls — which pipeline grouping does — returns exactly what
//! per-request calls would.

use std::collections::HashSet;
use std::sync::Arc;

use ai2_dse::{DesignPoint, EvalEngine, Objective, Pipeline, PipelineQuery, PipelineSet};
use ai2_maestro::Dataflow;
use ai2_workloads::generator::DseInput;
use ai2_workloads::zoo;
use airchitect::{Airchitect2, InferenceScratch};

use crate::protocol::{Query, RecommendRequest, Recommendation, Response};

pub use ai2_dse::BackendEngines;

/// Answers a batch of recommendation requests against the built-in
/// default registry (requests selecting a named pipeline get an error;
/// the serving layer passes its configured set through
/// [`recommend_batch_in`]).
pub fn recommend_batch(
    model: &Airchitect2,
    engines: &BackendEngines,
    reqs: &[RecommendRequest],
) -> Vec<Response> {
    let mut scratch = InferenceScratch::new();
    recommend_batch_with(model, engines, reqs, &mut scratch)
}

/// [`recommend_batch`] with a caller-owned [`InferenceScratch`] — the
/// shard hot path. A shard that keeps its scratch across micro-batches
/// reuses the same activation buffers on every forward pass, so the
/// steady-state serving loop performs zero heap allocations inside the
/// model (see the `zero_alloc` test in the `airchitect` crate). Answers
/// are bit-identical to the fresh-scratch path: the scratch holds
/// capacity, never values.
pub fn recommend_batch_with(
    model: &Airchitect2,
    engines: &BackendEngines,
    reqs: &[RecommendRequest],
    scratch: &mut InferenceScratch,
) -> Vec<Response> {
    recommend_batch_in(model, engines, &PipelineSet::default(), reqs, scratch)
}

/// The full executor: answers a batch against a configured
/// [`PipelineSet`]. GEMM queries are grouped per selected pipeline and
/// each group runs its stage graph over one coalesced micro-batch;
/// model (whole-network) queries run the Method-1 deployment fold and
/// accept only the default pipeline. Responses come back in request
/// order.
pub fn recommend_batch_in(
    model: &Airchitect2,
    engines: &BackendEngines,
    pipelines: &PipelineSet,
    reqs: &[RecommendRequest],
    scratch: &mut InferenceScratch,
) -> Vec<Response> {
    let mut out: Vec<Option<Response>> = vec![None; reqs.len()];

    // -- partition ----------------------------------------------------
    // GEMM queries, grouped by selected pipeline in first-appearance
    // order (each entry: the pipeline and its member queries, as
    // (request index, compiled query) pairs).
    type Group = (Arc<Pipeline>, Vec<(usize, PipelineQuery)>);
    let mut groups: Vec<Group> = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        let backend = match req.backend_id() {
            Ok(backend) => backend,
            Err(e) => {
                out[i] = Some(Response::Error {
                    id: req.id,
                    message: e.to_string(),
                });
                continue;
            }
        };
        let Some(pipeline) = pipelines.get(req.pipeline.as_deref()) else {
            let name = req.pipeline.as_deref().unwrap_or(PipelineSet::DEFAULT);
            out[i] = Some(Response::Error {
                id: req.id,
                message: format!(
                    "unknown pipeline {name:?} (expected one of {})",
                    pipelines.names().join(", ")
                ),
            });
            continue;
        };
        match &req.query {
            Query::Gemm { dataflow, .. } => match req.query.as_dse_input() {
                Some(input) => {
                    let q = PipelineQuery {
                        input,
                        objective: req.objective,
                        budget: req.budget,
                        backend,
                    };
                    match groups.iter_mut().find(|(p, _)| p.name() == pipeline.name()) {
                        Some((_, members)) => members.push((i, q)),
                        None => groups.push((Arc::clone(pipeline), vec![(i, q)])),
                    }
                }
                None => {
                    out[i] = Some(Response::Error {
                        id: req.id,
                        message: format!(
                            "invalid GEMM query (dimensions must be ≥ 1; dataflow {dataflow:?} \
                             must be ws, os or rs)"
                        ),
                    });
                }
            },
            Query::Model { name } => {
                if !pipeline.is_one_shot() {
                    out[i] = Some(Response::Error {
                        id: req.id,
                        message: format!(
                            "pipeline {:?} cannot serve model queries (staged pipelines apply \
                             to GEMM queries)",
                            pipeline.name()
                        ),
                    });
                    continue;
                }
                match zoo::model_by_name(name) {
                    Some(workload) => {
                        let engine = engines.get(backend);
                        let (point, cost, feasible, layers) = recommend_model(
                            model,
                            engine,
                            &workload,
                            req.objective,
                            req.budget,
                            scratch,
                        );
                        out[i] = Some(recommendation(
                            engine, req, point, cost, feasible, layers, backend,
                        ));
                    }
                    None => {
                        out[i] = Some(Response::Error {
                            id: req.id,
                            message: format!("unknown model {name:?}"),
                        });
                    }
                }
            }
        }
    }

    // -- one stage-graph run per pipeline group -----------------------
    let mut predict = |inputs: &[DseInput]| model.predict_with(inputs, scratch);
    for (pipeline, members) in &groups {
        let queries: Vec<PipelineQuery> = members.iter().map(|&(_, q)| q).collect();
        let answers = pipeline.run_batch(engines, &queries, &mut predict);
        for (&(i, _), answer) in members.iter().zip(&answers) {
            let best = answer.best;
            let engine = engines.get(best.backend);
            out[i] = Some(recommendation(
                engine,
                &reqs[i],
                best.point,
                best.cost,
                best.feasible,
                1,
                best.backend,
            ));
        }
    }

    out.into_iter()
        .map(|r| r.expect("every request answered"))
        .collect()
}

/// Whole-model recommendation: predict a design point for every
/// `(layer, dataflow)` input in one forward pass, deduplicate the
/// candidates, and adopt the one minimising the engine-verified
/// whole-model cost under the requested objective (the paper's
/// deployment Method 1, generalised to arbitrary objectives and
/// budgets).
fn recommend_model(
    model: &Airchitect2,
    engine: &EvalEngine,
    workload: &ai2_workloads::ModelWorkload,
    objective: Objective,
    budget: ai2_dse::Budget,
    scratch: &mut InferenceScratch,
) -> (DesignPoint, f64, bool, usize) {
    let layers = workload.to_dse_layers();
    let mut inputs = Vec::with_capacity(layers.len() * Dataflow::ALL.len());
    for layer in &layers {
        for df in Dataflow::ALL {
            inputs.push(DseInput {
                gemm: layer.gemm,
                dataflow: df,
            });
        }
    }
    let preds = model.predict_with(&inputs, scratch);
    let mut seen: HashSet<DesignPoint> = HashSet::new();
    let mut cands: Vec<DesignPoint> = Vec::new();
    for p in preds {
        if engine.is_feasible_under(p, budget) && seen.insert(p) {
            cands.push(p);
        }
    }
    if cands.is_empty() {
        // every per-layer recommendation violated the budget: fall back
        // to the smallest configuration
        cands.push(DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        });
    }
    let costs = engine.model_cost_batch_with(&layers, &cands, objective);
    let mut best = 0usize;
    for (i, cost) in costs.iter().enumerate() {
        if *cost < costs[best] {
            best = i;
        }
    }
    (
        cands[best],
        costs[best],
        engine.is_feasible_under(cands[best], budget),
        layers.len(),
    )
}

fn recommendation(
    engine: &EvalEngine,
    req: &RecommendRequest,
    point: DesignPoint,
    cost: f64,
    feasible: bool,
    layers: usize,
    backend: ai2_dse::BackendId,
) -> Response {
    let hw = engine.space().config(point);
    Response::Recommendation(Recommendation {
        id: req.id,
        point,
        num_pes: hw.num_pes,
        l2_bytes: hw.l2_bytes,
        cost,
        feasible,
        layers,
        backend: backend.as_str().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Query, RecommendRequest};
    use ai2_dse::pipeline::{RefineMethod, StageCfg};
    use ai2_dse::{BackendId, Budget, DseDataset, DseTask, GenerateConfig, PipelineCfg};
    use airchitect::train::TrainConfig;
    use airchitect::ModelConfig;
    use std::sync::Arc;

    fn trained() -> (BackendEngines, Airchitect2) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 50,
                seed: 11,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task);
        let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        (BackendEngines::new(engine), model)
    }

    fn gemm(id: u64, m: u64, objective: Objective) -> RecommendRequest {
        RecommendRequest {
            id,
            query: Query::Gemm {
                m,
                n: 256,
                k: 128,
                dataflow: "os".into(),
            },
            objective,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        }
    }

    fn staged_set() -> PipelineSet {
        PipelineSet::with(&[PipelineCfg {
            name: "staged".into(),
            stages: vec![
                StageCfg::Predict { backend: None },
                StageCfg::Refine {
                    method: RefineMethod::Annealing,
                    budget: 24,
                    seed: 5,
                    backend: None,
                },
                StageCfg::Verify {
                    k: 2,
                    backend: BackendId::Systolic,
                },
            ],
        }])
        .unwrap()
    }

    #[test]
    fn batched_answers_match_singleton_answers() {
        let (engines, model) = trained();
        let reqs: Vec<RecommendRequest> = (0..8)
            .map(|i| {
                let mut req = gemm(
                    i,
                    16 + i * 13,
                    [Objective::Latency, Objective::Energy, Objective::Edp][i as usize % 3],
                );
                // mix backends so batching crosses the routing groups
                if i % 2 == 1 {
                    req.backend = Some("systolic".into());
                }
                req
            })
            .collect();
        let batched = recommend_batch(&model, &engines, &reqs);
        for (req, expect) in reqs.iter().zip(&batched) {
            let single = recommend_batch(&model, &engines, std::slice::from_ref(req));
            assert_eq!(&single[0], expect, "batching changed the answer");
        }
    }

    #[test]
    fn reused_scratch_answers_bit_identically() {
        // the shard hot path keeps one InferenceScratch across
        // micro-batches; recycled activation buffers must never change
        // an answer, batch after batch
        let (engines, model) = trained();
        let mut scratch = InferenceScratch::new();
        for round in 0..3 {
            let reqs: Vec<RecommendRequest> = (0..6)
                .map(|i| gemm(i, 8 + i * 11 + round, Objective::Latency))
                .collect();
            let fresh = recommend_batch(&model, &engines, &reqs);
            let reused = recommend_batch_with(&model, &engines, &reqs, &mut scratch);
            assert_eq!(fresh, reused, "round {round}");
        }
    }

    #[test]
    fn gemm_cost_is_engine_verified() {
        let (engines, model) = trained();
        let req = gemm(5, 64, Objective::Latency);
        let resp = recommend_batch(&model, &engines, std::slice::from_ref(&req));
        let Response::Recommendation(rec) = &resp[0] else {
            panic!("expected recommendation, got {resp:?}");
        };
        assert_eq!(rec.id, 5);
        assert_eq!(rec.layers, 1);
        assert_eq!(rec.backend, "analytic");
        let input = req.query.as_dse_input().unwrap();
        let engine = engines.primary();
        let direct = engine.score_unchecked_with(&input, rec.point, Objective::Latency);
        assert_eq!(rec.cost.to_bits(), direct.to_bits());
        assert_eq!(rec.feasible, engine.is_feasible(rec.point));
    }

    #[test]
    fn systolic_backend_routes_to_the_systolic_engine() {
        let (engines, model) = trained();
        let mut sys_req = gemm(7, 64, Objective::Latency);
        sys_req.backend = Some("systolic".into());
        let ana_req = gemm(8, 64, Objective::Latency);
        let resp = recommend_batch(&model, &engines, &[sys_req.clone(), ana_req]);
        let (Response::Recommendation(sys), Response::Recommendation(ana)) = (&resp[0], &resp[1])
        else {
            panic!("expected recommendations, got {resp:?}");
        };
        assert_eq!(sys.backend, "systolic");
        assert_eq!(ana.backend, "analytic");
        // the predicted point is backend-independent; its verified cost
        // is not
        assert_eq!(sys.point, ana.point);
        assert_ne!(sys.cost.to_bits(), ana.cost.to_bits());
        let input = sys_req.query.as_dse_input().unwrap();
        let direct = engines
            .get(ai2_dse::BackendId::Systolic)
            .score_unchecked_with(&input, sys.point, Objective::Latency);
        assert_eq!(sys.cost.to_bits(), direct.to_bits());
    }

    #[test]
    fn unknown_backend_is_a_clean_error() {
        let (engines, model) = trained();
        let mut req = gemm(3, 32, Objective::Latency);
        req.backend = Some("rtl".into());
        let resp = recommend_batch(&model, &engines, &[req]);
        assert!(
            matches!(&resp[0], Response::Error { id: 3, message } if message.contains("backend")),
            "unexpected {resp:?}"
        );
    }

    #[test]
    fn model_query_returns_feasible_deployment() {
        let (engines, model) = trained();
        let req = RecommendRequest {
            id: 9,
            query: Query::Model {
                name: "resnet18".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        };
        let resp = recommend_batch(&model, &engines, &[req]);
        let Response::Recommendation(rec) = &resp[0] else {
            panic!("expected recommendation, got {resp:?}");
        };
        assert!(rec.feasible);
        assert!(rec.cost > 0.0);
        assert_eq!(rec.layers, zoo::resnet18().to_dse_layers().len());
    }

    #[test]
    fn unknown_model_and_bad_dataflow_are_errors() {
        let (engines, model) = trained();
        let bad_model = RecommendRequest {
            id: 1,
            query: Query::Model {
                name: "skynet".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        };
        let mut bad_df = gemm(2, 10, Objective::Latency);
        bad_df.query = Query::Gemm {
            m: 1,
            n: 1,
            k: 1,
            dataflow: "zigzag".into(),
        };
        let resp = recommend_batch(&model, &engines, &[bad_model, bad_df]);
        assert!(matches!(&resp[0], Response::Error { id: 1, .. }));
        assert!(matches!(&resp[1], Response::Error { id: 2, .. }));
    }

    #[test]
    fn explicit_default_pipeline_answers_bit_identically_to_none() {
        let (engines, model) = trained();
        let mut scratch = InferenceScratch::new();
        let set = staged_set();
        let reqs: Vec<RecommendRequest> = (0..6)
            .map(|i| {
                gemm(
                    i,
                    12 + i * 17,
                    [Objective::Latency, Objective::Energy, Objective::Edp][i as usize % 3],
                )
            })
            .collect();
        let implicit = recommend_batch_in(&model, &engines, &set, &reqs, &mut scratch);
        let explicit: Vec<RecommendRequest> = reqs
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.pipeline = Some("default".into());
                r
            })
            .collect();
        let named = recommend_batch_in(&model, &engines, &set, &explicit, &mut scratch);
        assert_eq!(implicit, named);
        // and both match the registry-less legacy entry point
        let legacy = recommend_batch(&model, &engines, &reqs);
        assert_eq!(implicit, legacy);
    }

    #[test]
    fn staged_pipeline_verifies_through_systolic_and_never_regresses() {
        let (engines, model) = trained();
        let mut scratch = InferenceScratch::new();
        let set = staged_set();
        for (i, objective) in [Objective::Latency, Objective::Energy, Objective::Edp]
            .into_iter()
            .enumerate()
        {
            let mut staged_req = gemm(i as u64, 40 + i as u64 * 9, objective);
            staged_req.pipeline = Some("staged".into());
            let one_shot_req = gemm(100 + i as u64, 40 + i as u64 * 9, objective);
            let resp = recommend_batch_in(
                &model,
                &engines,
                &set,
                &[staged_req.clone(), one_shot_req],
                &mut scratch,
            );
            let (Response::Recommendation(staged), Response::Recommendation(os)) =
                (&resp[0], &resp[1])
            else {
                panic!("expected recommendations, got {resp:?}");
            };
            // staged answers come from the verify stage's backend
            assert_eq!(staged.backend, "systolic");
            assert!(staged.feasible);
            // never worse than the one-shot point under the same
            // objective and backend (the clamp invariant)
            let input = staged_req.query.as_dse_input().unwrap();
            let sys = engines.get(BackendId::Systolic);
            let os_cost = sys.score_unchecked_with(&input, os.point, objective);
            assert!(
                staged.cost <= os_cost,
                "{objective:?}: staged {} vs one-shot {os_cost}",
                staged.cost
            );
        }
    }

    #[test]
    fn unknown_pipeline_and_model_through_staged_are_errors() {
        let (engines, model) = trained();
        let mut scratch = InferenceScratch::new();
        let set = staged_set();
        let mut bad = gemm(4, 32, Objective::Latency);
        bad.pipeline = Some("warp".into());
        let mut model_staged = RecommendRequest {
            id: 6,
            query: Query::Model {
                name: "resnet18".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: Some("staged".into()),
        };
        let resp = recommend_batch_in(
            &model,
            &engines,
            &set,
            &[bad, model_staged.clone()],
            &mut scratch,
        );
        assert!(
            matches!(&resp[0], Response::Error { id: 4, message }
                if message.contains("unknown pipeline") && message.contains("warp")),
            "unexpected {:?}",
            resp[0]
        );
        assert!(
            matches!(&resp[1], Response::Error { id: 6, message }
                if message.contains("model queries")),
            "unexpected {:?}",
            resp[1]
        );
        // the same model query through the default pipeline still works
        model_staged.pipeline = None;
        let ok = recommend_batch_in(&model, &engines, &set, &[model_staged], &mut scratch);
        assert!(matches!(&ok[0], Response::Recommendation(_)));
    }
}
