//! The pure recommendation kernel: a batch of parsed requests against
//! one warm [`Airchitect2`] and one [`EvalEngine`] per cost backend
//! ([`BackendEngines`]), no queues or sockets.
//!
//! This is the function the worker shards call on every micro-batch, and
//! the function tests call directly to establish the ground truth the
//! served path must match bit-for-bit. Per-row model inference is
//! batch-invariant (each row's forward pass touches only its own
//! activations), so coalescing requests into one `predict` call returns
//! exactly what per-request calls would.

use std::collections::HashSet;
use std::sync::Arc;

use ai2_dse::{BackendId, DesignPoint, EvalEngine, Objective};
use ai2_maestro::Dataflow;
use ai2_workloads::generator::DseInput;
use ai2_workloads::zoo;
use airchitect::{Airchitect2, InferenceScratch};

use crate::protocol::{Query, RecommendRequest, Recommendation, Response};

/// One [`EvalEngine`] per cost backend over the same task. Each engine
/// owns its backend, so grid/oracle caches can never mix labels across
/// backends; feasibility is identical across engines (shared area
/// model).
#[derive(Debug, Clone)]
pub struct BackendEngines {
    analytic: Arc<EvalEngine>,
    systolic: Arc<EvalEngine>,
    primary: BackendId,
}

impl BackendEngines {
    /// Wraps the primary engine — the one the model was trained over and
    /// predicts through, whatever its backend — and builds a sibling
    /// engine over the same task for every other backend, so queries can
    /// select either evaluator regardless of which one trained the
    /// model.
    pub fn new(primary: Arc<EvalEngine>) -> BackendEngines {
        let primary_id = primary.backend_id();
        let task = primary.task().clone();
        let sibling = |id: BackendId| -> Arc<EvalEngine> {
            if id == primary_id {
                Arc::clone(&primary)
            } else {
                Arc::new(EvalEngine::for_backend(task.clone(), id))
            }
        };
        BackendEngines {
            analytic: sibling(BackendId::Analytic),
            systolic: sibling(BackendId::Systolic),
            primary: primary_id,
        }
    }

    /// The engine answering queries for `id`.
    pub fn get(&self, id: BackendId) -> &Arc<EvalEngine> {
        match id {
            BackendId::Analytic => &self.analytic,
            BackendId::Systolic => &self.systolic,
        }
    }

    /// The primary engine (the model's training/prediction substrate).
    pub fn primary(&self) -> &Arc<EvalEngine> {
        self.get(self.primary)
    }
}

/// Answers a batch of recommendation requests: one coalesced
/// `Predictor` forward pass for all GEMM queries, grouped
/// [`EvalEngine::score_many_inputs`] verification per
/// `(backend, objective)` group, and a Method-1-style deployment fold
/// per model query. Responses come back in request order.
pub fn recommend_batch(
    model: &Airchitect2,
    engines: &BackendEngines,
    reqs: &[RecommendRequest],
) -> Vec<Response> {
    let mut scratch = InferenceScratch::new();
    recommend_batch_with(model, engines, reqs, &mut scratch)
}

/// [`recommend_batch`] with a caller-owned [`InferenceScratch`] — the
/// shard hot path. A shard that keeps its scratch across micro-batches
/// reuses the same activation buffers on every forward pass, so the
/// steady-state serving loop performs zero heap allocations inside the
/// model (see the `zero_alloc` test in the `airchitect` crate). Answers
/// are bit-identical to the fresh-scratch path: the scratch holds
/// capacity, never values.
pub fn recommend_batch_with(
    model: &Airchitect2,
    engines: &BackendEngines,
    reqs: &[RecommendRequest],
    scratch: &mut InferenceScratch,
) -> Vec<Response> {
    let mut out: Vec<Option<Response>> = vec![None; reqs.len()];

    // -- partition ----------------------------------------------------
    let mut gemm: Vec<(usize, DseInput, BackendId)> = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        let backend = match req.backend_id() {
            Ok(backend) => backend,
            Err(e) => {
                out[i] = Some(Response::Error {
                    id: req.id,
                    message: e.to_string(),
                });
                continue;
            }
        };
        match &req.query {
            Query::Gemm { dataflow, .. } => match req.query.as_dse_input() {
                Some(input) => gemm.push((i, input, backend)),
                None => {
                    out[i] = Some(Response::Error {
                        id: req.id,
                        message: format!(
                            "invalid GEMM query (dimensions must be ≥ 1; dataflow {dataflow:?} \
                             must be ws, os or rs)"
                        ),
                    });
                }
            },
            Query::Model { name } => match zoo::model_by_name(name) {
                Some(workload) => {
                    let engine = engines.get(backend);
                    let (point, cost, feasible, layers) = recommend_model(
                        model,
                        engine,
                        &workload,
                        req.objective,
                        req.budget,
                        scratch,
                    );
                    out[i] = Some(recommendation(
                        engine, req, point, cost, feasible, layers, backend,
                    ));
                }
                None => {
                    out[i] = Some(Response::Error {
                        id: req.id,
                        message: format!("unknown model {name:?}"),
                    });
                }
            },
        }
    }

    // -- one forward pass for every GEMM query ------------------------
    let inputs: Vec<DseInput> = gemm.iter().map(|&(_, input, _)| input).collect();
    let points = model.predict_with(&inputs, scratch);

    // -- engine verification, grouped by (backend, objective) ---------
    for backend in BackendId::ALL {
        for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
            let group: Vec<usize> = (0..gemm.len())
                .filter(|&g| gemm[g].2 == backend && reqs[gemm[g].0].objective == objective)
                .collect();
            if group.is_empty() {
                continue;
            }
            let engine = engines.get(backend);
            let queries: Vec<(DseInput, DesignPoint)> =
                group.iter().map(|&g| (gemm[g].1, points[g])).collect();
            // unbounded: infeasible recommendations still get their true
            // cost reported, with `feasible: false`
            let costs = engine.score_many_inputs(&queries, objective, ai2_dse::Budget::Unbounded);
            for (&g, cost) in group.iter().zip(&costs) {
                let (i, _, _) = gemm[g];
                let req = &reqs[i];
                let point = points[g];
                let feasible = engine.is_feasible_under(point, req.budget);
                let cost = cost.expect("unbounded scoring always answers");
                out[i] = Some(recommendation(
                    engine, req, point, cost, feasible, 1, backend,
                ));
            }
        }
    }

    out.into_iter()
        .map(|r| r.expect("every request answered"))
        .collect()
}

/// Whole-model recommendation: predict a design point for every
/// `(layer, dataflow)` input in one forward pass, deduplicate the
/// candidates, and adopt the one minimising the engine-verified
/// whole-model cost under the requested objective (the paper's
/// deployment Method 1, generalised to arbitrary objectives and
/// budgets).
fn recommend_model(
    model: &Airchitect2,
    engine: &EvalEngine,
    workload: &ai2_workloads::ModelWorkload,
    objective: Objective,
    budget: ai2_dse::Budget,
    scratch: &mut InferenceScratch,
) -> (DesignPoint, f64, bool, usize) {
    let layers = workload.to_dse_layers();
    let mut inputs = Vec::with_capacity(layers.len() * Dataflow::ALL.len());
    for layer in &layers {
        for df in Dataflow::ALL {
            inputs.push(DseInput {
                gemm: layer.gemm,
                dataflow: df,
            });
        }
    }
    let preds = model.predict_with(&inputs, scratch);
    let mut seen: HashSet<DesignPoint> = HashSet::new();
    let mut cands: Vec<DesignPoint> = Vec::new();
    for p in preds {
        if engine.is_feasible_under(p, budget) && seen.insert(p) {
            cands.push(p);
        }
    }
    if cands.is_empty() {
        // every per-layer recommendation violated the budget: fall back
        // to the smallest configuration
        cands.push(DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        });
    }
    let costs = engine.model_cost_batch_with(&layers, &cands, objective);
    let mut best = 0usize;
    for (i, cost) in costs.iter().enumerate() {
        if *cost < costs[best] {
            best = i;
        }
    }
    (
        cands[best],
        costs[best],
        engine.is_feasible_under(cands[best], budget),
        layers.len(),
    )
}

fn recommendation(
    engine: &EvalEngine,
    req: &RecommendRequest,
    point: DesignPoint,
    cost: f64,
    feasible: bool,
    layers: usize,
    backend: BackendId,
) -> Response {
    let hw = engine.space().config(point);
    Response::Recommendation(Recommendation {
        id: req.id,
        point,
        num_pes: hw.num_pes,
        l2_bytes: hw.l2_bytes,
        cost,
        feasible,
        layers,
        backend: backend.as_str().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Query, RecommendRequest};
    use ai2_dse::{Budget, DseDataset, DseTask, GenerateConfig};
    use airchitect::train::TrainConfig;
    use airchitect::ModelConfig;
    use std::sync::Arc;

    fn trained() -> (BackendEngines, Airchitect2) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 50,
                seed: 11,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task);
        let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        (BackendEngines::new(engine), model)
    }

    fn gemm(id: u64, m: u64, objective: Objective) -> RecommendRequest {
        RecommendRequest {
            id,
            query: Query::Gemm {
                m,
                n: 256,
                k: 128,
                dataflow: "os".into(),
            },
            objective,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
        }
    }

    #[test]
    fn batched_answers_match_singleton_answers() {
        let (engines, model) = trained();
        let reqs: Vec<RecommendRequest> = (0..8)
            .map(|i| {
                let mut req = gemm(
                    i,
                    16 + i * 13,
                    [Objective::Latency, Objective::Energy, Objective::Edp][i as usize % 3],
                );
                // mix backends so batching crosses the routing groups
                if i % 2 == 1 {
                    req.backend = Some("systolic".into());
                }
                req
            })
            .collect();
        let batched = recommend_batch(&model, &engines, &reqs);
        for (req, expect) in reqs.iter().zip(&batched) {
            let single = recommend_batch(&model, &engines, std::slice::from_ref(req));
            assert_eq!(&single[0], expect, "batching changed the answer");
        }
    }

    #[test]
    fn reused_scratch_answers_bit_identically() {
        // the shard hot path keeps one InferenceScratch across
        // micro-batches; recycled activation buffers must never change
        // an answer, batch after batch
        let (engines, model) = trained();
        let mut scratch = InferenceScratch::new();
        for round in 0..3 {
            let reqs: Vec<RecommendRequest> = (0..6)
                .map(|i| gemm(i, 8 + i * 11 + round, Objective::Latency))
                .collect();
            let fresh = recommend_batch(&model, &engines, &reqs);
            let reused = recommend_batch_with(&model, &engines, &reqs, &mut scratch);
            assert_eq!(fresh, reused, "round {round}");
        }
    }

    #[test]
    fn gemm_cost_is_engine_verified() {
        let (engines, model) = trained();
        let req = gemm(5, 64, Objective::Latency);
        let resp = recommend_batch(&model, &engines, std::slice::from_ref(&req));
        let Response::Recommendation(rec) = &resp[0] else {
            panic!("expected recommendation, got {resp:?}");
        };
        assert_eq!(rec.id, 5);
        assert_eq!(rec.layers, 1);
        assert_eq!(rec.backend, "analytic");
        let input = req.query.as_dse_input().unwrap();
        let engine = engines.primary();
        let direct = engine.score_unchecked_with(&input, rec.point, Objective::Latency);
        assert_eq!(rec.cost.to_bits(), direct.to_bits());
        assert_eq!(rec.feasible, engine.is_feasible(rec.point));
    }

    #[test]
    fn systolic_backend_routes_to_the_systolic_engine() {
        let (engines, model) = trained();
        let mut sys_req = gemm(7, 64, Objective::Latency);
        sys_req.backend = Some("systolic".into());
        let ana_req = gemm(8, 64, Objective::Latency);
        let resp = recommend_batch(&model, &engines, &[sys_req.clone(), ana_req]);
        let (Response::Recommendation(sys), Response::Recommendation(ana)) = (&resp[0], &resp[1])
        else {
            panic!("expected recommendations, got {resp:?}");
        };
        assert_eq!(sys.backend, "systolic");
        assert_eq!(ana.backend, "analytic");
        // the predicted point is backend-independent; its verified cost
        // is not
        assert_eq!(sys.point, ana.point);
        assert_ne!(sys.cost.to_bits(), ana.cost.to_bits());
        let input = sys_req.query.as_dse_input().unwrap();
        let direct = engines
            .get(ai2_dse::BackendId::Systolic)
            .score_unchecked_with(&input, sys.point, Objective::Latency);
        assert_eq!(sys.cost.to_bits(), direct.to_bits());
    }

    #[test]
    fn unknown_backend_is_a_clean_error() {
        let (engines, model) = trained();
        let mut req = gemm(3, 32, Objective::Latency);
        req.backend = Some("rtl".into());
        let resp = recommend_batch(&model, &engines, &[req]);
        assert!(
            matches!(&resp[0], Response::Error { id: 3, message } if message.contains("backend")),
            "unexpected {resp:?}"
        );
    }

    #[test]
    fn model_query_returns_feasible_deployment() {
        let (engines, model) = trained();
        let req = RecommendRequest {
            id: 9,
            query: Query::Model {
                name: "resnet18".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
        };
        let resp = recommend_batch(&model, &engines, &[req]);
        let Response::Recommendation(rec) = &resp[0] else {
            panic!("expected recommendation, got {resp:?}");
        };
        assert!(rec.feasible);
        assert!(rec.cost > 0.0);
        assert_eq!(rec.layers, zoo::resnet18().to_dse_layers().len());
    }

    #[test]
    fn unknown_model_and_bad_dataflow_are_errors() {
        let (engines, model) = trained();
        let bad_model = RecommendRequest {
            id: 1,
            query: Query::Model {
                name: "skynet".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
        };
        let mut bad_df = gemm(2, 10, Objective::Latency);
        bad_df.query = Query::Gemm {
            m: 1,
            n: 1,
            k: 1,
            dataflow: "zigzag".into(),
        };
        let resp = recommend_batch(&model, &engines, &[bad_model, bad_df]);
        assert!(matches!(&resp[0], Response::Error { id: 1, .. }));
        assert!(matches!(&resp[1], Response::Error { id: 2, .. }));
    }
}
