//! A small LRU map for canonical-query → recommendation caching.
//!
//! Kept deliberately simple and std-only: a `HashMap` for O(1) lookup
//! plus a `BTreeMap` recency index keyed by a monotonically increasing
//! logical clock, so eviction removes the least-recently-used entry in
//! O(log n) without unsafe linked-list plumbing.
//!
//! # Invariants
//!
//! * every map entry has **exactly one** recency entry (same stamp both
//!   ways), and the two indices always hold the same number of entries;
//! * the logical clock only advances on operations that change recency
//!   (hits and inserts) — **misses are side-effect-free**;
//! * `len() ≤ capacity` at all times.
//!
//! These are `debug_assert`ed after every mutating call and pinned by a
//! seeded randomized-operations test against a naive reference LRU.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A fixed-capacity least-recently-used map. Capacity `0` disables
/// caching (every lookup misses, every insert is dropped).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    clock: u64,
}

impl<K: Clone + Eq + Hash, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks `key` up and, on a hit, marks it most recently used.
    /// A miss is completely side-effect-free: it neither advances the
    /// logical clock nor touches the recency index.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let (value, stamp) = self.map.get_mut(key)?;
        // hit confirmed — only now does the clock advance
        self.clock += 1;
        self.recency.remove(&*stamp);
        *stamp = self.clock;
        let value = value.clone();
        self.recency.insert(self.clock, key.clone());
        self.debug_check_invariants();
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full. Refreshing an existing key never evicts: the
    /// entry count does not grow, so the capacity check only applies to
    /// genuinely new keys.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if let Some((_, old_stamp)) = self.map.get(&key) {
            self.recency.remove(old_stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                let victim = self.recency.remove(&oldest).expect("stamp just seen");
                self.map.remove(&victim);
            }
        }
        self.map.insert(key.clone(), (value, self.clock));
        self.recency.insert(self.clock, key);
        self.debug_check_invariants();
    }

    /// Drops every entry (capacity unchanged). Called on a model swap:
    /// cached recommendations were computed by the outgoing replica and
    /// must not outlive it.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.debug_check_invariants();
    }

    /// Debug-build audit of the map ↔ recency invariants.
    fn debug_check_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.map.len() <= self.capacity.max(1), "over capacity");
            debug_assert_eq!(
                self.map.len(),
                self.recency.len(),
                "map and recency index diverged"
            );
            for (key, (_, stamp)) in &self.map {
                debug_assert!(
                    self.recency.get(stamp).is_some_and(|k| k == key),
                    "map entry without a matching recency entry"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some("a")); // 1 is now fresher than 2
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.get(&3), Some("c"));
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, not a third entry
        assert_eq!(c.len(), 2);
        c.insert(3, 30); // evicts 2 (1 was refreshed)
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn clear_empties_and_the_cache_keeps_working() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        // still usable after the flush
        c.insert(3, "c");
        assert_eq!(c.get(&3), Some("c"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn misses_are_side_effect_free() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // 1 is the LRU entry; a storm of misses must not disturb that
        for k in 100..200 {
            assert_eq!(c.get(&k), None);
        }
        let clock_after_misses = c.clock;
        c.insert(3, 30); // evicts 1, not 2
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.get(&3), Some(30));
        // the miss storm advanced nothing: only the insert and two hits did
        assert_eq!(c.clock, clock_after_misses + 3);
    }

    /// Naive reference LRU: a recency-ordered `Vec`, most recent last.
    struct NaiveLru<K, V> {
        capacity: usize,
        entries: Vec<(K, V)>,
    }

    impl<K: Clone + PartialEq, V: Clone> NaiveLru<K, V> {
        fn new(capacity: usize) -> Self {
            NaiveLru {
                capacity,
                entries: Vec::new(),
            }
        }

        fn get(&mut self, key: &K) -> Option<V> {
            let pos = self.entries.iter().position(|(k, _)| k == key)?;
            let entry = self.entries.remove(pos);
            let value = entry.1.clone();
            self.entries.push(entry);
            Some(value)
        }

        fn insert(&mut self, key: K, value: V) {
            if self.capacity == 0 {
                return;
            }
            if let Some(pos) = self.entries.iter().position(|(k, _)| k == &key) {
                self.entries.remove(pos);
            } else if self.entries.len() >= self.capacity {
                self.entries.remove(0);
            }
            self.entries.push((key, value));
        }
    }

    /// Tiny standalone LCG so this test needs no RNG dependency.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn randomized_ops_match_a_naive_reference_lru() {
        // every (seed, capacity) pair replays 2000 mixed get/insert ops
        // on both implementations; results, lengths and eviction choices
        // must agree at every step
        for (seed, capacity) in [(1u64, 1usize), (2, 2), (3, 3), (4, 7), (5, 16), (6, 0)] {
            let mut lru: LruCache<u32, u64> = LruCache::new(capacity);
            let mut reference = NaiveLru::new(capacity);
            let mut g = Lcg(seed);
            for step in 0..2000 {
                // a small key universe so hits, misses, refreshes and
                // evictions all occur frequently
                let key = (g.next() % (capacity as u64 * 2 + 4)) as u32;
                if g.next().is_multiple_of(3) {
                    let value = g.next();
                    lru.insert(key, value);
                    reference.insert(key, value);
                } else {
                    assert_eq!(
                        lru.get(&key),
                        reference.get(&key),
                        "seed {seed} capacity {capacity} step {step} key {key}"
                    );
                }
                assert_eq!(
                    lru.len(),
                    reference.entries.len(),
                    "seed {seed} capacity {capacity} step {step}"
                );
            }
            // final sweep: both caches hold exactly the same keys
            for key in 0..(capacity as u32 * 2 + 4) {
                assert_eq!(
                    lru.get(&key).is_some(),
                    reference.get(&key).is_some(),
                    "seed {seed} capacity {capacity} final key {key}"
                );
            }
        }
    }
}
