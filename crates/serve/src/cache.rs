//! A small LRU map for canonical-query → recommendation caching.
//!
//! Kept deliberately simple and std-only: a `HashMap` for O(1) lookup
//! plus a `BTreeMap` recency index keyed by a monotonically increasing
//! logical clock, so eviction removes the least-recently-used entry in
//! O(log n) without unsafe linked-list plumbing.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A fixed-capacity least-recently-used map. Capacity `0` disables
/// caching (every lookup misses, every insert is dropped).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    clock: u64,
}

impl<K: Clone + Eq + Hash, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks `key` up and, on a hit, marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        let (value, stamp) = self.map.get_mut(key)?;
        self.recency.remove(&*stamp);
        *stamp = clock;
        let value = value.clone();
        self.recency.insert(clock, key.clone());
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if let Some((_, old_stamp)) = self.map.get(&key) {
            self.recency.remove(old_stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                let victim = self.recency.remove(&oldest).expect("stamp just seen");
                self.map.remove(&victim);
            }
        }
        self.map.insert(key.clone(), (value, self.clock));
        self.recency.insert(self.clock, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some("a")); // 1 is now fresher than 2
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.get(&3), Some("c"));
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, not a third entry
        assert_eq!(c.len(), 2);
        c.insert(3, 30); // evicts 2 (1 was refreshed)
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }
}
