//! The newline-delimited-JSON wire protocol of the recommendation
//! service.
//!
//! Every request and response is one JSON document on one line
//! (externally-tagged enums, the vendored serde encoding). `Option`
//! fields are optional on the wire: they may be omitted or sent as
//! explicit `null` (the vendored codec treats a missing `Option` field
//! as `None`, like real serde).
//!
//! Requests are *canonicalised* into a [`QueryKey`] — the response-cache
//! key and the identity under which two textually different requests
//! (case-folded model names, identical GEMM dims) are recognised as the
//! same question. The cost backend is part of that identity: the same
//! GEMM asked under `"analytic"` and `"systolic"` are different
//! questions with differently cached answers.

use std::str::FromStr;

use ai2_dse::{BackendId, Budget, DesignPoint, Objective, ParseBackendError};
use ai2_maestro::Dataflow;
use ai2_workloads::generator::DseInput;
use serde::{Deserialize, Serialize};

/// One request line.
///
/// Decoding is **strict for the admin surface** (see [`AdminRequest`]):
/// admin payloads reject unknown fields with the canonical parse error,
/// because a typo'd operator knob — `"bmup"` for `"bump"` — silently
/// ignored would publish a checkpoint under the wrong version policy.
/// `Recommend` payloads stay lenient: query traffic from newer clients
/// must keep parsing.
///
/// On the wire the admin variants keep their historical **top-level**
/// tags (`{"Stats":…}`, `{"Swap":…}`, …, never `{"Admin":{"Stats":…}}`),
/// so grouping them under one enum changed no bytes — the round-trip
/// tests below pin that.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A design-space recommendation query.
    Recommend(RecommendRequest),
    /// Any of the strict admin operations, decoded and dispatched as
    /// one surface.
    Admin(AdminRequest),
}

/// The unified admin surface: every operator message the service
/// answers inline (no shard, no queue). One strict decoder and one
/// dispatch point (`server.rs`) handle all five.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum AdminRequest {
    /// Service counters and latency percentiles.
    Stats {
        /// Echoed in the response.
        id: u64,
    },
    /// Load a checkpoint from a **server-side** path and publish it
    /// through the model registry. Worker shards pick the new replica
    /// up at their next micro-batch boundary; in-flight requests finish
    /// on the old one. Answered inline with [`Response::Admin`] (or an
    /// error naming the rejection: unreadable file, frozen registry,
    /// non-advancing version).
    Swap {
        /// Echoed in the response.
        id: u64,
        /// Server-side checkpoint path (the file `serve
        /// --save-checkpoint` or the refresh worker wrote).
        path: String,
        /// When `true`, re-stamp the loaded checkpoint at
        /// `live_version + 1` before publishing — the operator path for
        /// re-publishing existing weights (or legacy version-0 files)
        /// without hand-editing version numbers. Omitted/`null` means
        /// the file's own version must advance the live one.
        bump: Option<bool>,
    },
    /// Freeze (`true`) or unfreeze (`false`) publishing. A frozen
    /// registry rejects both admin swaps and background refreshes;
    /// serving is unaffected.
    Freeze {
        /// Echoed in the response.
        id: u64,
        /// Desired freeze state.
        frozen: bool,
    },
    /// List the named recommendation pipelines this server compiled at
    /// startup (`serve --pipelines FILE` plus the built-in
    /// `"default"`), each with its stage kinds in execution order.
    /// Answered with [`Response::Pipelines`].
    Pipelines {
        /// Echoed in the response.
        id: u64,
    },
    /// Control the in-process tracer. `enable: true` starts a fresh
    /// capture (prior spans are discarded so two captures of the same
    /// deterministic run are byte-identical); `enable: false` stops
    /// recording without discarding. `path` writes the current capture
    /// as Chrome `trace_event` JSON to a **server-side** file (load it
    /// at `chrome://tracing` or <https://ui.perfetto.dev>). Both fields
    /// are optional and independent; an unwritable path answers an
    /// error naming the OS failure.
    Trace {
        /// Echoed in the response.
        id: u64,
        /// Desired tracer state; omitted/`null` leaves it unchanged.
        enable: Option<bool>,
        /// Server-side file to dump the Chrome trace JSON to.
        path: Option<String>,
    },
}

impl AdminRequest {
    /// The client-chosen id this operation echoes.
    pub fn id(&self) -> u64 {
        match self {
            AdminRequest::Stats { id }
            | AdminRequest::Swap { id, .. }
            | AdminRequest::Freeze { id, .. }
            | AdminRequest::Pipelines { id }
            | AdminRequest::Trace { id, .. } => *id,
        }
    }
}

// Hand-rolled so the admin variants keep their historical top-level
// wire tags: `Admin(Stats{…})` renders as `{"Stats":…}`, exactly the
// bytes the pre-unification enum produced.
impl Serialize for Request {
    fn to_value(&self) -> serde::Value {
        match self {
            Request::Recommend(req) => {
                serde::Value::Object(vec![("Recommend".to_string(), req.to_value())])
            }
            Request::Admin(admin) => admin.to_value(),
        }
    }
}

/// Rejects a payload object carrying fields outside `known` — the
/// strict half of the admin wire contract. The message follows the
/// vendored codec's canonical parse-error shape, so a strict rejection
/// reads exactly like any other malformed-line error on the wire.
fn deny_unknown_fields(
    content: &serde::Value,
    what: &str,
    known: &[&str],
) -> Result<(), serde::DeError> {
    if let serde::Value::Object(entries) = content {
        for (key, _) in entries {
            if !known.contains(&key.as_str()) {
                return Err(serde::DeError(format!(
                    "unknown field {key:?} in {what} (expected {})",
                    known.join(", ")
                )));
            }
        }
    }
    Ok(())
}

// Hand-rolled (the vendored derive has no `deny_unknown_fields`): the
// admin variants are strict, `Recommend` delegates to the lenient
// derived decoding of its payload.
impl serde::Deserialize for Request {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Object(entries) if entries.len() == 1 => {
                let (tag, content) = &entries[0];
                match tag.as_str() {
                    "Recommend" => Ok(Request::Recommend(serde::Deserialize::from_value(content)?)),
                    "Stats" => {
                        deny_unknown_fields(content, "Stats", &["id"])?;
                        Ok(Request::Admin(AdminRequest::Stats {
                            id: serde::de_field(content, "id")?,
                        }))
                    }
                    "Swap" => {
                        deny_unknown_fields(content, "Swap", &["id", "path", "bump"])?;
                        Ok(Request::Admin(AdminRequest::Swap {
                            id: serde::de_field(content, "id")?,
                            path: serde::de_field(content, "path")?,
                            bump: serde::de_field(content, "bump")?,
                        }))
                    }
                    "Freeze" => {
                        deny_unknown_fields(content, "Freeze", &["id", "frozen"])?;
                        Ok(Request::Admin(AdminRequest::Freeze {
                            id: serde::de_field(content, "id")?,
                            frozen: serde::de_field(content, "frozen")?,
                        }))
                    }
                    "Pipelines" => {
                        deny_unknown_fields(content, "Pipelines", &["id"])?;
                        Ok(Request::Admin(AdminRequest::Pipelines {
                            id: serde::de_field(content, "id")?,
                        }))
                    }
                    "Trace" => {
                        deny_unknown_fields(content, "Trace", &["id", "enable", "path"])?;
                        Ok(Request::Admin(AdminRequest::Trace {
                            id: serde::de_field(content, "id")?,
                            enable: serde::de_field(content, "enable")?,
                            path: serde::de_field(content, "path")?,
                        }))
                    }
                    other => Err(serde::DeError(format!("unknown Request variant {other:?}"))),
                }
            }
            other => Err(serde::DeError(format!("expected Request, got {other:?}"))),
        }
    }
}

// Delegates to the `Request` decoder so the strictness rules (and their
// error messages) exist in exactly one place.
impl serde::Deserialize for AdminRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match Request::from_value(v)? {
            Request::Admin(admin) => Ok(admin),
            Request::Recommend(_) => Err(serde::DeError(
                "expected an admin request, got Recommend".to_string(),
            )),
        }
    }
}

impl serde::Deserialize for AdminAck {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        deny_unknown_fields(v, "AdminAck", &["id", "op", "model_version", "frozen"])?;
        Ok(AdminAck {
            id: serde::de_field(v, "id")?,
            op: serde::de_field(v, "op")?,
            model_version: serde::de_field(v, "model_version")?,
            frozen: serde::de_field(v, "frozen")?,
        })
    }
}

/// A recommendation query: *what hardware should run this workload?*
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The workload to recommend hardware for.
    pub query: Query,
    /// Optimization metric.
    pub objective: Objective,
    /// Area budget the recommendation is checked against.
    pub budget: Budget,
    /// Per-request deadline in milliseconds from admission; an expired
    /// request answers with an error instead of occupying a shard.
    pub deadline_ms: Option<u64>,
    /// Cost backend verifying the recommendation: `"analytic"` (the
    /// default when omitted or `null`), `"systolic"`, or `"cascade"`
    /// (the multi-fidelity staged evaluator). Unknown names are
    /// rejected with an error response.
    pub backend: Option<String>,
    /// Named recommendation pipeline to answer through; omitted or
    /// `null` selects `"default"` — the degenerate single-stage
    /// pipeline whose answers are bit-identical to the pre-pipeline
    /// server. Unknown names are rejected with an error response.
    pub pipeline: Option<String>,
}

impl RecommendRequest {
    /// The requested cost backend; the parse error (which must answer
    /// an error response, never a panic or a silent default) carries the
    /// canonical "unknown cost backend …" message.
    pub fn backend_id(&self) -> Result<BackendId, ParseBackendError> {
        match &self.backend {
            None => Ok(BackendId::Analytic),
            Some(name) => BackendId::from_str(name),
        }
    }
}

/// The workload of a [`RecommendRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// A single GEMM layer — the paper's per-layer DSE input.
    Gemm {
        /// Rows of `A`/`C`.
        m: u64,
        /// Columns of `B`/`C`.
        n: u64,
        /// Contraction dimension.
        k: u64,
        /// Mapping dataflow, as `"ws"` / `"os"` / `"rs"` (or the long
        /// names [`Dataflow`] parses).
        dataflow: String,
    },
    /// A whole zoo model by name (`"resnet50"`, `"llama2_7b"` …):
    /// per-layer recommendations folded into one deployment
    /// configuration, Method-1 style.
    Model {
        /// Zoo model name, matched case-insensitively.
        name: String,
    },
}

impl Query {
    /// The GEMM query as a [`DseInput`], if it is one and is valid:
    /// all dimensions ≥ 1 (a zero dimension would assert inside
    /// `GemmWorkload::new` — wire input must never reach a panic) and a
    /// parsable dataflow.
    pub fn as_dse_input(&self) -> Option<DseInput> {
        match self {
            Query::Gemm { m, n, k, dataflow } => {
                if *m == 0 || *n == 0 || *k == 0 {
                    return None;
                }
                Some(DseInput {
                    gemm: ai2_maestro::GemmWorkload::new(*m, *n, *k),
                    dataflow: Dataflow::from_str(dataflow).ok()?,
                })
            }
            Query::Model { .. } => None,
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A served recommendation.
    Recommendation(Recommendation),
    /// The stats snapshot.
    Stats(ServeStats),
    /// Acknowledgement of an admin `swap` / `freeze`.
    Admin(AdminAck),
    /// The compiled pipeline registry (answer to
    /// [`Request::Pipelines`]).
    Pipelines {
        /// Echo of the request id.
        id: u64,
        /// Registered pipelines, registration order (`"default"`
        /// first).
        pipelines: Vec<PipelineInfo>,
    },
    /// The request could not be served (unknown model, bad dataflow,
    /// expired deadline, malformed line — the message says which).
    Error {
        /// Echo of the request id (`0` when the line never parsed).
        id: u64,
        /// Human-readable reason.
        message: String,
    },
}

/// Acknowledgement of a successful admin operation. Like the admin
/// requests it answers, decoding rejects unknown fields: an admin
/// client must notice — not silently drop — acknowledgement content it
/// does not understand.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdminAck {
    /// Echo of the request id.
    pub id: u64,
    /// Which operation this acknowledges (`"swap"` / `"freeze"`).
    pub op: String,
    /// Lineage version live after the operation.
    pub model_version: u64,
    /// Freeze state after the operation.
    pub frozen: bool,
}

/// A served hardware recommendation with its engine-verified cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Echo of the request id.
    pub id: u64,
    /// Recommended design point (indices into the Table I grid).
    pub point: DesignPoint,
    /// Concrete hardware: number of processing elements.
    pub num_pes: u32,
    /// Concrete hardware: shared L2 scratchpad bytes.
    pub l2_bytes: u64,
    /// Cost of the recommendation under the requested objective,
    /// verified through the [`ai2_dse::EvalEngine`] (cycles, pJ, or
    /// cycles·pJ). For model queries: the whole-model cost with each
    /// layer on its best dataflow.
    pub cost: f64,
    /// Whether the recommendation fits the requested area budget.
    pub feasible: bool,
    /// Layer entries folded into the answer (1 for GEMM queries).
    pub layers: usize,
    /// The cost backend that verified `cost` (`"analytic"` /
    /// `"systolic"` / `"cascade"`), echoed so clients can tell which
    /// evaluator answered.
    pub backend: String,
}

/// One compiled pipeline, as listed by [`Response::Pipelines`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineInfo {
    /// Registry name (what `"pipeline": "<name>"` selects).
    pub name: String,
    /// Stage kinds in execution order (`"predict"` / `"refine"` /
    /// `"verify"` / `"pareto"`).
    pub stages: Vec<String>,
}

/// Per-pipeline served counter, as reported by [`ServeStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineServed {
    /// Pipeline name.
    pub name: String,
    /// Recommendations answered through this pipeline, including cache
    /// hits.
    pub served: u64,
}

/// Service counters and latency percentiles (the `stats` endpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Echo of the request id.
    pub id: u64,
    /// Recommendations answered, including cache hits.
    pub served: u64,
    /// Answers straight from the response cache.
    pub cache_hits: u64,
    /// Requests dropped at dequeue because their deadline had expired.
    pub deadline_expired: u64,
    /// Error responses issued.
    pub errors: u64,
    /// Worker shards.
    pub shards: usize,
    /// Lineage version of the live model replica (bumped by every
    /// published swap/refresh; 0 until a versioned checkpoint is
    /// published).
    pub model_version: u64,
    /// Whether the model registry is frozen (publishes rejected).
    pub frozen: bool,
    /// Checkpoints published over this service's lifetime (admin swaps
    /// plus background refreshes).
    pub swaps: u64,
    /// Served GEMM queries currently held in the replay buffer,
    /// awaiting the next refresh.
    pub replay_len: usize,
    /// Milliseconds since the service started.
    pub uptime_ms: u64,
    /// Served requests per second over the uptime.
    pub throughput_rps: f64,
    /// Jobs admitted to the shared queue but not yet drained by any
    /// shard — the instantaneous backlog.
    pub queue_depth: u64,
    /// Requests refused at admission by the overload policy
    /// ([`crate::OverloadPolicy::Shed`]), each answered inline with the
    /// `"shedding"` error. 0 under the default queue-everything policy.
    pub sheds: u64,
    /// Highest queue depth ever observed at an admission — how close
    /// the service has come to its shed threshold.
    pub queue_high_water: u64,
    /// Median request latency (admission → response), microseconds.
    /// `null` until the first request has been served — `NaN` is not
    /// legal JSON, so a cold server's percentiles are absent, not NaN.
    pub p50_us: Option<f64>,
    /// 95th-percentile latency, microseconds (`null` while cold).
    pub p95_us: Option<f64>,
    /// 99th-percentile latency, microseconds (`null` while cold).
    pub p99_us: Option<f64>,
    /// Median drained micro-batch size (`null` until a batch has run).
    pub batch_size_p50: Option<f64>,
    /// 95th-percentile micro-batch size (`null` while cold).
    pub batch_size_p95: Option<f64>,
    /// Raw-cost evaluations answered from a grid cache, summed over the
    /// per-backend engines.
    pub engine_point_hits: u64,
    /// Raw-cost evaluations that ran a cost backend, summed over the
    /// per-backend engines.
    pub engine_point_misses: u64,
    /// The SIMD dispatch level running this host's f32 tensor kernels
    /// (`"scalar"` / `"sse2"` / `"avx2"` — see `ai2_tensor::kernel`).
    /// Latency baselines recorded under one kernel are not comparable
    /// to runs under another; `bench_gate` refuses the comparison.
    pub kernel: String,
    /// Worker shards serving the int8-quantized decoder flavor
    /// ([`crate::ServeConfig::quantized_shards`]); 0 means every shard
    /// runs the full-precision f32 decoder.
    pub quantized_shards: usize,
    /// Recommendations answered per pipeline (name-sorted, including
    /// cache hits; pipelines that served nothing still appear with 0).
    pub pipelines: Vec<PipelineServed>,
}

/// The canonical identity of a recommendation query — the response-cache
/// key. Objective and budget are part of the identity; the request id and
/// deadline are not.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    kind: KeyKind,
    objective: u8,
    /// `f64::to_bits` of the area limit; `u64::MAX` for unbounded.
    budget_bits: u64,
    /// The verifying cost backend — cached answers from one backend must
    /// never be served for another.
    backend: BackendId,
    /// The answering pipeline, normalised (`None` on the wire and an
    /// explicit `"default"` are the same identity). Staged answers must
    /// never be served from a one-shot cache entry or vice versa.
    pipeline: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyKind {
    Gemm(u64, u64, u64, u8),
    Model(String),
}

impl QueryKey {
    /// Canonicalises a request. `None` when the query can never be
    /// served (zero GEMM dimension, unparsable dataflow, unknown
    /// backend) — those get error responses, not cache slots.
    pub fn of(req: &RecommendRequest) -> Option<QueryKey> {
        let backend = req.backend_id().ok()?;
        let kind = match &req.query {
            Query::Gemm { m, n, k, dataflow } => {
                req.query.as_dse_input()?;
                let df = Dataflow::from_str(dataflow).ok()?;
                KeyKind::Gemm(*m, *n, *k, df.index() as u8)
            }
            Query::Model { name } => KeyKind::Model(name.to_ascii_lowercase()),
        };
        Some(QueryKey {
            kind,
            objective: match req.objective {
                Objective::Latency => 0,
                Objective::Energy => 1,
                Objective::Edp => 2,
            },
            budget_bits: match req.budget.limit_mm2() {
                Some(limit) => limit.to_bits(),
                None => u64::MAX,
            },
            backend,
            pipeline: req.pipeline.as_deref().unwrap_or("default").to_string(),
        })
    }
}

/// Renders one protocol value as its wire line (no trailing newline).
pub fn encode_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("protocol types always serialize")
}

/// Parses one wire line.
///
/// # Errors
///
/// Returns the codec error on malformed input.
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, serde_json::Error> {
    serde_json::from_str(line.trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_req(id: u64) -> RecommendRequest {
        RecommendRequest {
            id,
            query: Query::Gemm {
                m: 64,
                n: 512,
                k: 256,
                dataflow: "ws".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        }
    }

    #[test]
    fn requests_roundtrip_the_wire() {
        let reqs = [
            Request::Recommend(gemm_req(7)),
            Request::Recommend(RecommendRequest {
                id: 8,
                query: Query::Model {
                    name: "llama2_7b \"edge\"".into(),
                },
                objective: Objective::Edp,
                budget: Budget::Custom(0.31),
                deadline_ms: Some(250),
                backend: Some("systolic".into()),
                pipeline: Some("staged".into()),
            }),
            Request::Admin(AdminRequest::Stats { id: 9 }),
            Request::Admin(AdminRequest::Pipelines { id: 14 }),
            Request::Admin(AdminRequest::Swap {
                id: 10,
                path: "/var/ckpt/model_v3.json".into(),
                bump: Some(true),
            }),
            Request::Admin(AdminRequest::Freeze {
                id: 11,
                frozen: true,
            }),
            Request::Admin(AdminRequest::Trace {
                id: 12,
                enable: Some(true),
                path: Some("/tmp/trace.json".into()),
            }),
            Request::Admin(AdminRequest::Trace {
                id: 13,
                enable: None,
                path: None,
            }),
        ];
        for req in &reqs {
            let line = encode_line(req);
            assert!(!line.contains('\n'), "wire lines must be single lines");
            let back: Request = decode_line(&line).unwrap();
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn admin_messages_roundtrip_and_bump_is_optional() {
        // `bump` omitted on the wire (a pre-refresh client) parses as None
        let line = r#"{"Swap":{"id":4,"path":"ck.json"}}"#;
        let req: Request = decode_line(line).unwrap();
        assert_eq!(
            req,
            Request::Admin(AdminRequest::Swap {
                id: 4,
                path: "ck.json".into(),
                bump: None,
            })
        );
        let ack = Response::Admin(AdminAck {
            id: 4,
            op: "swap".into(),
            model_version: 2,
            frozen: false,
        });
        let back: Response = decode_line(&encode_line(&ack)).unwrap();
        assert_eq!(back, ack);
    }

    #[test]
    fn responses_roundtrip_the_wire() {
        let resp = Response::Recommendation(Recommendation {
            id: 3,
            point: DesignPoint {
                pe_idx: 12,
                buf_idx: 4,
            },
            num_pes: 104,
            l2_bytes: 1 << 20,
            cost: 123456.75,
            feasible: true,
            layers: 1,
            backend: "analytic".into(),
        });
        let back: Response = decode_line(&encode_line(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn query_key_canonicalises_equivalent_requests() {
        let a = QueryKey::of(&gemm_req(1)).unwrap();
        let b = QueryKey::of(&gemm_req(999)).unwrap(); // id differs
        assert_eq!(a, b);
        let mut long_name = gemm_req(1);
        long_name.query = Query::Gemm {
            m: 64,
            n: 512,
            k: 256,
            dataflow: "weight-stationary".into(),
        };
        assert_eq!(QueryKey::of(&long_name).unwrap(), a);
        // objective is part of the identity
        let mut energy = gemm_req(1);
        energy.objective = Objective::Energy;
        assert_ne!(QueryKey::of(&energy).unwrap(), a);
        // model names fold case
        let upper = RecommendRequest {
            id: 1,
            query: Query::Model {
                name: "ResNet50".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        };
        let lower = RecommendRequest {
            query: Query::Model {
                name: "resnet50".into(),
            },
            ..upper.clone()
        };
        assert_eq!(QueryKey::of(&upper), QueryKey::of(&lower));
    }

    #[test]
    fn backend_field_is_optional_on_the_wire() {
        // a pre-backend client line (no "backend" key at all) must still
        // parse, defaulting to the analytic backend
        let line = r#"{"Recommend":{"id":3,"query":{"Gemm":{"m":8,"n":8,"k":8,"dataflow":"os"}},"objective":"Latency","budget":"Edge","deadline_ms":null}}"#;
        let req: Request = decode_line(line).unwrap();
        let Request::Recommend(req) = req else {
            panic!("expected recommend, got {req:?}");
        };
        assert_eq!(req.backend, None);
        assert_eq!(req.backend_id(), Ok(BackendId::Analytic));
        // and explicit spellings parse case-insensitively
        let mut sys = gemm_req(1);
        sys.backend = Some("Systolic".into());
        assert_eq!(sys.backend_id(), Ok(BackendId::Systolic));
        let mut casc = gemm_req(1);
        casc.backend = Some("Cascade".into());
        assert_eq!(casc.backend_id(), Ok(BackendId::Cascade));
    }

    #[test]
    fn backend_is_part_of_the_cache_identity() {
        let analytic = QueryKey::of(&gemm_req(1)).unwrap();
        let mut req = gemm_req(1);
        req.backend = Some("systolic".into());
        let systolic = QueryKey::of(&req).unwrap();
        let mut req = gemm_req(1);
        req.backend = Some("cascade".into());
        let cascade = QueryKey::of(&req).unwrap();
        assert_ne!(
            analytic, systolic,
            "cached answers must never cross backends"
        );
        assert_ne!(analytic, cascade, "cascade keys its own cache slots");
        assert_ne!(systolic, cascade, "cascade keys its own cache slots");
        // the explicit default spelling canonicalises onto the implicit one
        let mut explicit = gemm_req(1);
        explicit.backend = Some("analytic".into());
        assert_eq!(QueryKey::of(&explicit).unwrap(), analytic);
    }

    #[test]
    fn pipeline_field_is_optional_on_the_wire() {
        // a pre-pipeline client line (no "pipeline" key at all) must
        // still parse, selecting the default pipeline
        let line = r#"{"Recommend":{"id":3,"query":{"Gemm":{"m":8,"n":8,"k":8,"dataflow":"os"}},"objective":"Latency","budget":"Edge","deadline_ms":null,"backend":null}}"#;
        let req: Request = decode_line(line).unwrap();
        let Request::Recommend(req) = req else {
            panic!("expected recommend, got {req:?}");
        };
        assert_eq!(req.pipeline, None);
    }

    #[test]
    fn pipeline_is_part_of_the_cache_identity() {
        let default = QueryKey::of(&gemm_req(1)).unwrap();
        let mut staged = gemm_req(1);
        staged.pipeline = Some("staged".into());
        assert_ne!(
            default,
            QueryKey::of(&staged).unwrap(),
            "staged answers must never be served from the one-shot cache"
        );
        // the explicit default spelling canonicalises onto the implicit
        // one: both hit the same cache entry
        let mut explicit = gemm_req(1);
        explicit.pipeline = Some("default".into());
        assert_eq!(QueryKey::of(&explicit).unwrap(), default);
    }

    #[test]
    fn pipelines_listing_roundtrips_and_is_strict() {
        let resp = Response::Pipelines {
            id: 21,
            pipelines: vec![
                PipelineInfo {
                    name: "default".into(),
                    stages: vec!["predict".into()],
                },
                PipelineInfo {
                    name: "staged".into(),
                    stages: vec!["predict".into(), "refine".into(), "verify".into()],
                },
            ],
        };
        let back: Response = decode_line(&encode_line(&resp)).unwrap();
        assert_eq!(back, resp);
        // the request side is admin-strict
        assert_eq!(
            decode_line::<Request>(r#"{"Pipelines":{"id":5}}"#).unwrap(),
            Request::Admin(AdminRequest::Pipelines { id: 5 })
        );
        let err = decode_line::<Request>(r#"{"Pipelines":{"id":5,"verbose":true}}"#)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unknown field") && err.contains("verbose") && err.contains("Pipelines"),
            "{err}"
        );
    }

    #[test]
    fn unknown_backend_has_no_key() {
        let mut req = gemm_req(1);
        req.backend = Some("rtl".into());
        let err = req.backend_id().unwrap_err().to_string();
        assert!(err.contains("rtl"), "{err}");
        // the wire error must name every selectable backend, so a
        // client probing with a bad name learns the full menu —
        // including variants added after it was written
        for id in BackendId::ALL {
            assert!(
                err.contains(&format!("{:?}", id.as_str())),
                "error must offer {id}: {err}"
            );
        }
        assert!(QueryKey::of(&req).is_none());
    }

    #[test]
    fn bad_dataflow_has_no_key() {
        let mut req = gemm_req(1);
        req.query = Query::Gemm {
            m: 1,
            n: 1,
            k: 1,
            dataflow: "zigzag".into(),
        };
        assert!(QueryKey::of(&req).is_none());
        assert!(req.query.as_dse_input().is_none());
    }

    #[test]
    fn unknown_admin_fields_are_rejected_with_the_canonical_parse_error() {
        // a typo'd operator knob must fail loudly, not be silently
        // dropped: `bmup` for `bump` would otherwise publish under the
        // wrong version policy
        let cases = [
            (
                r#"{"Swap":{"id":1,"path":"ck.json","bmup":true}}"#,
                "bmup",
                "Swap",
            ),
            (
                r#"{"Freeze":{"id":2,"frozen":true,"force":true}}"#,
                "force",
                "Freeze",
            ),
            (r#"{"Stats":{"id":3,"verbose":true}}"#, "verbose", "Stats"),
            (
                r#"{"Trace":{"id":5,"enable":true,"file":"t.json"}}"#,
                "file",
                "Trace",
            ),
        ];
        for (line, field, what) in cases {
            let err = decode_line::<Request>(line).unwrap_err().to_string();
            assert!(
                err.contains("unknown field") && err.contains(field) && err.contains(what),
                "{line} → {err}"
            );
        }
        // the client side of the admin exchange is equally strict
        let ack = r#"{"Admin":{"id":4,"op":"swap","model_version":2,"frozen":false,"extra":1}}"#;
        let err = decode_line::<Response>(ack).unwrap_err().to_string();
        assert!(
            err.contains("unknown field") && err.contains("extra") && err.contains("AdminAck"),
            "{err}"
        );
        // the valid spellings (with and without the optional bump)
        // still parse — strictness must not break the happy path
        assert!(decode_line::<Request>(r#"{"Swap":{"id":1,"path":"ck.json"}}"#).is_ok());
        assert!(
            decode_line::<Request>(r#"{"Swap":{"id":1,"path":"ck.json","bump":true}}"#).is_ok()
        );
        assert!(decode_line::<Request>(r#"{"Freeze":{"id":2,"frozen":false}}"#).is_ok());
        assert!(decode_line::<Request>(r#"{"Stats":{"id":3}}"#).is_ok());
        // both Trace knobs are optional on the wire
        assert_eq!(
            decode_line::<Request>(r#"{"Trace":{"id":6,"enable":false}}"#).unwrap(),
            Request::Admin(AdminRequest::Trace {
                id: 6,
                enable: Some(false),
                path: None,
            })
        );
        assert!(decode_line::<Request>(r#"{"Trace":{"id":7,"path":"t.json"}}"#).is_ok());
    }

    #[test]
    fn unified_admin_enum_kept_the_wire_bytes() {
        // grouping the admin messages under one `AdminRequest` must not
        // move a single byte: the tags stay top-level, in the
        // historical field order, with explicit nulls for absent
        // options — pinned here against the exact pre-unification
        // encodings
        let cases: [(Request, &str); 5] = [
            (
                Request::Admin(AdminRequest::Stats { id: 3 }),
                r#"{"Stats":{"id":3}}"#,
            ),
            (
                Request::Admin(AdminRequest::Swap {
                    id: 1,
                    path: "ck.json".into(),
                    bump: None,
                }),
                r#"{"Swap":{"id":1,"path":"ck.json","bump":null}}"#,
            ),
            (
                Request::Admin(AdminRequest::Freeze {
                    id: 2,
                    frozen: true,
                }),
                r#"{"Freeze":{"id":2,"frozen":true}}"#,
            ),
            (
                Request::Admin(AdminRequest::Pipelines { id: 4 }),
                r#"{"Pipelines":{"id":4}}"#,
            ),
            (
                Request::Admin(AdminRequest::Trace {
                    id: 5,
                    enable: Some(true),
                    path: None,
                }),
                r#"{"Trace":{"id":5,"enable":true,"path":null}}"#,
            ),
        ];
        for (req, wire) in cases {
            assert_eq!(encode_line(&req), wire);
            assert_eq!(decode_line::<Request>(wire).unwrap(), req);
            // the payload also decodes standalone as an AdminRequest
            let Request::Admin(admin) = &req else {
                unreachable!()
            };
            assert_eq!(&decode_line::<AdminRequest>(wire).unwrap(), admin);
        }
        // and a recommendation is not an admin message
        let rec = encode_line(&Request::Recommend(gemm_req(1)));
        let err = decode_line::<AdminRequest>(&rec).unwrap_err().to_string();
        assert!(err.contains("expected an admin request"), "{err}");
    }

    #[test]
    fn recommend_decoding_stays_lenient_for_forward_compat() {
        // query traffic is the opposite contract: a *newer* client
        // sending fields this server predates must keep being served
        let line = r#"{"Recommend":{"id":3,"query":{"Gemm":{"m":8,"n":8,"k":8,"dataflow":"os"}},"objective":"Latency","budget":"Edge","deadline_ms":null,"priority":"high"}}"#;
        let req: Request = decode_line(line).unwrap();
        assert!(matches!(req, Request::Recommend(r) if r.id == 3));
    }

    #[test]
    fn zero_dimension_gemm_is_invalid_not_a_panic() {
        // wire input: a zero dimension must be rejected here, never
        // reach GemmWorkload::new's assert inside a shard
        for (m, n, k) in [(0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            let mut req = gemm_req(1);
            req.query = Query::Gemm {
                m,
                n,
                k,
                dataflow: "ws".into(),
            };
            assert!(req.query.as_dse_input().is_none(), "({m},{n},{k})");
            assert!(QueryKey::of(&req).is_none(), "({m},{n},{k})");
        }
    }
}
