//! The standalone recommendation server.
//!
//! Trains a model (or loads a checkpoint), starts the sharded service,
//! binds the NDJSON TCP endpoint and prints one machine-readable line
//!
//! ```text
//! SERVE_ADDR=127.0.0.1:PORT
//! ```
//!
//! to stdout so scripts (the CI smoke test, the load generator) can
//! discover the ephemeral port. Runs until killed.
//!
//! ```text
//! serve [--port N]            listen port (default 0 = ephemeral)
//!       [--frontend NAME]     connection front end: "threads" (default,
//!                             thread per connection) or "event" (one
//!                             acceptor + N event-loop threads
//!                             multiplexing every connection)
//!       [--event-threads N]   event-loop threads with --frontend event
//!                             (default 2)
//!       [--shed-high-water N] shed admission control: refuse new
//!                             recommendations inline once the queue
//!                             holds N (default 0 = queue unboundedly)
//!       [--shards N]          worker shards (default 2)
//!       [--max-batch N]       micro-batch bound (default 32)
//!       [--cache N]           LRU response-cache entries (default 1024)
//!       [--samples N]         training-set size when training (default 2000)
//!       [--seed N]            dataset seed (default 0xA12C)
//!       [--quick]             smoke-test sizes (300 samples)
//!       [--checkpoint PATH]   serve this checkpoint instead of training
//!       [--save-checkpoint P] write the trained checkpoint to P
//!       [--refresh-secs N]    background refresh loop every N seconds
//!                             (fine-tune on the replay buffer, publish)
//!       [--pipelines FILE]    register named recommendation pipelines
//!                             from a JSON file ({"pipelines":[{"name":…,
//!                             "stages":[{"stage":"predict"},…]},…]});
//!                             the built-in "default" is always present
//!       [--trace-out FILE]    enable request tracing and periodically
//!                             rewrite FILE with the Chrome trace_event
//!                             JSON of the capture so far
//! ```

use std::sync::Arc;

use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig, PipelineSet, PipelinesFile};
use ai2_serve::{OverloadPolicy, RecommendService, RefreshConfig, ServeConfig};
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelCheckpoint, ModelConfig};

struct Args {
    port: u16,
    frontend: String,
    event_threads: usize,
    cfg: ServeConfig,
    samples: usize,
    seed: u64,
    checkpoint: Option<String>,
    save_checkpoint: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 0,
        frontend: "threads".to_string(),
        event_threads: 2,
        cfg: ServeConfig::default(),
        samples: 2000,
        seed: 0xA12C,
        checkpoint: None,
        save_checkpoint: None,
        trace_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--port" => args.port = value(&mut i).parse().expect("--port takes a port number"),
            "--frontend" => {
                args.frontend = value(&mut i);
                assert!(
                    args.frontend == "threads" || args.frontend == "event",
                    "--frontend takes \"threads\" or \"event\", not {:?}",
                    args.frontend
                );
            }
            "--event-threads" => {
                args.event_threads = value(&mut i)
                    .parse()
                    .expect("--event-threads takes a count");
            }
            "--shed-high-water" => {
                let high_water: usize = value(&mut i)
                    .parse()
                    .expect("--shed-high-water takes a queue depth");
                args.cfg.overload = if high_water > 0 {
                    OverloadPolicy::Shed { high_water }
                } else {
                    OverloadPolicy::Queue
                };
            }
            "--shards" => args.cfg.shards = value(&mut i).parse().expect("--shards takes a count"),
            "--max-batch" => {
                args.cfg.max_batch = value(&mut i).parse().expect("--max-batch takes a count");
            }
            "--cache" => {
                args.cfg.cache_capacity = value(&mut i).parse().expect("--cache takes a count");
            }
            "--samples" => args.samples = value(&mut i).parse().expect("--samples takes a count"),
            "--seed" => args.seed = value(&mut i).parse().expect("--seed takes a number"),
            "--quick" => args.samples = 300,
            "--checkpoint" => args.checkpoint = Some(value(&mut i)),
            "--save-checkpoint" => args.save_checkpoint = Some(value(&mut i)),
            "--trace-out" => args.trace_out = Some(value(&mut i)),
            "--refresh-secs" => {
                let secs: u64 = value(&mut i).parse().expect("--refresh-secs takes seconds");
                args.cfg.refresh = Some(RefreshConfig {
                    interval: std::time::Duration::from_secs(secs),
                    ..RefreshConfig::default()
                });
            }
            "--pipelines" => {
                let path = value(&mut i);
                let body = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("--pipelines: cannot read {path:?}: {e}"));
                let file: PipelinesFile = serde_json::from_str(&body)
                    .unwrap_or_else(|e| panic!("--pipelines: {path:?}: {e}"));
                args.cfg.pipelines = PipelineSet::with(&file.pipelines)
                    .unwrap_or_else(|e| panic!("--pipelines: {path:?}: {e}"));
            }
            other => panic!("unknown argument {other:?} (see src/bin/serve.rs for usage)"),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let engine = EvalEngine::shared(DseTask::table_i_default());

    let ckpt = match &args.checkpoint {
        Some(path) => {
            eprintln!("[serve] loading checkpoint {path}");
            ModelCheckpoint::load(path).expect("load checkpoint")
        }
        None => {
            eprintln!(
                "[serve] generating {} oracle-labeled samples (seed {:#x})…",
                args.samples, args.seed
            );
            let ds = DseDataset::generate_with(
                &engine,
                &GenerateConfig {
                    num_samples: args.samples,
                    seed: args.seed,
                    threads: 0,
                    ..GenerateConfig::default()
                },
            );
            eprintln!("[serve] training the predictor (quick schedule)…");
            let mut model =
                Airchitect2::with_engine(&ModelConfig::default(), Arc::clone(&engine), &ds);
            model.fit(&ds, &TrainConfig::quick());
            // freshly trained checkpoints start the lineage at version 1
            model
                .checkpoint()
                .with_version(1)
                .with_provenance(engine.backend_id().as_str(), ds.len() as u64)
        }
    };
    eprintln!(
        "[serve] checkpoint v{} (backend {}, {} training samples)",
        ckpt.version, ckpt.provenance.backend, ckpt.provenance.training_samples
    );
    if let Some(path) = &args.save_checkpoint {
        ckpt.save(path).expect("save checkpoint");
        eprintln!("[serve] wrote checkpoint {path}");
    }

    let mut service = RecommendService::start(args.cfg.clone(), engine, ckpt);
    let addr = if args.frontend == "event" {
        service
            .listen_event(("127.0.0.1", args.port), args.event_threads)
            .expect("bind listen port")
    } else {
        service
            .listen(("127.0.0.1", args.port))
            .expect("bind listen port")
    };
    eprintln!(
        "[serve] {} front end, {} shards, max batch {}, cache {} entries, pipelines [{}]{}{}",
        args.frontend,
        args.cfg.shards,
        args.cfg.max_batch,
        args.cfg.cache_capacity,
        args.cfg.pipelines.names().join(", "),
        match args.cfg.overload {
            OverloadPolicy::Shed { high_water } => format!(", shed over {high_water} queued"),
            OverloadPolicy::Queue => String::new(),
        },
        match &args.cfg.refresh {
            Some(r) => format!(", refresh every {:?}", r.interval),
            None => String::new(),
        }
    );
    if let Some(path) = &args.trace_out {
        service.set_tracing(true);
        eprintln!("[serve] tracing enabled, dumping to {path}");
    }
    // machine-readable discovery line; scripts poll stdout for it
    println!("SERVE_ADDR={addr}");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(
            if args.trace_out.is_some() { 1 } else { 3600 },
        ));
        if let Some(path) = &args.trace_out {
            // periodic rewrite: the file always holds a complete, valid
            // Chrome trace of the capture so far (kill -9 safe)
            let tmp = format!("{path}.tmp");
            if std::fs::write(&tmp, service.trace_json())
                .and_then(|()| std::fs::rename(&tmp, path))
                .is_err()
            {
                eprintln!("[serve] cannot write trace file {path}");
            }
        }
    }
}
