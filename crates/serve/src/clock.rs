//! The service's notion of time, behind a trait so a whole server run
//! can be driven off a virtual clock.
//!
//! Everything latency- or deadline-shaped in the serving path
//! (admission stamps, per-request deadlines, the latency samples behind
//! the `stats` percentiles) reads time through a [`Clock`] owned by the
//! service instead of calling [`Instant::now`] directly. Production
//! uses [`WallClock`]; the deterministic simulation harness
//! (`ai2_simtest`) uses [`VirtualClock`], which only moves when the
//! test driver advances it — so "wait 5 ms for the deadline to expire"
//! becomes an explicit, replayable step instead of a real sleep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock. Implementations only promise
/// monotonicity relative to their own epoch (service start for
/// [`WallClock`], zero for [`VirtualClock`]); callers must never
/// compare stamps across clocks.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The production clock: [`Instant`]-backed wall time, epoch = the
/// moment the clock was created.
#[derive(Debug)]
pub struct WallClock {
    started: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock {
            started: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds wrap after ~584 years of uptime
        self.started.elapsed().as_nanos() as u64
    }
}

/// A clock that only moves when told to — the deterministic-simulation
/// substrate. Two runs issuing the same sequence of [`VirtualClock::advance`]
/// calls observe exactly the same timestamps, so deadline expiry and
/// latency accounting replay bit-for-bit from a seed.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Moves time forward by `delta_ns` nanoseconds and returns the new
    /// now.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now_ns
            .fetch_add(delta_ns, Ordering::SeqCst)
            .wrapping_add(delta_ns)
    }

    /// Moves time forward by whole milliseconds (the granularity wire
    /// deadlines are expressed in).
    pub fn advance_ms(&self, delta_ms: u64) -> u64 {
        self.advance(delta_ms.saturating_mul(1_000_000))
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_moves() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        // burn a little real time; Instant guarantees monotonicity
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_when_advanced() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0, "reading must not advance");
        assert_eq!(clock.advance(250), 250);
        assert_eq!(clock.now_ns(), 250);
        clock.advance_ms(3);
        assert_eq!(clock.now_ns(), 250 + 3_000_000);
        // saturating ms→ns conversion: an absurd advance must not wrap
        // backwards past smaller stamps
        let huge = VirtualClock::new();
        huge.advance_ms(u64::MAX);
        assert_eq!(huge.now_ns(), u64::MAX);
    }
}
