//! Online model refresh: a replay buffer of served queries, an
//! active-learning labeling/fine-tuning pass, and a publish through the
//! [`ModelRegistry`].
//!
//! The serving layer's premise is that a trained predictor answers
//! design-space queries orders of magnitude faster than search — but a
//! predictor restored once at startup can never improve from the
//! traffic it sees. This module closes the loop:
//!
//! 1. worker shards [`ReplayBuffer::record`] every *computed* GEMM
//!    recommendation (cache hits carry no new information);
//! 2. [`refresh_once`] labels the buffered queries through the shard's
//!    own [`EvalEngine`] oracle ([`DseDataset::label_inputs`] — the
//!    labels land in the shared cost caches, so re-labeling queries the
//!    serving path already verified is nearly free);
//! 3. **active learning**: queries are ranked by predictor-vs-oracle
//!    disagreement (the cost ratio of the served point over the oracle
//!    optimum) and only the most-disagreeing fraction is kept — the
//!    replica re-trains where it is most wrong, not where it is already
//!    right;
//! 4. the current replica is restored from the registry and fine-tuned
//!    with [`Stage2Trainer`] (decoder only — the contrastively trained
//!    encoder stays frozen, exactly as in the paper's stage 2);
//! 5. the result is published at `live_version + 1`; shards pick it up
//!    at their next micro-batch boundary.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ai2_dse::{DesignPoint, DseDataset, EvalEngine};
use ai2_workloads::generator::DseInput;
use airchitect::train::{Stage2Trainer, TrainConfig};
use airchitect::Airchitect2;

use crate::registry::ModelRegistry;

/// One served GEMM query and the design point the live replica
/// answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayEntry {
    /// The workload the client asked about.
    pub input: DseInput,
    /// The design point the replica recommended.
    pub predicted: DesignPoint,
}

/// A bounded ring of recently served queries. Capacity 0 disables
/// recording entirely (every `record` is dropped).
///
/// Every recorded entry carries an implicit monotonic **sequence
/// number**; the ring holds the contiguous range
/// `[first_seq, first_seq + len)`. Snapshots report the sequence they
/// covered up to, and [`ReplayBuffer::consume_upto`] drains by
/// sequence — so entries recorded (or even evicted) while a refresh
/// was labeling/training are never mistaken for consumed ones.
#[derive(Debug)]
pub struct ReplayBuffer {
    capacity: usize,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    entries: VecDeque<ReplayEntry>,
    /// Sequence number of the front entry.
    first_seq: u64,
}

impl ReplayBuffer {
    /// A buffer keeping at most `capacity` entries (oldest dropped).
    pub fn new(capacity: usize) -> ReplayBuffer {
        ReplayBuffer {
            capacity,
            ring: Mutex::new(Ring {
                entries: VecDeque::new(),
                first_seq: 0,
            }),
        }
    }

    /// Records one served query; drops the oldest entry when full.
    pub fn record(&self, input: DseInput, predicted: DesignPoint) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("replay buffer poisoned");
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
            ring.first_seq += 1;
        }
        ring.entries.push_back(ReplayEntry { input, predicted });
    }

    /// Entries currently buffered (including duplicates).
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .expect("replay buffer poisoned")
            .entries
            .len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered queries with duplicate workloads collapsed (the
    /// most recent prediction wins), in first-seen order — plus the
    /// one-past-the-end **sequence number** the snapshot covered, taken
    /// under the same lock. A successful refresh passes that sequence
    /// back to [`ReplayBuffer::consume_upto`] so entries recorded
    /// *while* the refresh labeled and trained (which the snapshot
    /// never saw) stay buffered for the next cycle instead of being
    /// silently dropped — even when the capacity bound evicted
    /// snapshotted entries in the meantime.
    pub fn snapshot_distinct(&self) -> (Vec<ReplayEntry>, u64) {
        let ring = self.ring.lock().expect("replay buffer poisoned");
        let mut latest: Vec<ReplayEntry> = Vec::with_capacity(ring.entries.len());
        let mut index_of: HashMap<(u64, u64, u64, usize), usize> = HashMap::new();
        for e in ring.entries.iter() {
            let key = (
                e.input.gemm.m,
                e.input.gemm.n,
                e.input.gemm.k,
                e.input.dataflow.index(),
            );
            match index_of.get(&key) {
                Some(&i) => latest[i] = *e,
                None => {
                    index_of.insert(key, latest.len());
                    latest.push(*e);
                }
            }
        }
        let upto_seq = ring.first_seq + ring.entries.len() as u64;
        (latest, upto_seq)
    }

    /// Drops every entry with a sequence number below `upto_seq` (the
    /// range a snapshot covered). Entries recorded after the snapshot
    /// have sequences `>= upto_seq` and stay put, regardless of how
    /// many snapshotted entries the capacity bound evicted in between.
    pub fn consume_upto(&self, upto_seq: u64) {
        let mut ring = self.ring.lock().expect("replay buffer poisoned");
        let n = (upto_seq.saturating_sub(ring.first_seq) as usize).min(ring.entries.len());
        ring.entries.drain(..n);
        ring.first_seq += n as u64;
    }

    /// Drops everything unconditionally.
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("replay buffer poisoned");
        let len = ring.entries.len() as u64;
        ring.entries.clear();
        ring.first_seq += len;
    }
}

/// Knobs of the background refresh loop.
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// Distinct buffered queries required before a refresh runs (a
    /// fine-tune on a handful of queries would overfit them).
    pub min_buffer: usize,
    /// Fraction of the buffer kept for fine-tuning, taken from the
    /// most-disagreeing end (clamped to (0, 1]).
    pub keep_fraction: f64,
    /// Fine-tune schedule. Only the stage-2 fields matter: refresh
    /// never re-runs stage 1 (the encoder stays frozen).
    pub train: TrainConfig,
    /// Cadence of the background worker.
    pub interval: Duration,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            min_buffer: 32,
            keep_fraction: 0.5,
            train: TrainConfig {
                stage2_epochs: 30,
                batch_size: 32,
                // fine-tuning wants a cooler rate than from-scratch
                // stage 2: the full 2e-3 demonstrably walks a trained
                // decoder away from its optimum on small replay corpora
                lr_stage2: 5e-4,
                ..TrainConfig::default()
            },
            interval: Duration::from_secs(30),
        }
    }
}

/// What one successful refresh did.
#[derive(Debug, Clone)]
pub struct RefreshOutcome {
    /// Lineage version published.
    pub version: u64,
    /// Distinct replayed queries labeled through the oracle.
    pub replayed: usize,
    /// Queries selected by the active-learning filter and trained on.
    pub trained_on: usize,
    /// Geometric-mean cost ratio (served point / oracle optimum) over
    /// the whole buffer, **before** fine-tuning. 1.0 means every served
    /// answer was already oracle-optimal.
    pub disagreement_before: f64,
    /// The same ratio re-measured with the fine-tuned replica's
    /// predictions.
    pub disagreement_after: f64,
}

/// Per-query predicted-vs-oracle cost ratios of `points` against the
/// labeled oracle optima — the one place the disagreement criterion is
/// computed, shared by the geometric mean *and* the active-learning
/// ranking so the two can never silently drift apart.
fn cost_ratios(
    engine: &EvalEngine,
    inputs: &[DseInput],
    points: &[DesignPoint],
    labeled: &DseDataset,
) -> Vec<f64> {
    debug_assert_eq!(inputs.len(), points.len());
    debug_assert_eq!(inputs.len(), labeled.len());
    inputs
        .iter()
        .zip(points)
        .zip(&labeled.samples)
        .map(|((input, &point), sample)| engine.score_unchecked(input, point) / sample.best_score)
        .collect()
}

/// Geometric mean of a ratio vector (1.0 for an empty one).
fn geo_mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// Runs one refresh cycle: label the replay buffer, select the
/// most-disagreeing queries, fine-tune the live replica's decoder on
/// them, and publish the result at `live_version + 1`. Only the
/// snapshotted prefix of the buffer is drained, and only on success —
/// queries served while the refresh was labeling/training stay
/// buffered for the next cycle.
///
/// # Errors
///
/// Returns a human-readable reason when the refresh cannot run (buffer
/// too small, registry frozen, checkpoint fails to restore) or the
/// publish is rejected (a concurrent swap advanced the version first).
pub fn refresh_once(
    engine: &Arc<EvalEngine>,
    registry: &ModelRegistry,
    buffer: &ReplayBuffer,
    cfg: &RefreshConfig,
) -> Result<RefreshOutcome, String> {
    if registry.frozen() {
        return Err("registry is frozen; refresh skipped".to_string());
    }
    let (entries, snapshot_upto_seq) = buffer.snapshot_distinct();
    if entries.len() < cfg.min_buffer.max(1) {
        return Err(format!(
            "replay buffer holds {} distinct queries; refresh needs at least {}",
            entries.len(),
            cfg.min_buffer.max(1)
        ));
    }

    // -- label every replayed query through the oracle ----------------
    let inputs: Vec<DseInput> = entries.iter().map(|e| e.input).collect();
    let served_points: Vec<DesignPoint> = entries.iter().map(|e| e.predicted).collect();
    let labeled = DseDataset::label_inputs(engine, &inputs);
    let ratios = cost_ratios(engine, &inputs, &served_points, &labeled);
    let disagreement_before = geo_mean(&ratios);

    // -- active learning: keep the most-disagreeing fraction ----------
    let mut ranked: Vec<(usize, f64)> = ratios.iter().copied().enumerate().collect();
    // descending by disagreement; ties broken by buffer order so the
    // selection (hence the fine-tune) is deterministic
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let keep_fraction = cfg.keep_fraction.clamp(f64::EPSILON, 1.0);
    let keep = ((entries.len() as f64 * keep_fraction).ceil() as usize).clamp(1, entries.len());
    let mut selected: Vec<usize> = ranked[..keep].iter().map(|&(i, _)| i).collect();
    // training-set order = buffer order, not disagreement order, so the
    // minibatch stream is stable under cost ties
    selected.sort_unstable();
    let train_ds = DseDataset {
        backend: labeled.backend,
        samples: selected.iter().map(|&i| labeled.samples[i]).collect(),
    };

    // -- fine-tune the live replica's decoder -------------------------
    let base = registry.current();
    let mut model = Airchitect2::from_checkpoint(Arc::clone(engine), &base)
        .map_err(|e| format!("live checkpoint failed to restore: {e}"))?;
    let prep = model.prepare(&train_ds);
    Stage2Trainer::new(cfg.train.clone()).run(&mut model, &prep);

    let refreshed_points = model.predict(&inputs);
    let disagreement_after = geo_mean(&cost_ratios(engine, &inputs, &refreshed_points, &labeled));
    // no-regression gate: never roll the fleet onto a replica that got
    // *worse* on the very queries it was tuned for (a diverged
    // fine-tune, e.g. from a too-hot learning rate, lands here). The
    // buffer is kept so the next cycle can retry with more data.
    if disagreement_after > disagreement_before {
        return Err(format!(
            "fine-tune regressed on-buffer disagreement \
             ({disagreement_before:.4} → {disagreement_after:.4}); not published"
        ));
    }

    // -- publish at live_version + 1 ----------------------------------
    let next = registry.version() + 1;
    let ckpt = model
        .checkpoint()
        .with_version(next)
        .with_provenance(engine.backend_id().as_str(), train_ds.len() as u64);
    let version = registry.publish(ckpt).map_err(|e| e.to_string())?;
    // drain only what the snapshot covered: queries served while this
    // refresh labeled and trained were never seen by it and must stay
    // buffered for the next cycle
    buffer.consume_upto(snapshot_upto_seq);
    Ok(RefreshOutcome {
        version,
        replayed: entries.len(),
        trained_on: train_ds.len(),
        disagreement_before,
        disagreement_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::{DseTask, GenerateConfig};
    use ai2_maestro::{Dataflow, GemmWorkload};
    use airchitect::ModelConfig;

    fn input(m: u64, n: u64, k: u64, df: usize) -> DseInput {
        DseInput {
            gemm: GemmWorkload::new(m, n, k),
            dataflow: Dataflow::from_index(df),
        }
    }

    #[test]
    fn replay_buffer_bounds_dedups_and_clears() {
        let buf = ReplayBuffer::new(3);
        let p = |i| DesignPoint {
            pe_idx: i,
            buf_idx: i,
        };
        buf.record(input(1, 1, 1, 0), p(0));
        buf.record(input(2, 2, 2, 0), p(1));
        buf.record(input(1, 1, 1, 0), p(2)); // duplicate workload, newer point
        assert_eq!(buf.len(), 3);
        let (distinct, upto) = buf.snapshot_distinct();
        assert_eq!(distinct.len(), 2, "duplicates collapse");
        assert_eq!(upto, 3, "sequence covers every snapshotted entry");
        assert_eq!(distinct[0].predicted, p(2), "most recent prediction wins");
        // overflow drops the oldest raw entry
        buf.record(input(3, 3, 3, 0), p(3));
        buf.record(input(4, 4, 4, 0), p(4));
        assert_eq!(buf.len(), 3);
        buf.clear();
        assert!(buf.is_empty());
        // capacity 0 disables recording
        let off = ReplayBuffer::new(0);
        off.record(input(1, 1, 1, 0), p(0));
        assert!(off.is_empty());
    }

    #[test]
    fn consume_upto_preserves_entries_recorded_after_the_snapshot() {
        // the refresh-cycle contract: queries served while a refresh is
        // labeling/training were not in its snapshot and must survive
        // the post-publish drain for the next cycle
        let buf = ReplayBuffer::new(16);
        let p = |i| DesignPoint {
            pe_idx: i,
            buf_idx: i,
        };
        for i in 0..4u64 {
            buf.record(input(i + 1, 1, 1, 0), p(i as usize));
        }
        let (snap, upto) = buf.snapshot_distinct();
        assert_eq!((snap.len(), upto), (4, 4));
        // two more queries arrive while the (conceptual) fine-tune runs
        buf.record(input(100, 1, 1, 0), p(5));
        buf.record(input(101, 1, 1, 0), p(6));
        buf.consume_upto(upto);
        assert_eq!(buf.len(), 2, "post-snapshot entries survive the drain");
        let (rest, _) = buf.snapshot_distinct();
        assert_eq!(rest[0].input.gemm.m, 100);
        assert_eq!(rest[1].input.gemm.m, 101);
        // a stale over-large sequence never touches post-snapshot data
        buf.consume_upto(upto);
        assert_eq!(buf.len(), 2, "re-consuming an old snapshot is a no-op");
    }

    #[test]
    fn consume_upto_is_eviction_safe_at_capacity() {
        // a full ring under sustained traffic: eviction during the
        // refresh window must not cause the drain to eat post-snapshot
        // entries (sequence accounting, not a raw prefix count)
        let buf = ReplayBuffer::new(4);
        let p = |i| DesignPoint {
            pe_idx: i,
            buf_idx: i,
        };
        for i in 0..4u64 {
            buf.record(input(i + 1, 1, 1, 0), p(i as usize));
        }
        let (_, upto) = buf.snapshot_distinct(); // covers seqs [0, 4)
        assert_eq!(upto, 4);
        // three arrivals while the refresh trains: each evicts one
        // snapshotted entry (ring now holds seqs 3..7: one snapshotted
        // entry + the three new ones)
        for j in 0..3u64 {
            buf.record(input(100 + j, 1, 1, 0), p(9));
        }
        assert_eq!(buf.len(), 4);
        buf.consume_upto(upto);
        // only the surviving snapshotted entry (seq 3) was drained; the
        // three post-snapshot arrivals remain for the next cycle
        assert_eq!(buf.len(), 3, "eviction must not inflate the drain");
        let (rest, _) = buf.snapshot_distinct();
        let ms: Vec<u64> = rest.iter().map(|e| e.input.gemm.m).collect();
        assert_eq!(ms, vec![100, 101, 102]);
    }

    /// Tiny standalone LCG so these tests need no RNG dependency
    /// (mirrors the `LruCache` reference-model test).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn randomized_record_snapshot_drain_never_double_labels_or_skips() {
        // the labeling contract: across any interleaving of records,
        // snapshots and sequence-range drains, every recorded entry is
        // labeled at most once (no double-label) and an entry only
        // vanishes unlabeled by eviction — never by a drain eating
        // post-snapshot arrivals (no skip). Entries carry a unique `m`
        // so dedup never collapses them and each one is traceable.
        for (seed, capacity) in [(1u64, 2usize), (2, 4), (3, 7), (4, 16), (5, 1)] {
            let buf = ReplayBuffer::new(capacity);
            let mut g = Lcg(seed);
            let mut next_m = 1u64;
            let mut recorded = 0u64; // total records ever
            let mut evictions = 0u64; // capacity-bound drops
            let mut labeled: Vec<u64> = Vec::new(); // drained (= labeled) m values
            let mut open_snapshot: Option<(Vec<u64>, u64)> = None;
            for step in 0..3000 {
                match g.next() % 4 {
                    // record (twice as likely so the ring actually fills)
                    0 | 1 => {
                        if buf.len() == capacity && capacity > 0 {
                            evictions += 1;
                        }
                        buf.record(
                            input(next_m, 1, 1, 0),
                            DesignPoint {
                                pe_idx: 0,
                                buf_idx: 0,
                            },
                        );
                        next_m += 1;
                        recorded += 1;
                    }
                    // take a snapshot (a refresh starting to label)
                    2 => {
                        let (snap, upto) = buf.snapshot_distinct();
                        open_snapshot = Some((snap.iter().map(|e| e.input.gemm.m).collect(), upto));
                    }
                    // drain the snapshotted range (the refresh publishing)
                    _ => {
                        if let Some((ms, upto)) = open_snapshot.take() {
                            // whatever survives of the snapshot in the
                            // ring right now is about to be labeled
                            let (before, _) = buf.snapshot_distinct();
                            let surviving: Vec<u64> = before
                                .iter()
                                .map(|e| e.input.gemm.m)
                                .filter(|m| ms.contains(m))
                                .collect();
                            buf.consume_upto(upto);
                            let (after, _) = buf.snapshot_distinct();
                            for m in &surviving {
                                assert!(
                                    !after.iter().any(|e| e.input.gemm.m == *m),
                                    "seed {seed} cap {capacity} step {step}: drained entry \
                                     m={m} still buffered (would be labeled twice)"
                                );
                                assert!(
                                    !labeled.contains(m),
                                    "seed {seed} cap {capacity} step {step}: entry m={m} \
                                     labeled twice across drains"
                                );
                                labeled.push(*m);
                            }
                            // post-snapshot arrivals must all survive
                            for e in &after {
                                assert!(
                                    !ms.contains(&e.input.gemm.m)
                                        || !surviving.contains(&e.input.gemm.m),
                                    "inconsistent drain bookkeeping"
                                );
                            }
                        }
                    }
                }
                assert!(buf.len() <= capacity, "ring over capacity");
            }
            // conservation: every record was labeled once, evicted, or
            // is still buffered — nothing double-counted, nothing lost
            assert_eq!(
                labeled.len() as u64 + evictions + buf.len() as u64,
                recorded,
                "seed {seed} cap {capacity}: {} labeled + {evictions} evicted + {} buffered \
                 != {recorded} recorded",
                labeled.len(),
                buf.len()
            );
        }
    }

    #[test]
    fn concurrent_record_and_drain_label_every_entry_exactly_once() {
        // real-thread version of the same contract, capacity large
        // enough that nothing is evicted: a recorder hammers the buffer
        // while a drainer snapshots + consumes; at the end every entry
        // must have been drained exactly once or still be buffered
        const N: u64 = 2000;
        let buf = std::sync::Arc::new(ReplayBuffer::new(N as usize));
        let drained = std::sync::Arc::new(Mutex::new(Vec::<u64>::new()));
        std::thread::scope(|scope| {
            let recorder = {
                let buf = std::sync::Arc::clone(&buf);
                scope.spawn(move || {
                    for m in 1..=N {
                        buf.record(
                            input(m, 1, 1, 0),
                            DesignPoint {
                                pe_idx: 0,
                                buf_idx: 0,
                            },
                        );
                    }
                })
            };
            let buf = std::sync::Arc::clone(&buf);
            let drained = std::sync::Arc::clone(&drained);
            scope.spawn(move || {
                while !recorder.is_finished() {
                    let (snap, upto) = buf.snapshot_distinct();
                    buf.consume_upto(upto);
                    drained
                        .lock()
                        .unwrap()
                        .extend(snap.iter().map(|e| e.input.gemm.m));
                }
            });
        });
        let mut seen = drained.lock().unwrap().clone();
        let (rest, _) = buf.snapshot_distinct();
        seen.extend(rest.iter().map(|e| e.input.gemm.m));
        seen.sort_unstable();
        let expect: Vec<u64> = (1..=N).collect();
        assert_eq!(
            seen, expect,
            "every recorded entry drained or buffered exactly once"
        );
    }

    #[test]
    fn refresh_requires_a_filled_buffer_and_respects_freeze() {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 30,
                seed: 17,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task);
        let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        let registry = ModelRegistry::new(model.checkpoint().with_version(1));
        let buffer = ReplayBuffer::new(64);
        let cfg = RefreshConfig {
            min_buffer: 4,
            ..RefreshConfig::default()
        };

        // empty buffer → refused with a reason, nothing published
        let err = refresh_once(&engine, &registry, &buffer, &cfg).unwrap_err();
        assert!(err.contains("replay buffer"), "{err}");
        assert_eq!(registry.version(), 1);

        for (i, s) in ds.samples.iter().take(8).enumerate() {
            buffer.record(
                s.input(),
                DesignPoint {
                    pe_idx: i % 4,
                    buf_idx: i % 3,
                },
            );
        }
        // frozen → refused even with a filled buffer
        registry.set_frozen(true);
        let err = refresh_once(&engine, &registry, &buffer, &cfg).unwrap_err();
        assert!(err.contains("frozen"), "{err}");
        assert_eq!(
            buffer.len(),
            8,
            "a refused refresh must not drain the buffer"
        );

        // unfrozen → publishes version 2 and drains the buffer
        registry.set_frozen(false);
        let outcome = refresh_once(&engine, &registry, &buffer, &cfg).unwrap();
        assert_eq!(outcome.version, 2);
        assert_eq!(registry.version(), 2);
        assert_eq!(outcome.replayed, 8);
        assert!(outcome.trained_on >= 1 && outcome.trained_on <= 8);
        assert!(outcome.disagreement_before >= 1.0 - 1e-9);
        assert!(buffer.is_empty());
        // provenance records the refresh
        let live = registry.current();
        assert_eq!(live.provenance.backend, "analytic");
        assert_eq!(live.provenance.training_samples, outcome.trained_on as u64);
    }
}
