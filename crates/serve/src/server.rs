//! The concurrent service: an admission queue with micro-batching, N
//! worker shards answering from warm [`Airchitect2`] replicas over one
//! shared [`EvalEngine`], an LRU response cache, per-request deadlines,
//! and pluggable line transports (TCP in production, a deterministic
//! virtual transport under simulation — see [`crate::transport`]).
//!
//! # Anatomy of a request
//!
//! 1. **Admission** — [`Client::recommend`] (in-process) or a transport
//!    line pushes a [`Job`] onto the shared queue and wakes a shard.
//! 2. **Micro-batching** — the woken shard drains up to
//!    [`ServeConfig::max_batch`] queued jobs in one go. Deadline-expired
//!    jobs are answered with an error immediately; cached canonical
//!    queries are answered from the LRU; the rest are coalesced into
//!    **one** [`recommend_batch`] call — a single `Predictor` forward
//!    pass for every GEMM query in the batch, regardless of how many
//!    clients they came from.
//! 3. **Verification** — costs come from the shared per-backend engines
//!    ([`EvalEngine::score_many_inputs`] /
//!    [`EvalEngine::model_cost_batch_with`] on the engine the query's
//!    `"backend"` field selects), so every shard's answers land in (and
//!    reuse) the same per-backend raw-cost caches.
//! 4. **Response** — each job's `mpsc` slot receives its [`Response`];
//!    the metrics window records the admission→response latency that the
//!    `stats` endpoint aggregates into p50/p95/p99.
//!
//! Shards hold *replicas* of the model (rebuilt from the same
//! [`ModelCheckpoint`], hence bit-identical) because the autograd store
//! is not `Sync`; they share one engine because the raw-cost cache is.
//!
//! # Drivers: threaded and stepped
//!
//! The shard loop is one pure function, [`shard_try_step`]: drain a
//! fair share of the queue, adopt a newly published replica if the
//! registry epoch moved, process the batch. Under
//! [`Driver::Threaded`] (production) each shard runs that function in
//! its own thread behind a condvar. Under [`Driver::Manual`] no threads
//! are spawned at all: the caller invokes
//! [`RecommendService::step_shard`] explicitly, and all time comes from
//! the [`Clock`] the service was started with — so a whole server run
//! becomes a deterministic function of the step sequence, which is what
//! the `ai2_simtest` harness replays from a seed.
//!
//! # Live model refresh
//!
//! The checkpoint lives behind a [`ModelRegistry`]: shards compare the
//! registry's **epoch** at every micro-batch boundary and rebuild their
//! replica when a new checkpoint was published (an admin `swap` line,
//! an in-process [`RecommendService::swap_checkpoint`], or the
//! background refresh worker). In-flight batches finish on the old
//! replica — a swap drops zero requests — and the response cache is
//! **epoch-tagged** so an old-replica batch that straggles past the
//! swap can never poison the cache with outgoing-model answers.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ai2_dse::{EvalEngine, PipelineSet};
use ai2_obs::{ArgValue, SpanRecord, Tracer, NO_PARENT};
use airchitect::{Airchitect2, InferenceScratch, ModelCheckpoint};

use crate::cache::LruCache;
use crate::clock::{Clock, WallClock};
use crate::metrics::ServiceMetrics;
use crate::protocol::{
    decode_line, AdminAck, AdminRequest, PipelineInfo, PipelineServed, QueryKey, RecommendRequest,
    Recommendation, Request, Response, ServeStats,
};
use crate::recommend::{recommend_batch_in, BackendEngines};
use crate::refresh::{refresh_once, RefreshConfig, RefreshOutcome, ReplayBuffer};
use crate::registry::ModelRegistry;
use crate::transport::{BoundAddr, TcpTransport, Transport};

/// A completion hook a transport attaches to a submission: invoked
/// (from the answering shard's thread) right after the response lands
/// in the job's channel, so an event loop parked in its poller learns
/// the answer is ready without busy-polling.
pub type NotifyFn = Arc<dyn Fn() + Send + Sync>;

/// How shard work gets scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Driver {
    /// One thread per shard behind a condvar (production).
    #[default]
    Threaded,
    /// No threads: the owner calls [`RecommendService::step_shard`]
    /// explicitly. Combined with a [`crate::clock::VirtualClock`] and
    /// the virtual transport, a whole server run is a deterministic
    /// function of the step sequence.
    Manual,
}

/// What happens to a recommendation arriving while the shard queue is
/// already deep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Queue everything (the historical behavior): latency degrades
    /// under overload but no request is refused.
    #[default]
    Queue,
    /// Refuse admissions once the queue holds `high_water` jobs: the
    /// request is answered inline with the `"shedding"` error, counted
    /// in [`ServeStats::sheds`], and never reaches a shard. Cheap
    /// inline work (stats, admin, malformed lines) is never shed.
    Shed {
        /// Queue depth at and above which new recommendations are
        /// refused.
        high_water: usize,
    },
}

/// Service sizing knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (each holds a warm model replica). Minimum 1.
    pub shards: usize,
    /// Upper bound on jobs coalesced into one micro-batch.
    pub max_batch: usize,
    /// LRU response-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Served-query replay-buffer entries feeding the refresh loop
    /// (0 disables recording).
    pub replay_capacity: usize,
    /// Background refresh loop; `None` leaves refreshing to explicit
    /// [`RecommendService::refresh_now`] calls and admin swaps. Under
    /// [`Driver::Manual`] no background worker is spawned either way:
    /// this only supplies the [`RefreshConfig`] that `refresh_now`
    /// uses.
    pub refresh: Option<RefreshConfig>,
    /// Shard scheduling: threaded (default) or manually stepped.
    pub driver: Driver,
    /// Shard indices serving the **int8-quantized decoder flavor**
    /// instead of the full-precision f32 decoder. A listed shard
    /// quantizes its replica deterministically after every restore (or
    /// adopts the checkpoint's stored int8 blob when one is published),
    /// so all replicas of one flavor stay bit-identical to each other;
    /// unlisted shards always clear any stored flavor and serve f32.
    /// Empty (the default) serves f32 everywhere. Out-of-range indices
    /// are ignored.
    pub quantized_shards: Vec<usize>,
    /// The named recommendation pipelines this service answers through
    /// (`serve --pipelines FILE` compiles its config file into this
    /// set). Always contains the built-in `"default"` — the degenerate
    /// single-stage pipeline whose answers are bit-identical to the
    /// pre-pipeline server — which is what every request without a
    /// `"pipeline"` field runs.
    pub pipelines: PipelineSet,
    /// Admission control under overload; the default queues everything.
    pub overload: OverloadPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            max_batch: 32,
            cache_capacity: 1024,
            replay_capacity: 4096,
            refresh: None,
            driver: Driver::Threaded,
            quantized_shards: Vec::new(),
            pipelines: PipelineSet::default(),
            overload: OverloadPolicy::default(),
        }
    }
}

/// The LRU response cache tagged with the registry epoch its entries
/// were computed under. Inserts stamped with an older epoch are
/// dropped: a pre-swap batch finishing after the swap must not publish
/// outgoing-replica answers into the post-swap cache.
struct EpochCache {
    epoch: u64,
    lru: LruCache<QueryKey, Recommendation>,
}

/// One admitted request waiting for a shard. Timestamps come from the
/// service [`Clock`] (nanoseconds since its epoch), never from
/// [`Instant`], so deadline expiry replays deterministically under a
/// virtual clock.
struct Job {
    req: RecommendRequest,
    key: Option<QueryKey>,
    admitted_ns: u64,
    deadline_ns: Option<u64>,
    /// Root `serve.request` span id, allocated at admission so children
    /// can reference it; [`NO_PARENT`] when tracing was off.
    span_id: u64,
    tx: mpsc::Sender<Response>,
    /// Invoked after the response is sent (see [`NotifyFn`]).
    notify: Option<NotifyFn>,
}

impl Job {
    /// Sends the response and fires the transport's completion hook.
    fn answer(&self, resp: Response) {
        let _ = self.tx.send(resp);
        if let Some(notify) = &self.notify {
            notify();
        }
    }
}

struct Inner {
    cfg: ServeConfig,
    clock: Arc<dyn Clock>,
    engines: BackendEngines,
    registry: ModelRegistry,
    replay: ReplayBuffer,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    cache: Mutex<EpochCache>,
    metrics: ServiceMetrics,
    tracer: Tracer,
    /// Recommendations answered per pipeline name (cache hits
    /// included), keyed over every registered pipeline from startup so
    /// idle pipelines still report 0.
    pipeline_served: Mutex<BTreeMap<String, u64>>,
}

impl Inner {
    /// Admission control: either queues the request (returning the
    /// receiver its answer will land in) or refuses it inline with the
    /// response to send instead — shutdown refusals and, under
    /// [`OverloadPolicy::Shed`], overload sheds.
    fn admit(
        &self,
        req: RecommendRequest,
        notify: Option<NotifyFn>,
    ) -> Result<mpsc::Receiver<Response>, Box<Response>> {
        if self.stop.load(Ordering::SeqCst) {
            // after shutdown begins no job may enter the queue: a
            // queued job no shard will drain would strand whoever
            // waits on it
            return Err(Box::new(Response::Error {
                id: req.id,
                message: "service is shutting down".into(),
            }));
        }
        let (tx, rx) = mpsc::channel();
        let admitted_ns = self.clock.now_ns();
        let job = Job {
            key: QueryKey::of(&req),
            // checked: an absurd deadline_ms (e.g. u64::MAX from a
            // hostile client) must degrade to "no deadline", not wrap
            // the nanosecond arithmetic
            deadline_ns: req
                .deadline_ms
                .and_then(|ms| ms.checked_mul(1_000_000))
                .and_then(|ns| admitted_ns.checked_add(ns)),
            admitted_ns,
            // the root span id is allocated at admission (its record is
            // written when the response is sent), so ids follow
            // admission order — deterministic under the manual driver
            span_id: if self.tracer.enabled() {
                self.tracer.alloc_id()
            } else {
                NO_PARENT
            },
            req,
            tx,
            notify,
        };
        {
            // the shed decision and the enqueue share one lock hold, so
            // the depth a request was judged against is exact — the
            // same admission sequence sheds the same requests on every
            // deterministic replay
            let mut q = self.queue.lock().expect("admission queue poisoned");
            if let OverloadPolicy::Shed { high_water } = self.cfg.overload {
                if q.len() >= high_water {
                    self.metrics.record_shed();
                    return Err(Box::new(Response::Error {
                        id: job.req.id,
                        message: format!(
                            "shedding: queue depth {} at high-water mark {high_water}",
                            q.len()
                        ),
                    }));
                }
            }
            q.push_back(job);
        }
        self.metrics.queue_depth_add(1);
        self.available.notify_one();
        Ok(rx)
    }

    fn serve_stats(&self, id: u64) -> ServeStats {
        let snap = self.metrics.snapshot();
        // summed across the per-backend engines (each keeps its own
        // caches; the counters are additive)
        let engine = ai2_dse::BackendId::ALL
            .iter()
            .map(|&b| self.engines.get(b).stats())
            .fold(ai2_dse::EngineStats::default(), |mut acc, s| {
                acc.point_hits += s.point_hits;
                acc.point_misses += s.point_misses;
                acc
            });
        ServeStats {
            id,
            served: snap.served,
            cache_hits: snap.cache_hits,
            deadline_expired: snap.deadline_expired,
            errors: snap.errors,
            shards: self.cfg.shards,
            model_version: self.registry.version(),
            frozen: self.registry.frozen(),
            swaps: self.registry.swaps(),
            replay_len: self.replay.len(),
            uptime_ms: snap.uptime_ms,
            throughput_rps: snap.throughput_rps,
            queue_depth: snap.queue_depth,
            sheds: snap.sheds,
            queue_high_water: snap.queue_high_water,
            p50_us: snap.p50_us,
            p95_us: snap.p95_us,
            p99_us: snap.p99_us,
            batch_size_p50: snap.batch_size_p50,
            batch_size_p95: snap.batch_size_p95,
            engine_point_hits: engine.point_hits,
            engine_point_misses: engine.point_misses,
            kernel: ai2_tensor::kernel::active().name().to_string(),
            quantized_shards: (0..self.cfg.shards)
                .filter(|s| self.cfg.quantized_shards.contains(s))
                .count(),
            pipelines: self
                .pipeline_served
                .lock()
                .expect("pipeline counters poisoned")
                .iter()
                .map(|(name, &served)| PipelineServed {
                    name: name.clone(),
                    served,
                })
                .collect(),
        }
    }

    /// Counts one answered recommendation against its pipeline (`None`
    /// on the wire is the default pipeline).
    fn record_pipeline_served(&self, pipeline: Option<&str>) {
        let name = pipeline.unwrap_or(PipelineSet::DEFAULT);
        let mut counts = self
            .pipeline_served
            .lock()
            .expect("pipeline counters poisoned");
        // unknown names get error responses and are never counted here,
        // but stay defensive: an uncounted serve is worse than a new row
        *counts.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Validates and publishes `ckpt` as the live checkpoint, flushing
    /// the (now stale) response cache. With `bump`, the registry
    /// re-stamps the checkpoint at `live_version + 1` under its own
    /// lock (so a concurrent publish cannot turn the bump into a
    /// spurious version rejection). Returns the version that went live.
    fn install_checkpoint(&self, ckpt: ModelCheckpoint, bump: bool) -> Result<u64, String> {
        // a checkpoint that cannot restore must never become live — the
        // shards would die trying to rebuild from it
        Airchitect2::from_checkpoint(Arc::clone(self.engines.primary()), &ckpt)
            .map_err(|e| format!("checkpoint does not restore: {e}"))?;
        let publish = if bump {
            self.registry.publish_bumped(ckpt)
        } else {
            self.registry.publish(ckpt)
        };
        let version = publish.map_err(|e| e.to_string())?;
        self.flush_cache();
        self.tracer.instant(
            "serve.swap",
            "lifecycle",
            0,
            vec![("version", ArgValue::U64(version))],
        );
        Ok(version)
    }

    /// Clears the response cache and re-tags it with the current
    /// registry epoch (stale-epoch inserts are dropped from here on).
    fn flush_cache(&self) {
        let mut cache = self.cache.lock().expect("cache poisoned");
        cache.lru.clear();
        cache.epoch = self.registry.epoch();
    }

    /// The single dispatch point for the unified admin surface: every
    /// [`AdminRequest`] is answered here, inline, without occupying a
    /// shard.
    fn handle_admin(&self, req: &AdminRequest) -> Response {
        match req {
            AdminRequest::Stats { id } => Response::Stats(self.serve_stats(*id)),
            AdminRequest::Swap { id, path, bump } => {
                let ckpt = match ModelCheckpoint::load(path) {
                    Ok(ckpt) => ckpt,
                    Err(e) => {
                        self.metrics.record_error();
                        return Response::Error {
                            id: *id,
                            message: format!("swap rejected: cannot load {path:?}: {e}"),
                        };
                    }
                };
                match self.install_checkpoint(ckpt, bump.unwrap_or(false)) {
                    Ok(version) => Response::Admin(AdminAck {
                        id: *id,
                        op: "swap".into(),
                        model_version: version,
                        frozen: self.registry.frozen(),
                    }),
                    Err(message) => {
                        self.metrics.record_error();
                        Response::Error {
                            id: *id,
                            message: format!("swap rejected: {message}"),
                        }
                    }
                }
            }
            AdminRequest::Freeze { id, frozen } => {
                self.registry.set_frozen(*frozen);
                self.tracer.instant(
                    "serve.freeze",
                    "lifecycle",
                    0,
                    vec![("frozen", ArgValue::U64(u64::from(*frozen)))],
                );
                Response::Admin(AdminAck {
                    id: *id,
                    op: "freeze".into(),
                    model_version: self.registry.version(),
                    frozen: *frozen,
                })
            }
            AdminRequest::Pipelines { id } => Response::Pipelines {
                id: *id,
                pipelines: self
                    .cfg
                    .pipelines
                    .iter()
                    .map(|p| PipelineInfo {
                        name: p.name().to_string(),
                        stages: p.stage_names().iter().map(|s| s.to_string()).collect(),
                    })
                    .collect(),
            },
            AdminRequest::Trace { id, enable, path } => {
                if let Some(on) = enable {
                    self.tracer.set_enabled(*on);
                }
                if let Some(path) = path {
                    if let Err(e) = std::fs::write(path, self.tracer.chrome_json()) {
                        self.metrics.record_error();
                        return Response::Error {
                            id: *id,
                            message: format!("trace rejected: cannot write {path:?}: {e}"),
                        };
                    }
                }
                Response::Admin(AdminAck {
                    id: *id,
                    op: "trace".into(),
                    model_version: self.registry.version(),
                    frozen: self.registry.frozen(),
                })
            }
        }
    }
}

/// What one wire line turned into — the transport-facing half of the
/// service. Transports hand every received line to
/// [`Endpoint::handle_line`] and route the result back to their client.
// a `Ready` response is built once and serialized immediately, so the
// size skew against `Ignored` never lives past one handler frame
#[allow(clippy::large_enum_variant)]
pub enum Submission {
    /// Blank line: no response is owed.
    Ignored,
    /// Answered inline without occupying a shard (`stats`, admin
    /// messages, malformed lines).
    Ready(Response),
    /// A recommendation admitted to the shard queue; the answer arrives
    /// through the [`Pending`].
    Queued(Pending),
}

/// The service's line-level entry point, shared by every transport: one
/// wire line in, one [`Submission`] out. The TCP transport and the
/// deterministic virtual transport both dispatch through this exact
/// function, so they cannot diverge in decoding, admin handling, or
/// error behavior.
#[derive(Clone)]
pub struct Endpoint {
    inner: Arc<Inner>,
}

impl Endpoint {
    /// Decodes and dispatches one wire line (without its trailing
    /// newline). `stats` and the admin messages are answered inline;
    /// recommendations are admitted to the shard queue; malformed lines
    /// answer the canonical parse error.
    pub fn handle_line(&self, line: &str) -> Submission {
        self.handle_line_with_notify(line, None)
    }

    /// [`Endpoint::handle_line`] with a completion hook: when the line
    /// queues a recommendation, `notify` fires right after its response
    /// lands (see [`NotifyFn`]) — how the event-driven front end learns
    /// to flush a connection without polling every pending answer.
    /// Inline answers (stats, admin, sheds, malformed lines) never
    /// invoke the hook; they are returned directly.
    pub fn handle_line_with_notify(&self, line: &str, notify: Option<NotifyFn>) -> Submission {
        if line.trim().is_empty() {
            return Submission::Ignored;
        }
        match decode_line::<Request>(line) {
            Ok(Request::Recommend(req)) => match self.inner.admit(req, notify) {
                Ok(rx) => Submission::Queued(Pending(rx)),
                Err(resp) => Submission::Ready(*resp),
            },
            Ok(Request::Admin(admin)) => Submission::Ready(self.inner.handle_admin(&admin)),
            Err(e) => {
                self.inner.metrics.record_error();
                Submission::Ready(Response::Error {
                    id: 0,
                    message: format!("malformed request line: {e}"),
                })
            }
        }
    }

    /// Whether the service has been shut down (transports drain and
    /// exit when this turns true).
    pub fn stopped(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }
}

/// The running service. Dropping it without [`RecommendService::shutdown`]
/// leaks the shard threads; call `shutdown` for a clean stop.
pub struct RecommendService {
    inner: Arc<Inner>,
    shards: Vec<JoinHandle<()>>,
    /// Per-shard replica state under [`Driver::Manual`] (empty when
    /// threaded — each thread owns its state locally).
    stepped_shards: Vec<Mutex<ShardState>>,
    transports: Vec<Box<dyn Transport>>,
    refresher: Option<JoinHandle<()>>,
}

impl RecommendService {
    /// Starts the service on the production wall clock. See
    /// [`RecommendService::start_with`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not apply to a freshly built model
    /// (missing parameters / shape mismatch) — a serving process wants
    /// that failure at startup, not on the first query.
    pub fn start(cfg: ServeConfig, engine: Arc<EvalEngine>, ckpt: ModelCheckpoint) -> Self {
        Self::start_with(cfg, engine, ckpt, Arc::new(WallClock::new()))
    }

    /// Starts the shards from a trained model checkpoint over an
    /// explicit [`Clock`]. Every shard restores its own replica
    /// (predictions are bit-identical across replicas by the checkpoint
    /// round-trip guarantee) over the one shared engine. Under
    /// [`Driver::Manual`] no threads are spawned; drive the service
    /// with [`RecommendService::step_shard`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not apply to a freshly built
    /// model.
    pub fn start_with(
        cfg: ServeConfig,
        engine: Arc<EvalEngine>,
        ckpt: ModelCheckpoint,
        clock: Arc<dyn Clock>,
    ) -> Self {
        // fail fast on a bad checkpoint before spawning anything
        Airchitect2::from_checkpoint(Arc::clone(&engine), &ckpt)
            .expect("checkpoint must apply to the configured model");
        let cfg = ServeConfig {
            shards: cfg.shards.max(1),
            max_batch: cfg.max_batch.max(1),
            ..cfg
        };
        let tracer = {
            let clock = Arc::clone(&clock);
            Tracer::new(Arc::new(move || clock.now_ns()))
        };
        let inner = Arc::new(Inner {
            cache: Mutex::new(EpochCache {
                epoch: 0,
                lru: LruCache::new(cfg.cache_capacity),
            }),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            metrics: ServiceMetrics::new(cfg.shards),
            pipeline_served: Mutex::new(
                cfg.pipelines
                    .names()
                    .into_iter()
                    .map(|n| (n.to_string(), 0))
                    .collect(),
            ),
            cfg,
            clock,
            engines: BackendEngines::new(engine),
            registry: ModelRegistry::new(ckpt),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            tracer,
        });
        let (shards, stepped_shards) = match inner.cfg.driver {
            Driver::Threaded => {
                let handles = (0..inner.cfg.shards)
                    .map(|i| {
                        let inner = Arc::clone(&inner);
                        std::thread::Builder::new()
                            .name(format!("ai2-serve-shard-{i}"))
                            .spawn(move || shard_main(&inner, i))
                            .expect("spawn shard")
                    })
                    .collect();
                (handles, Vec::new())
            }
            Driver::Manual => {
                let states = (0..inner.cfg.shards)
                    .map(|i| Mutex::new(ShardState::new(&inner, i)))
                    .collect();
                (Vec::new(), states)
            }
        };
        let refresher = match inner.cfg.driver {
            Driver::Threaded => inner.cfg.refresh.as_ref().map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name("ai2-serve-refresh".into())
                    .spawn(move || refresh_main(&inner))
                    .expect("spawn refresh worker")
            }),
            // manual runs refresh only through explicit refresh_now
            // calls — a background timer would break determinism
            Driver::Manual => None,
        };
        RecommendService {
            inner,
            shards,
            stepped_shards,
            transports: Vec::new(),
            refresher,
        }
    }

    /// An in-process client (no sockets) — the test and bench path.
    /// Under [`Driver::Manual`], pair [`Client::submit`] with
    /// [`Pending::poll`] and [`RecommendService::step_shard`] — a
    /// blocking [`Client::recommend`] would wait forever with no shard
    /// threads to answer it.
    pub fn client(&self) -> Client {
        Client {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The line-level entry point transports dispatch through.
    pub fn endpoint(&self) -> Endpoint {
        Endpoint {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Binds a transport, starts it against this service's
    /// [`Endpoint`], and owns it until shutdown. Returns where the
    /// transport listens.
    ///
    /// # Errors
    ///
    /// Returns the transport's bind or startup error.
    pub fn attach(&mut self, mut transport: Box<dyn Transport>) -> io::Result<BoundAddr> {
        let bound = transport.bind()?;
        transport.run(self.endpoint())?;
        self.transports.push(transport);
        Ok(bound)
    }

    /// Binds a TCP listener (use port 0 for an ephemeral port) and
    /// starts accepting NDJSON connections with the thread-per-
    /// connection front end. Returns the bound address.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn listen(&mut self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let transport = TcpTransport::new(addr)?;
        match self.attach(Box::new(transport))? {
            BoundAddr::Tcp(local) => Ok(local),
            BoundAddr::InProcess => unreachable!("TCP transports always report an address"),
        }
    }

    /// Binds an event-loop front end on `addr` with `threads` loop
    /// threads and starts accepting NDJSON connections. Returns the
    /// bound address.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn listen_event(
        &mut self,
        addr: impl ToSocketAddrs,
        threads: usize,
    ) -> io::Result<SocketAddr> {
        let transport = crate::event::EventTransport::new(addr, threads)?;
        match self.attach(Box::new(transport))? {
            BoundAddr::Tcp(local) => Ok(local),
            BoundAddr::InProcess => unreachable!("event transports always report an address"),
        }
    }

    /// Runs one micro-batch on shard `shard` ([`Driver::Manual`] only):
    /// drain a fair share of the queue, adopt a newly published replica
    /// if the registry epoch moved, compute, answer. Returns `false`
    /// when the queue was empty (nothing to do).
    ///
    /// # Panics
    ///
    /// Panics when the service runs the threaded driver or `shard` is
    /// out of range.
    pub fn step_shard(&self, shard: usize) -> bool {
        assert!(
            !self.stepped_shards.is_empty(),
            "step_shard requires ServeConfig {{ driver: Driver::Manual }}"
        );
        let mut state = self.stepped_shards[shard]
            .lock()
            .expect("shard state poisoned");
        shard_try_step(&self.inner, &mut state)
    }

    /// Jobs admitted but not yet drained by any shard.
    pub fn queued(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("admission queue poisoned")
            .len()
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.inner.cfg.shards
    }

    /// Lineage version of the live model replica.
    pub fn model_version(&self) -> u64 {
        self.inner.registry.version()
    }

    /// Snapshot of the live checkpoint — what a shard restoring right
    /// now would serve from (tests restore independent replicas from
    /// it; operators save it for later `swap`s).
    pub fn current_checkpoint(&self) -> Arc<ModelCheckpoint> {
        self.inner.registry.current()
    }

    /// Validates and publishes a new checkpoint in-process (the wire
    /// `swap` message without the file round-trip). With `bump`, the
    /// checkpoint is re-stamped at `live_version + 1` first. Shards
    /// adopt it at their next micro-batch boundary; the response cache
    /// is flushed.
    ///
    /// # Errors
    ///
    /// Returns the rejection reason (checkpoint fails to restore,
    /// registry frozen, version does not advance).
    pub fn swap_checkpoint(&self, ckpt: ModelCheckpoint, bump: bool) -> Result<u64, String> {
        self.inner.install_checkpoint(ckpt, bump)
    }

    /// Runs one refresh cycle synchronously (label the replay buffer,
    /// fine-tune, publish) using the configured [`RefreshConfig`] or
    /// its default — the deterministic-test and script entry point; the
    /// background worker calls the same function on a timer.
    ///
    /// # Errors
    ///
    /// Returns the reason the refresh could not run or publish.
    pub fn refresh_now(&self) -> Result<RefreshOutcome, String> {
        let cfg = self.inner.cfg.refresh.clone().unwrap_or_default();
        let outcome = refresh_once(
            self.inner.engines.primary(),
            &self.inner.registry,
            &self.inner.replay,
            &cfg,
        )?;
        self.inner.flush_cache();
        self.inner.tracer.instant(
            "serve.refresh",
            "lifecycle",
            0,
            vec![
                ("version", ArgValue::U64(outcome.version)),
                ("trained_on", ArgValue::U64(outcome.trained_on as u64)),
            ],
        );
        Ok(outcome)
    }

    /// Served GEMM queries waiting in the replay buffer.
    pub fn replay_len(&self) -> usize {
        self.inner.replay.len()
    }

    /// The current stats snapshot (same content as the wire `stats`
    /// endpoint).
    pub fn stats(&self) -> ServeStats {
        self.inner.serve_stats(0)
    }

    /// The service tracer — `Clock`-driven, so captures replay
    /// byte-identically under a virtual clock.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Enable (starting a fresh capture) or disable span recording —
    /// the in-process equivalent of the admin `trace` wire message.
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracer.set_enabled(on);
    }

    /// Completed spans captured so far (does not drain).
    pub fn trace_records(&self) -> Vec<SpanRecord> {
        self.inner.tracer.records()
    }

    /// The capture rendered as Chrome `trace_event` JSON.
    pub fn trace_json(&self) -> String {
        self.inner.tracer.chrome_json()
    }

    /// Stops accepting, drains nothing further, joins every shard, and
    /// fails any still-queued request with a shutdown error.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for h in self.shards.drain(..) {
            h.join().expect("shard panicked");
        }
        // pending jobs: dropping the senders unblocks their receivers.
        // This must happen before transports stop — transports join
        // their connection threads, and a connection blocked on a
        // queued job that no shard will ever pick up would deadlock the
        // join. (`Inner::submit` answers inline once `stop` is set, so
        // nothing re-enters the queue after this clear.)
        self.inner
            .queue
            .lock()
            .expect("admission queue poisoned")
            .clear();
        for t in &mut self.transports {
            t.stop();
        }
        if let Some(h) = self.refresher.take() {
            h.join().expect("refresh worker panicked");
        }
    }
}

/// In-process handle submitting requests straight to the admission
/// queue — what the benches and tests drive, and the reference for what
/// the transport paths must reproduce byte-for-byte.
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// Submits one recommendation request and blocks for the response.
    pub fn recommend(&self, req: RecommendRequest) -> Response {
        self.submit(req).wait()
    }

    /// Submits without blocking — the pipelining path: enqueue a burst,
    /// then [`Pending::wait`] for the answers while shards coalesce the
    /// backlog into micro-batches.
    pub fn submit(&self, req: RecommendRequest) -> Pending {
        match self.inner.admit(req, None) {
            Ok(rx) => Pending(rx),
            Err(resp) => {
                // refused inline (shed / shutdown): a pre-answered
                // channel keeps the Pending contract unchanged
                let (tx, rx) = mpsc::channel();
                let _ = tx.send(*resp);
                Pending(rx)
            }
        }
    }

    /// Submits any protocol request (the admin surface is answered
    /// inline without occupying a shard).
    pub fn request(&self, req: Request) -> Response {
        match req {
            Request::Recommend(r) => self.recommend(r),
            Request::Admin(admin) => self.inner.handle_admin(&admin),
        }
    }
}

/// A response that has been admitted but not necessarily computed yet.
pub struct Pending(mpsc::Receiver<Response>);

impl Pending {
    /// Blocks until the shard answers.
    pub fn wait(self) -> Response {
        match self.0.recv() {
            Ok(resp) => resp,
            Err(_) => Response::Error {
                id: 0,
                message: "service shut down before answering".into(),
            },
        }
    }

    /// Non-blocking completion check — the stepped-driver companion to
    /// [`Pending::wait`]: `None` while a shard still owes the answer. A
    /// service that shut down before answering yields the same error
    /// response `wait` would.
    pub fn poll(&self) -> Option<Response> {
        match self.0.try_recv() {
            Ok(resp) => Some(resp),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Response::Error {
                id: 0,
                message: "service shut down before answering".into(),
            }),
        }
    }
}

// --------------------------------------------------------------------
// shard workers

/// One shard's mutable state: its index (which decides the decoder
/// flavor it serves), which registry epoch its replica was restored
/// under, the replica itself, and the reusable inference scratch that
/// makes the steady-state forward pass allocation-free.
struct ShardState {
    shard: usize,
    epoch: u64,
    model: Airchitect2,
    scratch: InferenceScratch,
}

impl ShardState {
    fn new(inner: &Inner, shard: usize) -> ShardState {
        ShardState {
            shard,
            epoch: inner.registry.epoch(),
            model: shard_replica(inner, shard),
            scratch: InferenceScratch::new(),
        }
    }
}

/// Restores a fresh replica from the live checkpoint and applies the
/// shard's configured decoder flavor. Quantization is deterministic
/// (and restores of a stored int8 blob are bit-exact), so every
/// replica of a given flavor answers bit-identically; an unlisted
/// shard clears any flavor the checkpoint carried, so per-shard config
/// — not the publisher — decides what precision each shard serves.
fn shard_replica(inner: &Inner, shard: usize) -> Airchitect2 {
    let mut model = Airchitect2::from_checkpoint(
        Arc::clone(inner.engines.primary()),
        &inner.registry.current(),
    )
    .expect("checkpoints are validated before they become live");
    if inner.cfg.quantized_shards.contains(&shard) {
        if !model.quantized_decoder() {
            model.quantize_decoder();
        }
    } else {
        model.clear_quantized_decoder();
    }
    model
}

/// One micro-batch step, shared verbatim by the threaded and the
/// manually stepped drivers: drain a fair share of the backlog, adopt a
/// newly published replica at this batch boundary, process. Returns
/// `false` when the queue was empty.
fn shard_try_step(inner: &Inner, state: &mut ShardState) -> bool {
    let tid = state.shard as u64;
    let tracing = inner.tracer.enabled();
    let t0 = if tracing { inner.clock.now_ns() } else { 0 };
    let batch: Vec<Job> = {
        let mut q = inner.queue.lock().expect("admission queue poisoned");
        if q.is_empty() {
            return false;
        }
        // a fair share of the backlog: deep queues still coalesce
        // into full micro-batches, but a light queue is spread over
        // idle shards instead of being drained whole by the first
        // one awake (which would serialize compute behind it)
        let take = q
            .len()
            .div_ceil(inner.cfg.shards)
            .clamp(1, inner.cfg.max_batch);
        q.drain(..take).collect()
    };
    inner.metrics.queue_depth_add(-(batch.len() as i64));
    // more work may remain; pass the baton before computing
    inner.available.notify_one();
    // the per-shard batch tree: serve.batch wraps assembly, replica
    // adoption and the whole process_batch body on this shard's lane
    let batch_span = if tracing {
        inner.tracer.alloc_id()
    } else {
        NO_PARENT
    };
    if tracing {
        inner.tracer.record_span(
            "serve.batch_assemble",
            "serve",
            tid,
            batch_span,
            t0,
            inner.clock.now_ns(),
            vec![("size", ArgValue::U64(batch.len() as u64))],
        );
    }
    // micro-batch boundary: adopt a newly published replica before
    // computing, so everything drained after a swap is answered by
    // a model freshly restored from the published checkpoint
    let now = inner.registry.epoch();
    if now != state.epoch {
        let mut sp = inner
            .tracer
            .span("serve.adopt_replica", "lifecycle", tid, batch_span);
        sp.arg("epoch", now);
        state.model = shard_replica(inner, state.shard);
        state.epoch = now;
    }
    process_batch(
        inner,
        &state.model,
        &mut state.scratch,
        state.epoch,
        state.shard,
        batch_span,
        batch,
    );
    if tracing {
        inner.tracer.record_span_id(
            batch_span,
            "serve.batch",
            "serve",
            tid,
            NO_PARENT,
            t0,
            inner.clock.now_ns(),
            vec![("shard", ArgValue::U64(tid))],
        );
    }
    true
}

fn shard_main(inner: &Inner, shard: usize) {
    let mut state = ShardState::new(inner, shard);
    loop {
        {
            let mut q = inner.queue.lock().expect("admission queue poisoned");
            loop {
                if !q.is_empty() {
                    break;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.available.wait(q).expect("admission queue poisoned");
            }
        }
        // the lock is released between the wakeup and the drain; a
        // sibling shard may win the race, in which case this step is a
        // cheap no-op and the loop re-waits
        shard_try_step(inner, &mut state);
    }
}

/// Writes the per-request span pair at completion: the reconstructed
/// `serve.queue_wait` child (admission → batch drain) and the root
/// `serve.request` span (admission → response sent) under the id
/// allocated at admission.
fn finish_request(inner: &Inner, tid: u64, job: &Job, drained_ns: u64, end_ns: u64, outcome: &str) {
    if job.span_id == NO_PARENT || !inner.tracer.enabled() {
        return;
    }
    inner.tracer.record_span(
        "serve.queue_wait",
        "serve",
        tid,
        job.span_id,
        job.admitted_ns,
        drained_ns,
        Vec::new(),
    );
    inner.tracer.record_span_id(
        job.span_id,
        "serve.request",
        "serve",
        tid,
        NO_PARENT,
        job.admitted_ns,
        end_ns,
        vec![
            ("req", ArgValue::U64(job.req.id)),
            ("outcome", ArgValue::Str(outcome.to_string())),
        ],
    );
}

fn process_batch(
    inner: &Inner,
    model: &Airchitect2,
    scratch: &mut InferenceScratch,
    epoch: u64,
    shard: usize,
    batch_span: u64,
    batch: Vec<Job>,
) {
    let now_ns = inner.clock.now_ns();
    let tid = shard as u64;
    let tracing = inner.tracer.enabled();
    let sm = inner.metrics.shard(shard);
    let int8 = model.quantized_decoder();
    sm.record_batch(batch.len());
    let mut compute: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        if let Some(deadline_ns) = job.deadline_ns {
            if now_ns >= deadline_ns {
                sm.record_deadline_expired();
                let resp = Response::Error {
                    id: job.req.id,
                    message: format!(
                        "deadline of {} ms expired before a shard picked the request up",
                        job.req.deadline_ms.unwrap_or(0)
                    ),
                };
                job.answer(resp);
                finish_request(
                    inner,
                    tid,
                    &job,
                    now_ns,
                    inner.clock.now_ns(),
                    "deadline_expired",
                );
                continue;
            }
        }
        if let Some(key) = &job.key {
            // the epoch guard on reads mirrors the one on inserts: in
            // the window between a publish and its cache flush, a shard
            // that already adopted the new replica must not serve
            // entries the outgoing replica computed
            let mut lookup = inner
                .tracer
                .span("serve.cache_lookup", "serve", tid, job.span_id);
            let hit = {
                let mut cache = inner.cache.lock().expect("cache poisoned");
                if cache.epoch == epoch {
                    cache.lru.get(key)
                } else {
                    None
                }
            };
            lookup.arg("hit", hit.is_some());
            drop(lookup);
            if let Some(mut rec) = hit {
                rec.id = job.req.id;
                let end_ns = inner.clock.now_ns();
                sm.record_served(
                    end_ns.saturating_sub(job.admitted_ns),
                    true,
                    &rec.backend,
                    int8,
                );
                inner.record_pipeline_served(job.req.pipeline.as_deref());
                let send_start = if tracing { inner.clock.now_ns() } else { 0 };
                job.answer(Response::Recommendation(rec));
                if tracing {
                    let sent = inner.clock.now_ns();
                    if job.span_id != NO_PARENT {
                        inner.tracer.record_span(
                            "serve.respond",
                            "serve",
                            tid,
                            job.span_id,
                            send_start,
                            sent,
                            Vec::new(),
                        );
                    }
                    finish_request(inner, tid, &job, now_ns, sent, "cache_hit");
                }
                continue;
            }
        }
        compute.push(job);
    }
    if compute.is_empty() {
        return;
    }
    let reqs: Vec<RecommendRequest> = compute.iter().map(|j| j.req.clone()).collect();
    let mut rec_span = inner
        .tracer
        .span("serve.recommend", "serve", tid, batch_span);
    rec_span.arg("n", reqs.len());
    rec_span.arg("flavor", if int8 { "int8" } else { "f32" });
    let responses = {
        // kernel- and model-level spans (tensor.gemm, core.forward …)
        // attach under serve.recommend via the thread-local tracer
        let _scope = ai2_obs::scoped(&inner.tracer, rec_span.id(), tid);
        recommend_batch_in(model, &inner.engines, &inner.cfg.pipelines, &reqs, scratch)
    };
    drop(rec_span);
    for (job, resp) in compute.into_iter().zip(responses) {
        let outcome = match &resp {
            Response::Recommendation(rec) => {
                if let Some(key) = &job.key {
                    let mut cache = inner.cache.lock().expect("cache poisoned");
                    // an old-replica batch straggling past a swap must
                    // not publish outgoing-model answers post-flush
                    if cache.epoch == epoch {
                        cache.lru.insert(key.clone(), rec.clone());
                    }
                }
                // feed the refresh loop: computed GEMM answers are the
                // queries the next fine-tune can learn from (cache hits
                // and model folds carry no fresh per-layer signal)
                if let Some(input) = job.req.query.as_dse_input() {
                    inner.replay.record(input, rec.point);
                }
                sm.record_served(
                    inner.clock.now_ns().saturating_sub(job.admitted_ns),
                    false,
                    &rec.backend,
                    int8,
                );
                inner.record_pipeline_served(job.req.pipeline.as_deref());
                "computed"
            }
            Response::Error { .. } => {
                sm.record_error();
                "error"
            }
            Response::Stats(_) | Response::Admin(_) | Response::Pipelines { .. } => {
                unreachable!("stats/admin never route through shards")
            }
        };
        let send_start = if tracing { inner.clock.now_ns() } else { 0 };
        job.answer(resp);
        if tracing {
            let sent = inner.clock.now_ns();
            if job.span_id != NO_PARENT {
                inner.tracer.record_span(
                    "serve.respond",
                    "serve",
                    tid,
                    job.span_id,
                    send_start,
                    sent,
                    Vec::new(),
                );
            }
            finish_request(inner, tid, &job, now_ns, sent, outcome);
        }
    }
}

// --------------------------------------------------------------------
// background refresh worker

/// Periodically folds the replay buffer back into the model. Errors
/// (buffer not full enough yet, registry frozen, lost publish race) are
/// expected between ticks and simply retried at the next interval.
fn refresh_main(inner: &Inner) {
    let cfg = inner
        .cfg
        .refresh
        .clone()
        .expect("refresh worker spawned only when configured");
    let mut last = Instant::now();
    let mut last_skip_reason = String::new();
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
        if last.elapsed() < cfg.interval {
            continue;
        }
        last = Instant::now();
        match refresh_once(
            inner.engines.primary(),
            &inner.registry,
            &inner.replay,
            &cfg,
        ) {
            Ok(outcome) => {
                inner.flush_cache();
                inner.tracer.instant(
                    "serve.refresh",
                    "lifecycle",
                    0,
                    vec![("version", ArgValue::U64(outcome.version))],
                );
                last_skip_reason.clear();
                eprintln!(
                    "[serve] refresh published v{} ({} replayed, {} trained on, \
                     disagreement {:.4} → {:.4})",
                    outcome.version,
                    outcome.replayed,
                    outcome.trained_on,
                    outcome.disagreement_before,
                    outcome.disagreement_after
                );
            }
            // expected between ticks (buffer filling, frozen registry)
            // but surfaced on every change of reason: a loop that
            // silently never publishes is indistinguishable from a
            // healthy idle one otherwise
            Err(reason) => {
                if reason != last_skip_reason {
                    eprintln!("[serve] refresh skipped: {reason}");
                    last_skip_reason = reason;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::protocol::{encode_line, Query};
    use crate::transport::TcpClient;
    use ai2_dse::{Budget, DseDataset, DseTask, GenerateConfig, Objective};
    use airchitect::train::TrainConfig;
    use airchitect::ModelConfig;
    use std::io::{BufRead, BufReader, Write};

    fn trained_checkpoint() -> (Arc<EvalEngine>, ModelCheckpoint) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 50,
                seed: 33,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task);
        let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        (engine, model.checkpoint())
    }

    fn gemm_req(id: u64, m: u64) -> RecommendRequest {
        RecommendRequest {
            id,
            query: Query::Gemm {
                m,
                n: 300,
                k: 150,
                dataflow: "ws".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        }
    }

    #[test]
    fn service_answers_and_counts() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
            engine,
            ckpt,
        );
        let client = service.client();
        for i in 0..6 {
            let resp = client.recommend(gemm_req(i, 16 + i));
            assert!(
                matches!(resp, Response::Recommendation(ref r) if r.id == i),
                "unexpected {resp:?}"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.served, 6);
        assert_eq!(stats.errors, 0);
        assert!(stats.p50_us.expect("warm percentiles") > 0.0);
        service.shutdown();
    }

    #[test]
    fn cold_server_stats_round_trip_as_legal_json() {
        // before any request is served the latency window is empty; the
        // percentiles must cross the wire as `null` (never the bare
        // `NaN` literal, which is not legal JSON) and decode back
        let (engine, ckpt) = trained_checkpoint();
        let mut service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let addr = service.listen("127.0.0.1:0").unwrap();
        let mut tcp = TcpClient::connect(addr).unwrap();

        let line = encode_line(&Response::Stats(service.stats()));
        assert!(!line.contains("NaN"), "NaN leaked onto the wire: {line}");
        assert!(line.contains("\"p50_us\":null"), "expected null: {line}");

        let resp = tcp
            .send(&Request::Admin(AdminRequest::Stats { id: 4 }))
            .unwrap();
        let Response::Stats(s) = resp else {
            panic!("expected stats, got {resp:?}");
        };
        assert_eq!(s.id, 4);
        assert_eq!(s.served, 0);
        assert_eq!((s.p50_us, s.p95_us, s.p99_us), (None, None, None));
        service.shutdown();
    }

    #[test]
    fn response_cache_never_mixes_backends() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let client = service.client();
        let mut sys = gemm_req(1, 64);
        sys.backend = Some("systolic".into());
        let ana = gemm_req(2, 64); // same canonical GEMM, analytic backend
        let first_sys = client.recommend(sys.clone());
        let first_ana = client.recommend(ana.clone());
        // different backends: the second answer must NOT come from the
        // first one's cache slot
        assert_eq!(service.stats().cache_hits, 0);
        let (Response::Recommendation(s), Response::Recommendation(a)) = (&first_sys, &first_ana)
        else {
            panic!("expected recommendations: {first_sys:?} / {first_ana:?}");
        };
        assert_eq!(s.backend, "systolic");
        assert_eq!(a.backend, "analytic");
        assert_ne!(s.cost.to_bits(), a.cost.to_bits());
        // repeating each query hits its own per-backend slot
        let mut sys2 = sys.clone();
        sys2.id = 3;
        let again = client.recommend(sys2);
        assert_eq!(service.stats().cache_hits, 1);
        let Response::Recommendation(s2) = &again else {
            panic!("expected recommendation: {again:?}");
        };
        assert_eq!(s2.cost.to_bits(), s.cost.to_bits());
        assert_eq!(s2.backend, "systolic");
        service.shutdown();
    }

    #[test]
    fn repeated_queries_hit_the_response_cache() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let client = service.client();
        let first = client.recommend(gemm_req(1, 64));
        let second = client.recommend(gemm_req(2, 64)); // same canonical query
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        // identical content modulo the echoed id
        let (Response::Recommendation(a), Response::Recommendation(b)) = (&first, &second) else {
            panic!("expected recommendations");
        };
        assert_eq!(a.point, b.point);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(b.id, 2);
        service.shutdown();
    }

    fn staged_pipelines() -> PipelineSet {
        use ai2_dse::pipeline::{RefineMethod, StageCfg};
        PipelineSet::with(&[ai2_dse::PipelineCfg {
            name: "staged".into(),
            stages: vec![
                StageCfg::Predict { backend: None },
                StageCfg::Refine {
                    method: RefineMethod::Annealing,
                    budget: 16,
                    seed: 3,
                    backend: None,
                },
                StageCfg::Verify {
                    k: 2,
                    backend: ai2_dse::BackendId::Systolic,
                },
            ],
        }])
        .unwrap()
    }

    #[test]
    fn pipelines_are_listed_counted_and_cached_separately() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(
            ServeConfig {
                pipelines: staged_pipelines(),
                ..ServeConfig::default()
            },
            engine,
            ckpt,
        );
        let client = service.client();

        // the admin listing names every compiled pipeline with its stages
        let listing = client.request(Request::Admin(AdminRequest::Pipelines { id: 11 }));
        let Response::Pipelines { id: 11, pipelines } = &listing else {
            panic!("expected pipelines listing, got {listing:?}");
        };
        assert_eq!(
            pipelines
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>(),
            ["default", "staged"]
        );
        assert_eq!(pipelines[1].stages, ["predict", "refine", "verify"]);

        // same canonical GEMM through both pipelines: two distinct cache
        // identities, answered and counted separately
        let default_resp = client.recommend(gemm_req(1, 64));
        let mut staged_req = gemm_req(2, 64);
        staged_req.pipeline = Some("staged".into());
        let staged_resp = client.recommend(staged_req.clone());
        assert_eq!(
            service.stats().cache_hits,
            0,
            "staged answers must not come from the default pipeline's slot"
        );
        let (Response::Recommendation(d), Response::Recommendation(s)) =
            (&default_resp, &staged_resp)
        else {
            panic!("expected recommendations: {default_resp:?} / {staged_resp:?}");
        };
        assert_eq!(d.backend, "analytic");
        assert_eq!(s.backend, "systolic", "verify stage re-scored the top-k");

        // repeating the staged query hits its own cache slot
        let mut again = staged_req.clone();
        again.id = 3;
        let hit = client.recommend(again);
        assert_eq!(service.stats().cache_hits, 1);
        let Response::Recommendation(h) = &hit else {
            panic!("expected recommendation: {hit:?}");
        };
        assert_eq!(h.cost.to_bits(), s.cost.to_bits());

        // per-pipeline served counts (cache hits included)
        let stats = service.stats();
        let count = |name: &str| {
            stats
                .pipelines
                .iter()
                .find(|p| p.name == name)
                .map(|p| p.served)
        };
        assert_eq!(count("default"), Some(1));
        assert_eq!(count("staged"), Some(2));

        // an unknown pipeline answers an error and counts nowhere
        let mut bad = gemm_req(4, 64);
        bad.pipeline = Some("warp".into());
        let err = client.recommend(bad);
        assert!(
            matches!(&err, Response::Error { id: 4, message } if message.contains("unknown pipeline")),
            "unexpected {err:?}"
        );
        assert_eq!(service.stats().errors, 1);
        service.shutdown();
    }

    #[test]
    fn zero_deadline_requests_expire() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let client = service.client();
        let mut req = gemm_req(42, 32);
        req.deadline_ms = Some(0);
        let resp = client.recommend(req);
        assert!(
            matches!(resp, Response::Error { id: 42, ref message } if message.contains("deadline")),
            "unexpected {resp:?}"
        );
        assert_eq!(service.stats().deadline_expired, 1);
        service.shutdown();
    }

    #[test]
    fn hostile_inputs_do_not_kill_the_service() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(
            ServeConfig {
                shards: 1, // a single shard: one panic would deadlock everything
                ..ServeConfig::default()
            },
            engine,
            ckpt,
        );
        let client = service.client();
        // zero-dimension GEMM: error response, not a shard panic
        let mut zero = gemm_req(1, 10);
        zero.query = Query::Gemm {
            m: 0,
            n: 1,
            k: 1,
            dataflow: "ws".into(),
        };
        let resp = client.recommend(zero);
        assert!(
            matches!(resp, Response::Error { id: 1, ref message } if message.contains("invalid")),
            "unexpected {resp:?}"
        );
        // absurd deadline: no nanosecond overflow, treated as unbounded
        let mut forever = gemm_req(2, 20);
        forever.deadline_ms = Some(u64::MAX);
        assert!(matches!(
            client.recommend(forever),
            Response::Recommendation(_)
        ));
        // the lone shard is still alive and answering
        assert!(matches!(
            client.recommend(gemm_req(3, 30)),
            Response::Recommendation(_)
        ));
        service.shutdown();
    }

    /// A second, differently-seeded trained checkpoint over the same
    /// task (predicts differently from `trained_checkpoint`).
    fn other_checkpoint(engine: &Arc<EvalEngine>) -> ModelCheckpoint {
        let ds = DseDataset::generate(
            engine.task(),
            &GenerateConfig {
                num_samples: 60,
                seed: 77,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let mut model = Airchitect2::with_engine(
            &ModelConfig {
                seed: 99,
                ..ModelConfig::tiny()
            },
            Arc::clone(engine),
            &ds,
        );
        model.fit(&ds, &TrainConfig::quick());
        model.checkpoint()
    }

    #[test]
    fn swap_adopts_the_new_replica_and_flushes_the_cache() {
        let (engine, ckpt) = trained_checkpoint();
        let service =
            RecommendService::start(ServeConfig::default(), Arc::clone(&engine), ckpt.clone());
        let client = service.client();
        assert_eq!(service.model_version(), 0);

        // warm the cache on the seed replica
        let before = client.recommend(gemm_req(1, 64));
        let Response::Recommendation(before) = &before else {
            panic!("expected recommendation: {before:?}");
        };

        // publish a different model at version 1
        let next = other_checkpoint(&engine).with_version(1);
        let version = service.swap_checkpoint(next.clone(), false).unwrap();
        assert_eq!(version, 1);
        assert_eq!(service.model_version(), 1);
        assert_eq!(service.stats().swaps, 1);

        // the same canonical query must now be answered by the new
        // replica, not the stale cache slot
        let after = client.recommend(gemm_req(2, 64));
        let Response::Recommendation(after) = &after else {
            panic!("expected recommendation: {after:?}");
        };
        assert_eq!(
            service.stats().cache_hits,
            0,
            "swap must flush the response cache"
        );
        let replica = Airchitect2::from_checkpoint(Arc::clone(&engine), &next).unwrap();
        let input = gemm_req(2, 64).query.as_dse_input().unwrap();
        let expect = replica.predict(std::slice::from_ref(&input))[0];
        assert_eq!(
            after.point, expect,
            "post-swap answers come from the new replica"
        );
        // (the two models may happen to agree on some inputs; the cache
        // assertion above is the load-bearing one)
        let _ = before;
        service.shutdown();
    }

    #[test]
    fn quantized_shards_serve_the_int8_flavor() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(
            ServeConfig {
                shards: 1,
                quantized_shards: vec![0],
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            Arc::clone(&engine),
            ckpt.clone(),
        );
        let client = service.client();
        // reference: an independent replica under the same deterministic
        // quantization — the shard's answers must match it exactly
        let mut replica = Airchitect2::from_checkpoint(Arc::clone(&engine), &ckpt).unwrap();
        replica.quantize_decoder();
        for i in 0..5 {
            let req = gemm_req(i, 16 + 9 * i);
            let input = req.query.as_dse_input().unwrap();
            let expect = replica.predict(std::slice::from_ref(&input))[0];
            let resp = client.recommend(req);
            let Response::Recommendation(rec) = &resp else {
                panic!("expected recommendation: {resp:?}");
            };
            assert_eq!(rec.point, expect, "request {i}");
        }
        let stats = service.stats();
        assert_eq!(stats.quantized_shards, 1);
        assert_eq!(stats.kernel, ai2_tensor::kernel::active().name());

        // a swap re-applies the shard's flavor to the incoming replica
        let next = other_checkpoint(&engine).with_version(1);
        service.swap_checkpoint(next.clone(), false).unwrap();
        let mut next_replica = Airchitect2::from_checkpoint(Arc::clone(&engine), &next).unwrap();
        next_replica.quantize_decoder();
        let req = gemm_req(9, 77);
        let input = req.query.as_dse_input().unwrap();
        let expect = next_replica.predict(std::slice::from_ref(&input))[0];
        let resp = client.recommend(req);
        let Response::Recommendation(rec) = &resp else {
            panic!("expected recommendation: {resp:?}");
        };
        assert_eq!(rec.point, expect, "post-swap answers stay quantized");
        service.shutdown();
    }

    #[test]
    fn published_flavor_respects_per_shard_config() {
        let (engine, ckpt) = trained_checkpoint();
        // a checkpoint *carrying* an int8 blob handed to an f32-only
        // service: the unlisted shard must clear the flavor and answer
        // in full precision — per-shard config, not the publisher,
        // decides serving precision
        let flavored = ckpt.clone().quantized();
        assert!(flavored.is_quantized());
        let service = RecommendService::start(
            ServeConfig {
                shards: 1,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            Arc::clone(&engine),
            flavored,
        );
        let f32_replica = Airchitect2::from_checkpoint(Arc::clone(&engine), &ckpt).unwrap();
        let req = gemm_req(1, 64);
        let input = req.query.as_dse_input().unwrap();
        let expect = f32_replica.predict(std::slice::from_ref(&input))[0];
        let resp = service.client().recommend(req);
        let Response::Recommendation(rec) = &resp else {
            panic!("expected recommendation: {resp:?}");
        };
        assert_eq!(rec.point, expect, "flavor must not leak onto an f32 shard");
        assert_eq!(service.stats().quantized_shards, 0);
        service.shutdown();
    }

    #[test]
    fn stale_version_and_frozen_swaps_are_rejected() {
        let (engine, ckpt) = trained_checkpoint();
        let service =
            RecommendService::start(ServeConfig::default(), Arc::clone(&engine), ckpt.clone());
        // version 0 does not advance version 0
        let err = service.swap_checkpoint(ckpt.clone(), false).unwrap_err();
        assert!(err.contains("does not advance"), "{err}");
        // bump overrides: re-stamps at live+1
        assert_eq!(service.swap_checkpoint(ckpt.clone(), true).unwrap(), 1);
        // freeze gates further publishes
        let client = service.client();
        let ack = client.request(Request::Admin(AdminRequest::Freeze {
            id: 5,
            frozen: true,
        }));
        assert!(
            matches!(&ack, Response::Admin(a) if a.frozen && a.id == 5 && a.op == "freeze"),
            "unexpected {ack:?}"
        );
        assert!(service.stats().frozen);
        let err = service.swap_checkpoint(ckpt.clone(), true).unwrap_err();
        assert!(err.contains("frozen"), "{err}");
        // serving is unaffected by the freeze
        assert!(matches!(
            client.recommend(gemm_req(9, 40)),
            Response::Recommendation(_)
        ));
        service.shutdown();
    }

    #[test]
    fn swap_and_freeze_work_over_tcp() {
        let (engine, ckpt) = trained_checkpoint();
        let mut service =
            RecommendService::start(ServeConfig::default(), Arc::clone(&engine), ckpt.clone());
        let addr = service.listen("127.0.0.1:0").unwrap();
        let mut tcp = TcpClient::connect(addr).unwrap();

        let dir = std::env::temp_dir().join("ai2_serve_swap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.json");
        other_checkpoint(&engine)
            .with_version(3)
            .save(&path)
            .unwrap();

        // a missing file answers an error, not a dead connection
        let bad = tcp
            .send(&Request::Admin(AdminRequest::Swap {
                id: 1,
                path: dir.join("nope.json").to_string_lossy().into_owned(),
                bump: None,
            }))
            .unwrap();
        assert!(
            matches!(&bad, Response::Error { id: 1, message } if message.contains("swap rejected")),
            "unexpected {bad:?}"
        );

        let ack = tcp
            .send(&Request::Admin(AdminRequest::Swap {
                id: 2,
                path: path.to_string_lossy().into_owned(),
                bump: None,
            }))
            .unwrap();
        assert!(
            matches!(&ack, Response::Admin(a) if a.id == 2 && a.op == "swap" && a.model_version == 3),
            "unexpected {ack:?}"
        );
        let stats = tcp
            .send(&Request::Admin(AdminRequest::Stats { id: 3 }))
            .unwrap();
        assert!(
            matches!(&stats, Response::Stats(s) if s.model_version == 3 && s.swaps == 1),
            "unexpected {stats:?}"
        );
        // queries still answer across the connection that swapped
        let resp = tcp.send(&Request::Recommend(gemm_req(4, 33))).unwrap();
        assert!(matches!(resp, Response::Recommendation(_)));
        std::fs::remove_file(path).ok();
        service.shutdown();
    }

    #[test]
    fn served_gemm_queries_land_in_the_replay_buffer() {
        let (engine, ckpt) = trained_checkpoint();
        let service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let client = service.client();
        for i in 0..5 {
            client.recommend(gemm_req(i, 16 + i));
        }
        // a cache hit must not re-record
        client.recommend(gemm_req(9, 16));
        assert_eq!(service.replay_len(), 5);
        assert_eq!(service.stats().replay_len, 5);
        service.shutdown();
    }

    #[test]
    fn slow_writers_are_not_torn_by_read_timeouts() {
        let (engine, ckpt) = trained_checkpoint();
        let mut service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let addr = service.listen("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // write the request in two halves with a pause longer than the
        // connection read timeout; the fragment must survive the timeout
        let wire = encode_line(&Request::Recommend(gemm_req(7, 55))) + "\n";
        let (head, tail) = wire.split_at(wire.len() / 2);
        writer.write_all(head.as_bytes()).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(450));
        writer.write_all(tail.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = decode_line(&line).unwrap();
        assert!(
            matches!(resp, Response::Recommendation(ref r) if r.id == 7),
            "torn request: {resp:?}"
        );
        service.shutdown();
    }

    #[test]
    fn tcp_roundtrip_matches_in_process_answers() {
        let (engine, ckpt) = trained_checkpoint();
        let mut service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let addr = service.listen("127.0.0.1:0").unwrap();
        let mut tcp = TcpClient::connect(addr).unwrap();
        let req = gemm_req(5, 48);
        let over_wire = tcp.send(&Request::Recommend(req.clone())).unwrap();
        let in_process = service.client().recommend(gemm_req(6, 48));
        let (Response::Recommendation(a), Response::Recommendation(b)) = (&over_wire, &in_process)
        else {
            panic!("expected recommendations: {over_wire:?} / {in_process:?}");
        };
        assert_eq!(a.point, b.point);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        let stats = tcp
            .send(&Request::Admin(AdminRequest::Stats { id: 9 }))
            .unwrap();
        assert!(matches!(stats, Response::Stats(ref s) if s.id == 9 && s.served == 2));
        // malformed lines answer an error instead of killing the link
        tcp.writer.write_all(b"{not json}\n").unwrap();
        let mut line = String::new();
        tcp.reader.read_line(&mut line).unwrap();
        let garbage: Response = decode_line(&line).unwrap();
        assert!(matches!(garbage, Response::Error { .. }));
        service.shutdown();
    }

    // ----------------------------------------------------------------
    // manually stepped driver

    fn manual_service() -> (RecommendService, Arc<VirtualClock>) {
        let (engine, ckpt) = trained_checkpoint();
        let clock = Arc::new(VirtualClock::new());
        let service = RecommendService::start_with(
            ServeConfig {
                shards: 2,
                driver: Driver::Manual,
                ..ServeConfig::default()
            },
            engine,
            ckpt,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (service, clock)
    }

    #[test]
    fn stepped_driver_answers_bit_identically_to_threaded() {
        let (engine, ckpt) = trained_checkpoint();
        let threaded =
            RecommendService::start(ServeConfig::default(), Arc::clone(&engine), ckpt.clone());
        let expected: Vec<Response> = (0..4)
            .map(|i| threaded.client().recommend(gemm_req(i, 20 + 7 * i)))
            .collect();
        threaded.shutdown();

        let (service, _clock) = manual_service();
        let client = service.client();
        let pendings: Vec<Pending> = (0..4)
            .map(|i| client.submit(gemm_req(i, 20 + 7 * i)))
            .collect();
        // nothing answers until a step runs
        assert!(pendings.iter().all(|p| p.poll().is_none()));
        let mut guard = 0;
        while service.queued() > 0 {
            service.step_shard(guard % service.shards());
            guard += 1;
            assert!(guard < 100, "stepping never drained the queue");
        }
        for (pending, expect) in pendings.iter().zip(&expected) {
            let got = pending.poll().expect("answered after stepping");
            let (Response::Recommendation(a), Response::Recommendation(b)) = (&got, expect) else {
                panic!("expected recommendations: {got:?} / {expect:?}");
            };
            assert_eq!(a.point, b.point);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
        // an empty queue steps as a no-op
        assert!(!service.step_shard(0));
        service.shutdown();
    }

    #[test]
    fn stepped_deadlines_expire_only_when_the_virtual_clock_passes_them() {
        let (service, clock) = manual_service();
        let client = service.client();
        let mut before = gemm_req(1, 31);
        before.deadline_ms = Some(5);
        let mut after = gemm_req(2, 33);
        after.deadline_ms = Some(5);

        let p1 = client.submit(before);
        service.step_shard(0);
        assert!(
            matches!(p1.poll(), Some(Response::Recommendation(_))),
            "clock has not moved: the deadline cannot have expired"
        );

        let p2 = client.submit(after);
        clock.advance_ms(6); // past the 5 ms deadline
        service.step_shard(0);
        let got = p2.poll().expect("answered");
        assert!(
            matches!(got, Response::Error { id: 2, ref message } if message.contains("deadline")),
            "unexpected {got:?}"
        );
        assert_eq!(service.stats().deadline_expired, 1);
        service.shutdown();
    }

    // ----------------------------------------------------------------
    // tracing

    #[test]
    fn tracing_captures_the_request_tree() {
        let (service, _clock) = manual_service();
        service.set_tracing(true);
        let client = service.client();

        let p1 = client.submit(gemm_req(1, 64));
        assert_eq!(service.stats().queue_depth, 1, "admitted but not drained");
        while service.queued() > 0 {
            service.step_shard(0);
        }
        let p2 = client.submit(gemm_req(2, 64)); // same canonical query → cache hit
        while service.queued() > 0 {
            service.step_shard(0);
        }
        assert!(matches!(p1.poll(), Some(Response::Recommendation(_))));
        assert!(matches!(p2.poll(), Some(Response::Recommendation(_))));

        let stats = service.stats();
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.batch_size_p50.expect("batches ran") >= 1.0);
        assert!(stats.batch_size_p95.is_some());

        let records = service.trace_records();
        let named = |n: &str| records.iter().filter(|r| r.name == n).collect::<Vec<_>>();
        let str_arg = |r: &SpanRecord, key: &str| {
            r.args.iter().find_map(|(k, v)| match v {
                ArgValue::Str(s) if *k == key => Some(s.clone()),
                _ => None,
            })
        };

        // one request root per admission, tagged with its outcome
        let requests = named("serve.request");
        assert_eq!(requests.len(), 2, "{records:#?}");
        let mut outcomes: Vec<String> = requests
            .iter()
            .filter_map(|r| str_arg(r, "outcome"))
            .collect();
        outcomes.sort();
        assert_eq!(outcomes, ["cache_hit", "computed"]);
        for root in &requests {
            assert_eq!(root.parent, ai2_obs::NO_PARENT);
            assert!(
                records
                    .iter()
                    .any(|r| r.name == "serve.queue_wait" && r.parent == root.id),
                "request root without a queue_wait child"
            );
        }

        // the computed request went through the model under a
        // serve.recommend span, with the kernel sections nested inside
        let recommend = named("serve.recommend");
        assert_eq!(recommend.len(), 1);
        assert!(records
            .iter()
            .any(|r| r.name == "core.predict" && r.parent == recommend[0].id));
        assert!(!named("tensor.gemm").is_empty() || !named("tensor.gemm_tn").is_empty());

        // every drained batch is a root with an assembly child
        let batches = named("serve.batch");
        assert!(!batches.is_empty());
        for batch in &batches {
            assert_eq!(batch.parent, ai2_obs::NO_PARENT);
            assert!(records
                .iter()
                .any(|r| r.name == "serve.batch_assemble" && r.parent == batch.id));
        }
        assert!(records
            .iter()
            .any(|r| r.name == "serve.cache_lookup" && !r.instant));

        // the export is the Chrome trace_event shape, one event per line
        let json = service.trace_json();
        assert!(json.starts_with("{\"traceEvents\":[\n"), "{json}");
        assert!(json.contains("\"serve.request\""));
        assert!(json.ends_with("}\n"), "{json}");
        service.shutdown();
    }

    #[test]
    fn trace_admin_toggles_and_dumps_over_the_wire() {
        let (engine, ckpt) = trained_checkpoint();
        let mut service = RecommendService::start(ServeConfig::default(), engine, ckpt);
        let addr = service.listen("127.0.0.1:0").unwrap();
        let mut tcp = TcpClient::connect(addr).unwrap();

        let ack = tcp
            .send(&Request::Admin(AdminRequest::Trace {
                id: 1,
                enable: Some(true),
                path: None,
            }))
            .unwrap();
        assert!(
            matches!(&ack, Response::Admin(a) if a.id == 1 && a.op == "trace"),
            "unexpected {ack:?}"
        );

        let resp = tcp.send(&Request::Recommend(gemm_req(2, 48))).unwrap();
        assert!(matches!(resp, Response::Recommendation(_)));
        // the response reaches the client before the shard records the
        // request's root span (the span covers the response write); wait
        // for it so the dump below is complete
        for _ in 0..200 {
            if service
                .trace_records()
                .iter()
                .any(|r| r.name == "serve.request")
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        let dir = std::env::temp_dir().join("ai2_serve_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let ack = tcp
            .send(&Request::Admin(AdminRequest::Trace {
                id: 3,
                enable: None,
                path: Some(path.to_string_lossy().into_owned()),
            }))
            .unwrap();
        assert!(matches!(&ack, Response::Admin(a) if a.id == 3), "{ack:?}");
        let dumped = std::fs::read_to_string(&path).unwrap();
        assert!(dumped.starts_with("{\"traceEvents\":["), "{dumped}");
        assert!(dumped.contains("\"serve.request\""), "{dumped}");

        // an unwritable path answers an error, not a dead connection
        let bad = tcp
            .send(&Request::Admin(AdminRequest::Trace {
                id: 4,
                enable: None,
                path: Some(
                    dir.join("no/such/dir/t.json")
                        .to_string_lossy()
                        .into_owned(),
                ),
            }))
            .unwrap();
        assert!(
            matches!(&bad, Response::Error { id: 4, message } if message.contains("trace rejected")),
            "unexpected {bad:?}"
        );
        service.shutdown();
    }
}
