//! The live-model registry: one atomically swappable checkpoint slot
//! that worker shards, admin handlers, and the background refresh
//! worker all coordinate through.
//!
//! # Swap semantics
//!
//! * [`ModelRegistry::publish`] installs a new checkpoint and bumps the
//!   **epoch** (a monotonically increasing swap counter). Publishing is
//!   atomic: a reader sees either the old replica or the new one,
//!   never a mix.
//! * Worker shards compare the epoch at every micro-batch boundary and
//!   rebuild their replica from [`ModelRegistry::current`] when it
//!   moved. A swap therefore never interrupts an in-flight batch — zero
//!   requests are dropped — and every post-swap batch is answered by a
//!   model freshly restored from the published checkpoint, which is
//!   bit-identical to any other replica restored from the same file.
//! * Lineage versions are **monotonic**: a publish whose checkpoint
//!   version is not strictly greater than the live one is rejected
//!   ([`PublishError::NotNewer`]) — a stale refresh result or an
//!   operator pointing `swap` at an old file must not silently roll the
//!   fleet backward. Operators that *want* to re-publish existing
//!   weights ask for a version bump (`bump` on the wire `swap`
//!   message), which re-stamps the loaded checkpoint at
//!   `current + 1`.
//! * [`ModelRegistry::set_frozen`] gates all publishes
//!   ([`PublishError::Frozen`]): an incident freeze stops both admin
//!   swaps and the background refresh loop without stopping serving.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use airchitect::ModelCheckpoint;

/// Why a publish was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The registry is frozen; no publishes until unfrozen.
    Frozen,
    /// The candidate's lineage version does not advance the live one.
    NotNewer {
        /// Version of the rejected candidate.
        published: u64,
        /// Version currently live.
        current: u64,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Frozen => {
                write!(f, "registry is frozen; unfreeze before publishing")
            }
            PublishError::NotNewer { published, current } => write!(
                f,
                "checkpoint version {published} does not advance the live version {current} \
                 (use bump to re-publish existing weights)"
            ),
        }
    }
}

impl std::error::Error for PublishError {}

/// The swappable slot holding the live checkpoint.
#[derive(Debug)]
pub struct ModelRegistry {
    /// The live checkpoint. `Arc` so readers snapshot it without
    /// copying parameter tensors; `Mutex` only guards the pointer swap
    /// (reads clone the `Arc` and drop the lock immediately).
    slot: Mutex<Arc<ModelCheckpoint>>,
    /// Bumped on every successful publish. Shards poll this (one
    /// relaxed atomic load per micro-batch) instead of taking the slot
    /// lock.
    epoch: AtomicU64,
    /// Live lineage version, mirrored out of the slot so `stats` reads
    /// never contend with a publish.
    version: AtomicU64,
    frozen: AtomicBool,
    swaps: AtomicU64,
}

impl ModelRegistry {
    /// A registry serving `initial` (epoch 0, no swaps yet).
    pub fn new(initial: ModelCheckpoint) -> ModelRegistry {
        let version = initial.version;
        ModelRegistry {
            slot: Mutex::new(Arc::new(initial)),
            epoch: AtomicU64::new(0),
            version: AtomicU64::new(version),
            frozen: AtomicBool::new(false),
            swaps: AtomicU64::new(0),
        }
    }

    /// Snapshot of the live checkpoint (cheap: clones the `Arc`).
    pub fn current(&self) -> Arc<ModelCheckpoint> {
        Arc::clone(&self.slot.lock().expect("registry slot poisoned"))
    }

    /// The swap counter — changes exactly when the live replica does.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Lineage version of the live checkpoint.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Successful publishes so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Whether publishes are currently gated off.
    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Freezes (or unfreezes) publishing. Serving is unaffected.
    pub fn set_frozen(&self, frozen: bool) {
        self.frozen.store(frozen, Ordering::Release);
    }

    /// Installs `candidate` as the live checkpoint and returns its
    /// version.
    ///
    /// # Errors
    ///
    /// [`PublishError::Frozen`] while frozen;
    /// [`PublishError::NotNewer`] unless
    /// `candidate.version > self.version()`.
    pub fn publish(&self, candidate: ModelCheckpoint) -> Result<u64, PublishError> {
        self.publish_impl(candidate, false)
    }

    /// Installs `candidate` re-stamped at `live_version + 1`,
    /// regardless of the version it carries — the operator path for
    /// re-publishing existing weights. The re-stamp happens **under
    /// the slot lock**, so it cannot lose a version race against a
    /// concurrent publish (e.g. the background refresh worker): the
    /// bump always lands on whatever version is live at install time.
    ///
    /// # Errors
    ///
    /// [`PublishError::Frozen`] while frozen.
    pub fn publish_bumped(&self, candidate: ModelCheckpoint) -> Result<u64, PublishError> {
        self.publish_impl(candidate, true)
    }

    fn publish_impl(
        &self,
        mut candidate: ModelCheckpoint,
        bump: bool,
    ) -> Result<u64, PublishError> {
        let mut slot = self.slot.lock().expect("registry slot poisoned");
        // freeze is checked under the slot lock so a freeze cannot race
        // a publish into the gap between check and install
        if self.frozen.load(Ordering::Acquire) {
            return Err(PublishError::Frozen);
        }
        let current = slot.version;
        if bump {
            candidate.version = current + 1;
        } else if candidate.version <= current {
            return Err(PublishError::NotNewer {
                published: candidate.version,
                current,
            });
        }
        let version = candidate.version;
        *slot = Arc::new(candidate);
        self.version.store(version, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        // epoch bumps LAST (Release): a shard that observes the new
        // epoch is guaranteed to read the new slot and version
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig};
    use airchitect::train::TrainConfig;
    use airchitect::{Airchitect2, ModelConfig};

    fn tiny_checkpoint(version: u64) -> ModelCheckpoint {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 24,
                seed: 3,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task);
        let mut model =
            Airchitect2::with_engine(&ModelConfig::tiny(), std::sync::Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        model.checkpoint().with_version(version)
    }

    #[test]
    fn publish_is_monotonic_and_bumps_epoch() {
        let ck = tiny_checkpoint(1);
        let registry = ModelRegistry::new(ck.clone());
        assert_eq!((registry.version(), registry.epoch()), (1, 0));

        // same version → rejected
        let err = registry.publish(ck.clone()).unwrap_err();
        assert_eq!(
            err,
            PublishError::NotNewer {
                published: 1,
                current: 1
            }
        );
        assert!(err.to_string().contains("does not advance"));

        // newer → installed, epoch moves
        registry.publish(ck.clone().with_version(2)).unwrap();
        assert_eq!((registry.version(), registry.epoch()), (2, 1));
        assert_eq!(registry.current().version, 2);
        assert_eq!(registry.swaps(), 1);

        // older again → rejected, nothing moved
        assert!(registry.publish(ck.with_version(2)).is_err());
        assert_eq!((registry.version(), registry.epoch()), (2, 1));
    }

    #[test]
    fn bumped_publish_lands_on_the_live_version_even_after_a_race() {
        let ck = tiny_checkpoint(1);
        let registry = ModelRegistry::new(ck.clone());
        // a competing publisher advanced the version after the caller
        // last looked — the bump must land on the *current* live
        // version, not spuriously fail
        registry.publish(ck.clone().with_version(5)).unwrap();
        let v = registry.publish_bumped(ck.clone().with_version(1)).unwrap();
        assert_eq!(v, 6, "bump stamps live+1 under the lock");
        assert_eq!(registry.current().version, 6);
        // frozen still gates bumped publishes
        registry.set_frozen(true);
        assert_eq!(
            registry.publish_bumped(ck).unwrap_err(),
            PublishError::Frozen
        );
    }

    #[test]
    fn freeze_gates_publishes_without_touching_reads() {
        let ck = tiny_checkpoint(1);
        let registry = ModelRegistry::new(ck.clone());
        registry.set_frozen(true);
        assert!(registry.frozen());
        assert_eq!(
            registry.publish(ck.clone().with_version(2)).unwrap_err(),
            PublishError::Frozen
        );
        // reads still answer while frozen
        assert_eq!(registry.current().version, 1);
        registry.set_frozen(false);
        registry.publish(ck.with_version(2)).unwrap();
        assert_eq!(registry.version(), 2);
    }

    /// Naive single-lock reference registry: one struct, one implicit
    /// lock (exclusive `&mut` access), no atomics — trivially correct
    /// by inspection (mirrors the `LruCache` reference-model test).
    struct NaiveRegistry {
        version: u64,
        epoch: u64,
        swaps: u64,
        frozen: bool,
    }

    impl NaiveRegistry {
        fn publish(&mut self, candidate_version: u64, bump: bool) -> Result<u64, PublishError> {
            if self.frozen {
                return Err(PublishError::Frozen);
            }
            let version = if bump {
                self.version + 1
            } else if candidate_version <= self.version {
                return Err(PublishError::NotNewer {
                    published: candidate_version,
                    current: self.version,
                });
            } else {
                candidate_version
            };
            self.version = version;
            self.swaps += 1;
            self.epoch += 1;
            Ok(version)
        }
    }

    /// Tiny standalone LCG so this test needs no RNG dependency.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn randomized_publish_bump_freeze_ops_match_the_reference_registry() {
        // every seed replays 600 mixed publish/bump/freeze/read ops on
        // both implementations; results, versions, epochs, swap counts
        // and the live checkpoint's stamped version must agree at every
        // step
        let base = tiny_checkpoint(0);
        for seed in [1u64, 2, 3, 4, 5] {
            let registry = ModelRegistry::new(base.clone().with_version(1));
            let mut reference = NaiveRegistry {
                version: 1,
                epoch: 0,
                swaps: 0,
                frozen: false,
            };
            let mut g = Lcg(seed);
            for step in 0..600 {
                match g.next() % 5 {
                    // plain publish at a random version near the live one
                    // (below, equal, and above all occur)
                    0 | 1 => {
                        let v = reference.version.saturating_sub(2) + g.next() % 5;
                        let got = registry.publish(base.clone().with_version(v));
                        let want = reference.publish(v, false);
                        assert_eq!(got, want, "seed {seed} step {step}: publish({v})");
                    }
                    // bumped publish (version on the candidate is noise)
                    2 => {
                        let v = g.next() % 4;
                        let got = registry.publish_bumped(base.clone().with_version(v));
                        let want = reference.publish(v, true);
                        assert_eq!(got, want, "seed {seed} step {step}: bump({v})");
                    }
                    // freeze / unfreeze
                    3 => {
                        let frozen = g.next().is_multiple_of(2);
                        registry.set_frozen(frozen);
                        reference.frozen = frozen;
                    }
                    // pure reads must never disturb state
                    _ => {}
                }
                assert_eq!(
                    registry.version(),
                    reference.version,
                    "seed {seed} step {step}"
                );
                assert_eq!(registry.epoch(), reference.epoch, "seed {seed} step {step}");
                assert_eq!(registry.swaps(), reference.swaps, "seed {seed} step {step}");
                assert_eq!(
                    registry.frozen(),
                    reference.frozen,
                    "seed {seed} step {step}"
                );
                assert_eq!(
                    registry.current().version,
                    reference.version,
                    "seed {seed} step {step}: live checkpoint stamp diverged"
                );
            }
        }
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_checkpoint() {
        let registry = std::sync::Arc::new(ModelRegistry::new(tiny_checkpoint(1)));
        let publisher = {
            let registry = std::sync::Arc::clone(&registry);
            let base = tiny_checkpoint(0);
            std::thread::spawn(move || {
                for v in 2..10u64 {
                    registry.publish(base.clone().with_version(v)).unwrap();
                }
            })
        };
        // readers racing the publisher: every snapshot is a whole
        // checkpoint whose stamped version matches its contents
        for _ in 0..200 {
            let snap = registry.current();
            assert!(snap.version >= 1 && snap.version < 10);
            assert!(!snap.params.params.is_empty());
        }
        publisher.join().unwrap();
        assert_eq!(registry.version(), 9);
        assert_eq!(registry.epoch(), 8);
    }
}
