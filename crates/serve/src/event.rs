//! The event-driven connection front end: one acceptor plus a small
//! pool of event-loop threads multiplexing every connection through a
//! readiness poller (`mini-poll`: epoll on Linux, `poll(2)` elsewhere).
//!
//! Where [`crate::TcpTransport`] spends a thread per connection — the
//! right trade at tens of connections, ruinous at tens of thousands —
//! this front end holds any number of mostly-idle connections with
//! `1 + N` resident threads. Every line still dispatches through the
//! exact same [`Endpoint`] seam, so the two front ends cannot diverge
//! in decoding, admin handling, or error behavior; the serve binary
//! selects between them with `--frontend {threads,event}`.
//!
//! Mechanics, per event loop:
//!
//! * **Reads** are nonblocking and level-triggered: on readiness a
//!   connection is drained to `WouldBlock` into its per-connection read
//!   buffer, then every complete (`\n`-terminated) line is dispatched.
//!   Partial trailing bytes stay in the buffer across reads — the same
//!   reassembly semantics the threaded front end gets from
//!   `BufReader::read_line`, so a slow-loris client dribbling a request
//!   byte-at-a-time is reassembled, never torn.
//! * **Responses** stay in request order per connection: inline answers
//!   and queued recommendations enter one reply queue, and the flush
//!   stops at the first still-pending entry. A shard finishing a job
//!   fires the loop's [`Waker`] (via [`Endpoint::handle_line_with_notify`]),
//!   so completions are event-driven too — the loop never polls a
//!   pending answer it was not told about.
//! * **Write backpressure** is per-connection: outgoing bytes buffer in
//!   a bounded outbox flushed as the socket accepts them; while the
//!   outbox is over its high-water mark the connection's *read*
//!   interest is parked, so a slow reader stalls only itself — never a
//!   shard, never a neighbor.
//!
//! Admission control under overload is not here: it lives at the
//! [`Endpoint`] seam (`ServeConfig::overload`), where both front ends
//! and the in-process client share it.

use std::collections::{BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mini_poll::{Event, Interest, Poller, Waker};

use crate::protocol::encode_line;
use crate::server::{Endpoint, NotifyFn, Pending, Submission};
use crate::transport::{BoundAddr, Shutdown, Transport};

/// Outbox bytes above which a connection's read interest is parked
/// until the client drains what it already owes — the per-connection
/// write backpressure bound.
const OUTBOX_HIGH_WATER: usize = 256 * 1024;

/// Poller token of each thread's waker (connections use `slab+1`).
const TOKEN_WAKER: usize = 0;
/// Acceptor-poller token of the listener.
const TOKEN_LISTENER: usize = 1;

/// The event-driven NDJSON-over-TCP front end. See the module docs.
pub struct EventTransport {
    addrs: Vec<SocketAddr>,
    listener: Option<TcpListener>,
    local: Option<SocketAddr>,
    threads: usize,
    shutdown: Shutdown,
    acceptor: Option<JoinHandle<()>>,
    acceptor_waker: Option<Arc<Waker>>,
    loops: Vec<(JoinHandle<()>, Arc<LoopShared>)>,
}

/// The cross-thread half of one event loop: the acceptor hands accepted
/// streams over through `incoming`, and anyone (acceptor, shards via
/// the notify hook, `stop()`) can interrupt the loop's poller wait
/// through the shared waker.
struct LoopShared {
    waker: Arc<Waker>,
    incoming: Mutex<Vec<TcpStream>>,
}

impl EventTransport {
    /// A front end that will listen on `addr` with `threads` event-loop
    /// threads (clamped to at least 1). Nothing is bound until
    /// [`Transport::bind`].
    ///
    /// # Errors
    ///
    /// Returns the address resolution error.
    pub fn new(addr: impl ToSocketAddrs, threads: usize) -> io::Result<EventTransport> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ));
        }
        Ok(EventTransport {
            addrs,
            listener: None,
            local: None,
            threads: threads.max(1),
            shutdown: Shutdown::new(),
            acceptor: None,
            acceptor_waker: None,
            loops: Vec::new(),
        })
    }

    /// The bound address (`None` before [`Transport::bind`]).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local
    }
}

impl Transport for EventTransport {
    fn name(&self) -> &'static str {
        "event"
    }

    fn bind(&mut self) -> io::Result<BoundAddr> {
        if self.listener.is_some() || self.local.is_some() {
            return Err(io::Error::other("EventTransport already bound"));
        }
        let listener = TcpListener::bind(&self.addrs[..])?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        self.listener = Some(listener);
        self.local = Some(local);
        Ok(BoundAddr::Tcp(local))
    }

    fn run(&mut self, endpoint: Endpoint) -> io::Result<()> {
        let listener = self
            .listener
            .take()
            .ok_or_else(|| io::Error::other("EventTransport not bound (or already running)"))?;
        // event loops first, so the acceptor never sees an empty pool
        for i in 0..self.threads {
            let poller = Poller::new()?;
            let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);
            let shared = Arc::new(LoopShared {
                waker,
                incoming: Mutex::new(Vec::new()),
            });
            let handle = {
                let endpoint = endpoint.clone();
                let shutdown = self.shutdown.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ai2-serve-evloop-{i}"))
                    .spawn(move || event_loop_main(&endpoint, &shutdown, &poller, &shared))?
            };
            self.loops.push((handle, shared));
        }
        let accept_poller = Poller::new()?;
        let accept_waker = Arc::new(Waker::new(&accept_poller, TOKEN_WAKER)?);
        accept_poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        self.acceptor_waker = Some(Arc::clone(&accept_waker));
        let handle = {
            let shutdown = self.shutdown.clone();
            let endpoint = endpoint.clone();
            let pool: Vec<Arc<LoopShared>> =
                self.loops.iter().map(|(_, s)| Arc::clone(s)).collect();
            std::thread::Builder::new()
                .name("ai2-serve-evaccept".into())
                .spawn(move || {
                    accept_loop(
                        &endpoint,
                        &shutdown,
                        &accept_poller,
                        &accept_waker,
                        &listener,
                        &pool,
                    );
                })?
        };
        self.acceptor = Some(handle);
        Ok(())
    }

    fn shutdown(&self) -> Shutdown {
        self.shutdown.clone()
    }

    fn stop(&mut self) {
        self.shutdown.request();
        if let Some(waker) = self.acceptor_waker.take() {
            waker.wake();
        }
        if let Some(h) = self.acceptor.take() {
            h.join().expect("event acceptor panicked");
        }
        for (handle, shared) in self.loops.drain(..) {
            shared.waker.wake();
            handle.join().expect("event loop panicked");
        }
    }
}

/// The acceptor: parked on its poller (no sleep-polling — the threaded
/// front end's 10 ms accept nap does not exist here), it drains every
/// pending accept on listener readiness and deals the streams
/// round-robin across the loop pool.
fn accept_loop(
    endpoint: &Endpoint,
    shutdown: &Shutdown,
    poller: &Poller,
    waker: &Waker,
    listener: &TcpListener,
    pool: &[Arc<LoopShared>],
) {
    let mut events = Vec::new();
    let mut next = 0usize;
    while !shutdown.requested() && !endpoint.stopped() {
        // bounded wait: the waker covers shutdown, the timeout covers a
        // service stopped without the transport being told
        if poller.wait(&mut events, 500).is_err() {
            return;
        }
        waker.drain();
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let lane = &pool[next % pool.len()];
                    next = next.wrapping_add(1);
                    lane.incoming
                        .lock()
                        .expect("incoming queue poisoned")
                        .push(stream);
                    lane.waker.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }
}

/// One reply slot in a connection's in-order response queue.
enum Reply {
    /// Encoded wire line (with trailing newline), ready to flush.
    Done(Vec<u8>),
    /// A queued recommendation still owed by a shard.
    Waiting(Pending),
}

/// One multiplexed connection's state inside an event loop.
struct Conn {
    stream: TcpStream,
    /// Partial-line reassembly buffer: bytes read but not yet
    /// newline-terminated survive here across reads.
    rbuf: Vec<u8>,
    /// Encoded response bytes accepted from `replies` but not yet
    /// written to the socket.
    outbox: Vec<u8>,
    /// Responses in request order; flushing stops at the first entry
    /// still waiting on a shard.
    replies: VecDeque<Reply>,
    /// EOF seen: close once every owed reply is flushed.
    closing: bool,
    /// The (readable, writable) interest currently registered.
    interest: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            outbox: Vec::new(),
            replies: VecDeque::new(),
            closing: false,
            interest: (true, false),
        }
    }

    /// Whether any reply is still owed by a shard.
    fn waiting(&self) -> bool {
        self.replies.iter().any(|r| matches!(r, Reply::Waiting(_)))
    }

    /// Moves completed replies (in order) into the outbox.
    fn collect_replies(&mut self) {
        loop {
            match self.replies.front_mut() {
                Some(Reply::Done(_)) => {
                    let Some(Reply::Done(bytes)) = self.replies.pop_front() else {
                        unreachable!("front just matched Done");
                    };
                    self.outbox.extend_from_slice(&bytes);
                }
                Some(Reply::Waiting(pending)) => match pending.poll() {
                    Some(resp) => {
                        let mut bytes = encode_line(&resp).into_bytes();
                        bytes.push(b'\n');
                        self.outbox.extend_from_slice(&bytes);
                        self.replies.pop_front();
                    }
                    None => break,
                },
                None => break,
            }
        }
    }

    /// Writes as much of the outbox as the socket accepts right now.
    /// `false` means the connection died mid-write.
    fn flush(&mut self) -> bool {
        while !self.outbox.is_empty() {
            match (&self.stream).write(&self.outbox) {
                Ok(0) => return false,
                Ok(n) => {
                    self.outbox.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// The interest this connection wants right now: writable while
    /// bytes are owed, readable unless closing or over the outbox
    /// high-water mark (the backpressure park).
    fn wanted_interest(&self) -> (bool, bool) {
        let readable = !self.closing && self.outbox.len() < OUTBOX_HIGH_WATER;
        let writable = !self.outbox.is_empty();
        (readable, writable)
    }
}

/// One event loop: multiplexes its share of the connections over a
/// single poller, dispatching complete lines through the shared
/// [`Endpoint`] seam.
fn event_loop_main(endpoint: &Endpoint, shutdown: &Shutdown, poller: &Poller, shared: &LoopShared) {
    // the per-loop completion hook every queued submission carries:
    // shards wake this loop the moment an answer lands
    let notify: NotifyFn = {
        let waker = Arc::clone(&shared.waker);
        Arc::new(move || waker.wake())
    };
    let mut slab: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    // connections with shard-pending replies, revisited on every wake
    let mut waiting: BTreeSet<usize> = BTreeSet::new();
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    while !shutdown.requested() && !endpoint.stopped() {
        if poller.wait(&mut events, 500).is_err() {
            return;
        }
        let mut woken = false;
        let mut touched: Vec<usize> = Vec::new();
        for ev in &events {
            if ev.token == TOKEN_WAKER {
                woken = true;
                continue;
            }
            touched.push(ev.token - 1);
            let Some(conn) = slab.get_mut(ev.token - 1).and_then(Option::as_mut) else {
                continue;
            };
            if ev.readable || ev.hangup {
                read_and_dispatch(endpoint, &notify, conn, &mut scratch);
            }
        }
        if woken {
            shared.waker.drain();
            // adopt streams the acceptor dealt to this loop
            let incoming =
                std::mem::take(&mut *shared.incoming.lock().expect("incoming queue poisoned"));
            for stream in incoming {
                let idx = free.pop().unwrap_or_else(|| {
                    slab.push(None);
                    slab.len() - 1
                });
                if poller
                    .register(stream.as_raw_fd(), idx + 1, Interest::READABLE)
                    .is_ok()
                {
                    slab[idx] = Some(Conn::new(stream));
                } else {
                    free.push(idx);
                }
            }
            // a completion may have landed for any waiting connection
            touched.extend(waiting.iter().copied());
        }
        // flush + interest maintenance for every connection poked above
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            let Some(conn) = slab.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            conn.collect_replies();
            let alive = conn.flush();
            if conn.waiting() {
                waiting.insert(idx);
            } else {
                waiting.remove(&idx);
            }
            let done = conn.closing && conn.outbox.is_empty() && conn.replies.is_empty();
            if !alive || done {
                let conn = slab[idx].take().expect("connection just seen");
                let _ = poller.deregister(conn.stream.as_raw_fd());
                waiting.remove(&idx);
                free.push(idx);
                continue;
            }
            let want = conn.wanted_interest();
            if want != conn.interest {
                let interest = Interest {
                    readable: want.0,
                    writable: want.1,
                };
                if poller
                    .modify(conn.stream.as_raw_fd(), idx + 1, interest)
                    .is_ok()
                {
                    conn.interest = want;
                }
            }
        }
    }
}

/// Drains the socket to `WouldBlock`, then dispatches every complete
/// line through the endpoint. Partial trailing bytes stay in `rbuf`.
fn read_and_dispatch(endpoint: &Endpoint, notify: &NotifyFn, conn: &mut Conn, scratch: &mut [u8]) {
    loop {
        match (&conn.stream).read(scratch) {
            Ok(0) => {
                conn.closing = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closing = true;
                break;
            }
        }
    }
    let mut start = 0usize;
    while let Some(pos) = conn.rbuf[start..].iter().position(|&b| b == b'\n') {
        let end = start + pos;
        let line = String::from_utf8_lossy(&conn.rbuf[start..end]).into_owned();
        start = end + 1;
        match endpoint.handle_line_with_notify(&line, Some(Arc::clone(notify))) {
            Submission::Ignored => {}
            Submission::Ready(resp) => {
                let mut bytes = encode_line(&resp).into_bytes();
                bytes.push(b'\n');
                conn.replies.push_back(Reply::Done(bytes));
            }
            Submission::Queued(pending) => conn.replies.push_back(Reply::Waiting(pending)),
        }
    }
    if start > 0 {
        conn.rbuf.drain(..start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AdminRequest, Query, RecommendRequest, Request, Response};
    use crate::server::{Driver, RecommendService, ServeConfig};
    use crate::transport::TcpClient;
    use crate::OverloadPolicy;
    use ai2_dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
    use airchitect::train::TrainConfig;
    use airchitect::{Airchitect2, ModelCheckpoint, ModelConfig};
    use std::io::BufRead;

    fn gemm_req(id: u64, m: u64) -> RecommendRequest {
        RecommendRequest {
            id,
            query: Query::Gemm {
                m,
                n: 280,
                k: 140,
                dataflow: "os".into(),
            },
            objective: Objective::Latency,
            budget: Budget::Edge,
            deadline_ms: None,
            backend: None,
            pipeline: None,
        }
    }

    fn trained() -> (DseTask, ModelCheckpoint) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 40,
                seed: 21,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task.clone());
        let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), engine, &ds);
        model.fit(&ds, &TrainConfig::quick());
        (task, model.checkpoint())
    }

    #[test]
    fn event_frontend_answers_bit_identically_to_the_threaded_one() {
        let (task, ckpt) = trained();
        let mut threaded = RecommendService::start(
            ServeConfig::default(),
            EvalEngine::shared(task.clone()),
            ckpt.clone(),
        );
        let mut evented =
            RecommendService::start(ServeConfig::default(), EvalEngine::shared(task), ckpt);
        let taddr = threaded.listen("127.0.0.1:0").unwrap();
        let eaddr = evented.listen_event("127.0.0.1:0", 2).unwrap();

        let mut tc = TcpClient::connect(taddr).unwrap();
        let mut ec = TcpClient::connect(eaddr).unwrap();
        for (id, m) in [(1u64, 48u64), (2, 96), (3, 48)] {
            let a = tc.send(&Request::Recommend(gemm_req(id, m))).unwrap();
            let b = ec.send(&Request::Recommend(gemm_req(id, m))).unwrap();
            let (Response::Recommendation(a), Response::Recommendation(b)) = (&a, &b) else {
                panic!("expected recommendations, got {a:?} / {b:?}");
            };
            assert_eq!(a.point, b.point, "front ends disagree on the design point");
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
        // admin and malformed lines answer inline on the same socket
        let stats = ec
            .send(&Request::Admin(AdminRequest::Stats { id: 9 }))
            .unwrap();
        assert!(matches!(&stats, Response::Stats(s) if s.id == 9 && s.served == 3));
        ec.writer.write_all(b"{not json}\n").unwrap();
        ec.writer.flush().unwrap();
        let mut line = String::new();
        ec.reader.read_line(&mut line).unwrap();
        assert!(line.contains("malformed"), "unexpected {line:?}");
        threaded.shutdown();
        evented.shutdown();
    }

    #[test]
    fn slow_loris_bytes_reassemble_while_other_connections_proceed() {
        let (task, ckpt) = trained();
        let mut service =
            RecommendService::start(ServeConfig::default(), EvalEngine::shared(task), ckpt);
        let addr = service.listen_event("127.0.0.1:0", 1).unwrap();

        // the straggler dribbles its request one byte at a time
        let mut loris = TcpClient::connect(addr).unwrap();
        let mut wire = encode_line(&Request::Recommend(gemm_req(77, 48))).into_bytes();
        wire.push(b'\n');
        let (head, tail) = wire.split_at(wire.len() / 2);
        for &b in head {
            loris.writer.write_all(&[b]).unwrap();
            loris.writer.flush().unwrap();
        }
        // a well-behaved neighbor on the same (single!) event loop is
        // answered while the straggler's line is still incomplete
        let mut fast = TcpClient::connect(addr).unwrap();
        for id in 1..=3u64 {
            let resp = fast.send(&Request::Recommend(gemm_req(id, 96))).unwrap();
            assert!(matches!(&resp, Response::Recommendation(r) if r.id == id));
        }
        for &b in tail {
            loris.writer.write_all(&[b]).unwrap();
            loris.writer.flush().unwrap();
        }
        let mut line = String::new();
        loris.reader.read_line(&mut line).unwrap();
        let Response::Recommendation(r) = crate::protocol::decode_line(&line).unwrap() else {
            panic!("straggler expected a recommendation, got {line:?}");
        };
        assert_eq!(r.id, 77);
        service.shutdown();
    }

    #[test]
    fn sheds_answer_inline_in_order_and_reconcile_in_stats() {
        let (task, ckpt) = trained();
        let service = RecommendService::start_with(
            ServeConfig {
                driver: Driver::Manual,
                overload: OverloadPolicy::Shed { high_water: 2 },
                shards: 1,
                ..ServeConfig::default()
            },
            EvalEngine::shared(task),
            ckpt,
            std::sync::Arc::new(crate::clock::VirtualClock::new()),
        );
        let mut service = service;
        let addr = service.listen_event("127.0.0.1:0", 1).unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        // flood five requests without reading: with a manual driver the
        // queue cannot drain, so exactly high_water are admitted and the
        // rest shed inline...
        for id in 1..=5u64 {
            let line = encode_line(&Request::Recommend(gemm_req(id, 48)));
            client.writer.write_all(line.as_bytes()).unwrap();
            client.writer.write_all(b"\n").unwrap();
        }
        client.writer.flush().unwrap();
        // ...but replies still arrive strictly in request order, so the
        // shed answers for 3-5 queue behind the two pending jobs until
        // the shard is stepped
        std::thread::sleep(std::time::Duration::from_millis(100));
        while service.step_shard(0) {}
        let mut answered = Vec::new();
        for _ in 0..5 {
            let mut line = String::new();
            client.reader.read_line(&mut line).unwrap();
            answered.push(crate::protocol::decode_line::<Response>(&line).unwrap());
        }
        for (i, resp) in answered.iter().enumerate() {
            let id = i as u64 + 1;
            match resp {
                Response::Recommendation(r) => {
                    assert!(id <= 2, "request {id} should have shed, got {r:?}");
                    assert_eq!(r.id, id);
                }
                Response::Error { id: rid, message } => {
                    assert!(id > 2, "request {id} should have served, got {message:?}");
                    assert_eq!(*rid, id);
                    assert!(message.contains("shedding"), "unexpected {message:?}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let stats = client
            .send(&Request::Admin(AdminRequest::Stats { id: 6 }))
            .unwrap();
        let Response::Stats(s) = stats else {
            panic!("expected stats, got {stats:?}");
        };
        assert_eq!(s.sheds, 3, "every refused request must be counted");
        assert_eq!(s.served, 2);
        assert!(
            s.queue_high_water >= 2,
            "high water saw {0}",
            s.queue_high_water
        );
        service.shutdown();
    }
}
