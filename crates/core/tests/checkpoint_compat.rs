//! Checkpoint forward/backward file compatibility.
//!
//! * **Backward**: files written before versioning existed (no `format`
//!   / `version` / `provenance` keys) must load as lineage version 0
//!   with unknown provenance — and still restore a bit-identical model.
//! * **Forward**: a file stamped with a *newer* format revision than
//!   this build understands must be rejected with a clean
//!   [`CheckpointError::UnsupportedFormat`] — never a panic, never a
//!   silent misread.

use std::fs;
use std::sync::Arc;

use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig};
use ai2_nn::checkpoint::CheckpointError;
use airchitect::checkpoint::LegacyModelCheckpoint;
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelCheckpoint, ModelConfig, Provenance, CHECKPOINT_FORMAT};

fn trained_tiny() -> (Arc<EvalEngine>, DseDataset, Airchitect2) {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 40,
            seed: 0xC0DE,
            threads: 2,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    (engine, ds, model)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ai2_core_ckpt_compat");
    fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn legacy_file_without_version_keys_loads_as_version_zero() {
    let (engine, ds, model) = trained_tiny();
    // a bit-faithful pre-versioning file: exactly the three legacy keys
    let legacy = LegacyModelCheckpoint {
        config: *model.config(),
        features: model.feature_encoder().clone(),
        params: ai2_nn::checkpoint::Checkpoint::from_store(model.store()),
    };
    let path = temp_path("legacy.json");
    fs::write(&path, serde_json::to_string(&legacy).unwrap()).unwrap();

    let loaded = ModelCheckpoint::load(&path).expect("legacy file must load");
    assert_eq!(loaded.format, 0, "legacy files are format 0");
    assert_eq!(loaded.version, 0, "legacy files are lineage version 0");
    assert_eq!(loaded.provenance, Provenance::unknown());

    // and it still restores a bit-identical model
    let restored = Airchitect2::from_checkpoint(engine, &loaded).expect("restore");
    let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
    assert_eq!(model.predict(&inputs), restored.predict(&inputs));
    fs::remove_file(path).ok();
}

#[test]
fn future_format_is_rejected_with_a_clean_error() {
    let (_, _, model) = trained_tiny();
    let future = ModelCheckpoint::from_model(&model);
    let mut future = future;
    future.format = CHECKPOINT_FORMAT + 41;
    let path = temp_path("future.json");
    // save() writes whatever is stamped — the guard lives on the read
    // side, where a file from a newer build actually arrives
    future.save(&path).unwrap();

    let err = ModelCheckpoint::load(&path).expect_err("future format must not load");
    match &err {
        CheckpointError::UnsupportedFormat { found, supported } => {
            assert_eq!(*found, CHECKPOINT_FORMAT + 41);
            assert_eq!(*supported, CHECKPOINT_FORMAT);
        }
        other => panic!("expected UnsupportedFormat, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("newer") && msg.contains("format"),
        "error message should explain the rejection: {msg}"
    );
    fs::remove_file(path).ok();
}

#[test]
fn current_format_roundtrips_with_lineage_metadata() {
    let (_, _, model) = trained_tiny();
    let path = temp_path("current.json");
    ModelCheckpoint::from_model(&model)
        .with_version(3)
        .with_provenance("systolic", 123)
        .save(&path)
        .unwrap();
    let loaded = ModelCheckpoint::load(&path).unwrap();
    assert_eq!(loaded.format, CHECKPOINT_FORMAT);
    assert_eq!(loaded.version, 3);
    assert_eq!(loaded.provenance.backend, "systolic");
    assert_eq!(loaded.provenance.training_samples, 123);
    fs::remove_file(path).ok();
}

#[test]
fn garbage_and_truncated_files_error_not_panic() {
    let path = temp_path("garbage.json");
    fs::write(&path, "{\"format\": 1, \"version\": ").unwrap();
    assert!(matches!(
        ModelCheckpoint::load(&path),
        Err(CheckpointError::Parse(_))
    ));
    fs::write(&path, "not json at all").unwrap();
    assert!(ModelCheckpoint::load(&path).is_err());
    fs::remove_file(path).ok();
}
