//! Serving depends on warm checkpoint loads: a parameter snapshot that
//! does not restore bit-identically would silently serve a different
//! model. These tests pin the full round trip — save → file → load →
//! identical [`Predictor::evaluate`] output — at both the raw
//! [`ai2_nn::checkpoint::Checkpoint`] level and the whole-model
//! [`ModelCheckpoint`] level.

use std::fs;
use std::sync::Arc;

use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig};
use ai2_nn::checkpoint::Checkpoint;
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, EvalReport, ModelCheckpoint, ModelConfig};

fn setup() -> (Arc<EvalEngine>, DseDataset, DseDataset, Airchitect2) {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 80,
            seed: 77,
            threads: 2,
            ..GenerateConfig::default()
        },
    );
    let (train, test) = ds.split(0.8, 7);
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &train);
    model.fit(&train, &TrainConfig::quick());
    (engine, train, test, model)
}

fn assert_reports_bit_identical(a: &EvalReport, b: &EvalReport) {
    assert_eq!(a.samples, b.samples);
    assert_eq!(
        a.bucket_accuracy.to_bits(),
        b.bucket_accuracy.to_bits(),
        "bucket accuracy drifted: {a:?} vs {b:?}"
    );
    assert_eq!(a.exact_accuracy.to_bits(), b.exact_accuracy.to_bits());
    assert_eq!(a.pe_accuracy.to_bits(), b.pe_accuracy.to_bits());
    assert_eq!(a.buf_accuracy.to_bits(), b.buf_accuracy.to_bits());
    assert_eq!(
        a.latency_ratio.to_bits(),
        b.latency_ratio.to_bits(),
        "latency ratio drifted: {} vs {}",
        a.latency_ratio,
        b.latency_ratio
    );
}

#[test]
fn nn_checkpoint_file_roundtrip_preserves_evaluate_output() {
    let (engine, train, test, model) = setup();
    let before = model.predictor().evaluate(&test);
    assert!(before.samples > 0);

    let dir = std::env::temp_dir().join("ai2_core_nn_ckpt_roundtrip");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("params.json");
    Checkpoint::from_store(model.store()).save(&path).unwrap();

    // a fresh model with different parameter init (seed), same codecs
    let mut other_cfg = ModelConfig::tiny();
    other_cfg.seed ^= 0xBEEF;
    let mut restored = Airchitect2::with_engine(&other_cfg, engine, &train);
    let untrained = restored.predictor().evaluate(&test);
    Checkpoint::load(&path)
        .unwrap()
        .apply_to(restored.store_mut())
        .unwrap();
    fs::remove_file(path).ok();

    let after = restored.predictor().evaluate(&test);
    assert_reports_bit_identical(&before, &after);
    // the comparison is meaningful only if loading actually changed the
    // fresh model's behaviour
    assert!(
        untrained != after,
        "fresh init coincidentally matched the trained model"
    );
}

#[test]
fn model_checkpoint_file_roundtrip_preserves_evaluate_output() {
    let (engine, _train, test, model) = setup();
    let before = model.predictor().evaluate(&test);

    let dir = std::env::temp_dir().join("ai2_core_model_ckpt_roundtrip");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    model.checkpoint().save(&path).unwrap();
    let restored = Airchitect2::from_checkpoint(engine, &ModelCheckpoint::load(&path).unwrap())
        .expect("checkpoint applies cleanly");
    fs::remove_file(path).ok();

    let after = restored.predictor().evaluate(&test);
    assert_reports_bit_identical(&before, &after);
}
