//! Proves the serving hot path is allocation-free once warm.
//!
//! A counting global allocator wraps [`std::alloc::System`]; after
//! warm-up passes, a full batched forward (encoder + decoder heads,
//! `f32` and int8 flavors) through a reused [`InferenceScratch`] must
//! perform **zero** heap allocations.
//!
//! This file intentionally holds a single `#[test]`: the counter is
//! process-global, and a concurrently running test would pollute the
//! delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ai2_dse::{DseDataset, DseTask, GenerateConfig};
use airchitect::{Airchitect2, InferenceScratch, ModelConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn warm_forward_pass_allocates_nothing() {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 24,
            seed: 9,
            threads: 1,
            ..GenerateConfig::default()
        },
    );
    let mut model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
    let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
    let features = model.feature_encoder().encode_inputs(&inputs);

    // f32 flavor ---------------------------------------------------------
    let mut scratch = InferenceScratch::new();
    for _ in 0..3 {
        model.forward_into(&features, &mut scratch); // warm-up
    }
    let steady = allocations(|| {
        model.forward_into(&features, &mut scratch);
    });
    assert_eq!(
        steady, 0,
        "warm f32 forward pass performed {steady} heap allocations"
    );

    // int8 flavor --------------------------------------------------------
    model.quantize_decoder();
    let mut qscratch = InferenceScratch::new();
    for _ in 0..3 {
        model.forward_into(&features, &mut qscratch);
    }
    let steady_q = allocations(|| {
        model.forward_into(&features, &mut qscratch);
    });
    assert_eq!(
        steady_q, 0,
        "warm int8 forward pass performed {steady_q} heap allocations"
    );

    // Repeating the steady-state batch keeps producing identical outputs.
    let (pe_a, buf_a) = {
        let (pe, buf) = model.forward_into(&features, &mut qscratch);
        (pe.clone(), buf.clone())
    };
    let (pe_b, buf_b) = model.forward_into(&features, &mut qscratch);
    assert_eq!(&pe_a, pe_b);
    assert_eq!(&buf_a, buf_b);
}
