//! Diagnostic: accuracy trajectory of a realistic (small) training run.
use ai2_dse::{DseDataset, DseTask, GenerateConfig};
use airchitect::{train::TrainConfig, Airchitect2, ModelConfig};

fn main() {
    let task = DseTask::table_i_default();
    let t0 = std::time::Instant::now();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 4000,
            seed: 1,
            threads: 2,
            ..GenerateConfig::default()
        },
    );
    println!("dataset in {:?}", t0.elapsed());
    // label concentration
    let hist = ai2_dse::stats::LabelHistogram::from_dataset(&ds);
    println!(
        "distinct labels {} / {} samples, head10 {:.2}, imbalance {:.0}",
        hist.num_distinct(),
        hist.total(),
        hist.head_coverage(10),
        hist.imbalance_factor()
    );
    let (train, test) = ds.split(0.8, 42);
    let mut model = Airchitect2::new(&ModelConfig::default(), &task, &train);
    let cfg = TrainConfig {
        stage1_epochs: 40,
        stage2_epochs: 60,
        batch_size: 256,
        ..TrainConfig::default()
    };
    let t1 = std::time::Instant::now();
    let report = model.fit(&train, &cfg);
    println!("trained in {:?}", t1.elapsed());
    println!(
        "stage1 loss {:.4} -> {:.4}; stage2 {:.4} -> {:.4}",
        report.stage1[0],
        report.stage1.last().unwrap(),
        report.stage2[0],
        report.stage2.last().unwrap()
    );
    let p = model.predictor();
    let acc = p.accuracy(&test);
    let (pe, buf) = p.per_axis_accuracy(&test);
    let ratio = p.latency_ratio(&test);
    println!("test acc {acc:.2}%  pe {pe:.2}%  buf {buf:.2}%  latency-ratio {ratio:.3}");
}
