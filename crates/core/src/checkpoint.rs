//! Whole-model checkpoints: everything a serving process needs to answer
//! queries from a trained [`Airchitect2`] without re-training — the
//! architecture configuration, the fitted feature statistics, and every
//! parameter tensor — plus the lineage metadata the online-refresh
//! pipeline hangs replica management on.
//!
//! [`ai2_nn::checkpoint::Checkpoint`] alone is not enough to *serve*: a
//! restored parameter store still needs the [`FeatureEncoder`] fitted on
//! the original training split (standardisation statistics change the
//! inputs, hence the outputs) and the exact [`ModelConfig`] (head codecs
//! change the output decoding). [`ModelCheckpoint`] bundles all three, so
//! `save` on the training side and [`Airchitect2::from_checkpoint`] on
//! the serving side reproduce bit-identical predictions.
//!
//! # Versioning
//!
//! Two independent numbers travel with every checkpoint:
//!
//! * [`ModelCheckpoint::version`] — the **model lineage** version, a
//!   monotonically increasing counter the serving registry bumps every
//!   time a refreshed replica is published. Files written before
//!   versioning existed load as version 0 (they all predate every
//!   published refresh, so 0 orders them correctly).
//! * [`ModelCheckpoint::format`] — the **file format** revision
//!   ([`CHECKPOINT_FORMAT`]). A file stamped with a *newer* format than
//!   this build understands is rejected with
//!   [`CheckpointError::UnsupportedFormat`] — a clean error, never a
//!   panic or a silent misread of re-purposed fields.
//!
//! [`Provenance`] records where the weights came from: which cost
//! backend labeled the training corpus and how many samples it held.

use std::fs;
use std::path::Path;

use ai2_nn::checkpoint::{Checkpoint, CheckpointError};
use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::features::FeatureEncoder;
use crate::model::Airchitect2;
use crate::quant::{QuantBlob, QuantTensor};

/// The newest checkpoint file-format revision this build reads/writes.
/// Revision 0 is the implicit format of legacy files (no `format` key);
/// revision 2 added the optional int8 decoder flavor (`flavor` key), which
/// revision-1 files simply lack — they keep loading as `f32`.
pub const CHECKPOINT_FORMAT: u64 = 2;

/// Where a checkpoint's weights came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Label of the cost backend whose oracle labeled the training
    /// corpus (`"analytic"` / `"systolic"`; `"unknown"` for legacy
    /// files that predate provenance).
    pub backend: String,
    /// Number of labeled samples the weights were (last) trained on.
    pub training_samples: u64,
}

impl Provenance {
    /// The provenance recorded on files that predate provenance.
    pub fn unknown() -> Provenance {
        Provenance {
            backend: "unknown".to_string(),
            training_samples: 0,
        }
    }
}

/// A self-contained snapshot of a trained [`Airchitect2`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// File-format revision (see [`CHECKPOINT_FORMAT`]).
    pub format: u64,
    /// Monotonically increasing model lineage version; 0 for legacy
    /// files and fresh snapshots that were never published.
    pub version: u64,
    /// Training provenance (backend label, corpus size).
    pub provenance: Provenance,
    /// Architecture hyperparameters (head kind, widths, seed).
    pub config: ModelConfig,
    /// Feature / performance statistics fitted on the training split.
    pub features: FeatureEncoder,
    /// Every parameter tensor, keyed by registration name.
    pub params: Checkpoint,
    /// `Some` marks the int8 decoder flavor: alongside the full `f32`
    /// parameters, the blob carries pre-quantized decoder weights that a
    /// restore reuses verbatim (format revision ≥ 2; absent in older
    /// files, which load as plain `f32`).
    pub flavor: Option<QuantBlob>,
}

/// The pre-versioning on-disk shape: config + features + params only.
/// Kept as a named type (not an inline struct in `load`) so the
/// compat tests can write bit-faithful legacy files.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LegacyModelCheckpoint {
    /// Architecture hyperparameters.
    pub config: ModelConfig,
    /// Fitted feature statistics.
    pub features: FeatureEncoder,
    /// Parameter tensors.
    pub params: Checkpoint,
}

impl ModelCheckpoint {
    /// Snapshots a trained model at lineage version 0 with provenance
    /// naming the model's evaluation backend. Callers that know the
    /// training-set size or are publishing a refresh refine the
    /// metadata with [`ModelCheckpoint::with_version`] /
    /// [`ModelCheckpoint::with_provenance`].
    pub fn from_model(model: &Airchitect2) -> ModelCheckpoint {
        let params = Checkpoint::from_store(model.store());
        let flavor = model
            .quantized_decoder()
            .then(|| Self::quantize_params(&params));
        ModelCheckpoint {
            format: CHECKPOINT_FORMAT,
            version: 0,
            provenance: Provenance {
                backend: model.engine().backend_id().as_str().to_string(),
                training_samples: 0,
            },
            config: *model.config(),
            features: model.feature_encoder().clone(),
            params,
            flavor,
        }
    }

    /// Int8-quantizes every decoder matmul weight of `params` (names
    /// `dec.….w`; layer norms, biases and the positional row stay `f32`).
    /// Deterministic: one set of `f32` weights always yields one blob.
    fn quantize_params(params: &Checkpoint) -> QuantBlob {
        let mut blob = QuantBlob::default();
        for (name, saved) in &params.params {
            if !(name.starts_with("dec.") && name.ends_with(".w")) {
                continue;
            }
            let w = ai2_tensor::Tensor::from_vec(saved.data.clone(), &saved.shape)
                .expect("checkpoint params are shape-consistent");
            let q = ai2_nn::quant::QuantizedLinear::from_weight(&w);
            blob.tensors
                .insert(name.clone(), QuantTensor::from_linear(&q));
        }
        blob
    }

    /// Returns the checkpoint re-published as the int8 decoder flavor.
    /// A no-op when the blob is already present (stored `i8` data is
    /// never re-derived).
    #[must_use]
    pub fn quantized(mut self) -> ModelCheckpoint {
        if self.flavor.is_none() {
            self.flavor = Some(Self::quantize_params(&self.params));
        }
        self
    }

    /// Whether this checkpoint carries the int8 decoder flavor.
    pub fn is_quantized(&self) -> bool {
        self.flavor.is_some()
    }

    /// Returns the checkpoint re-stamped at lineage `version`.
    #[must_use]
    pub fn with_version(mut self, version: u64) -> ModelCheckpoint {
        self.version = version;
        self
    }

    /// Returns the checkpoint with its provenance replaced.
    #[must_use]
    pub fn with_provenance(mut self, backend: &str, training_samples: u64) -> ModelCheckpoint {
        self.provenance = Provenance {
            backend: backend.to_string(),
            training_samples,
        };
        self
    }

    /// Writes the checkpoint as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self)?;
        fs::write(path, json)?;
        Ok(())
    }

    /// Reads a checkpoint from a JSON file.
    ///
    /// Files written before versioning existed (no `format` key) load as
    /// format 0 / lineage version 0 with unknown provenance. Files
    /// stamped with a format *newer* than [`CHECKPOINT_FORMAT`] are
    /// rejected with [`CheckpointError::UnsupportedFormat`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed, or was
    /// written by a newer format revision.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelCheckpoint, CheckpointError> {
        let json = fs::read_to_string(path)?;
        let ck = match serde_json::from_str::<ModelCheckpoint>(&json) {
            Ok(ck) => ck,
            Err(e) => {
                // fall back to the legacy shape only for genuinely
                // pre-versioning files — detected structurally by the
                // absent `format` key, not by matching error text. A
                // corrupt *modern* file (has `format`, bad elsewhere)
                // must keep erroring, not sneak in as version 0.
                let is_legacy = serde_json::from_str::<serde_json::JsonValue>(&json)
                    .map(|v| v.get("format").is_none())
                    .unwrap_or(false);
                if !is_legacy {
                    return Err(e.into());
                }
                let legacy: LegacyModelCheckpoint = serde_json::from_str(&json)?;
                ModelCheckpoint {
                    format: 0,
                    version: 0,
                    provenance: Provenance::unknown(),
                    config: legacy.config,
                    features: legacy.features,
                    params: legacy.params,
                    flavor: None,
                }
            }
        };
        if ck.format > CHECKPOINT_FORMAT {
            return Err(CheckpointError::UnsupportedFormat {
                found: ck.format,
                supported: CHECKPOINT_FORMAT,
            });
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainConfig;
    use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig};

    fn trained_tiny() -> (std::sync::Arc<EvalEngine>, DseDataset, Airchitect2) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 40,
                seed: 21,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task);
        let mut model =
            Airchitect2::with_engine(&ModelConfig::tiny(), std::sync::Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        (engine, ds, model)
    }

    #[test]
    fn restored_model_predicts_identically() {
        let (engine, ds, model) = trained_tiny();
        let ck = ModelCheckpoint::from_model(&model);
        let restored = Airchitect2::from_checkpoint(engine, &ck).unwrap();
        let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
        assert_eq!(model.predict(&inputs), restored.predict(&inputs));
    }

    #[test]
    fn file_roundtrip_preserves_everything() {
        let (engine, ds, model) = trained_tiny();
        let dir = std::env::temp_dir().join("ai2_core_model_ckpt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ModelCheckpoint::from_model(&model)
            .with_version(7)
            .with_provenance("analytic", 40)
            .save(&path)
            .unwrap();
        let loaded = ModelCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.config, *model.config());
        assert_eq!(loaded.format, CHECKPOINT_FORMAT);
        assert_eq!(loaded.version, 7);
        assert_eq!(
            loaded.provenance,
            Provenance {
                backend: "analytic".into(),
                training_samples: 40
            }
        );
        let restored = Airchitect2::from_checkpoint(engine, &loaded).unwrap();
        let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
        assert_eq!(model.predict(&inputs), restored.predict(&inputs));
        fs::remove_file(path).ok();
    }

    #[test]
    fn quantized_flavor_roundtrips_through_file() {
        let (engine, ds, model) = trained_tiny();
        let ck = ModelCheckpoint::from_model(&model).quantized();
        assert!(ck.is_quantized());
        let dir = std::env::temp_dir().join("ai2_core_model_ckpt_quant_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model_int8.json");
        ck.save(&path).unwrap();
        let loaded = ModelCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.flavor, ck.flavor);

        let a = Airchitect2::from_checkpoint(std::sync::Arc::clone(&engine), &ck).unwrap();
        let b = Airchitect2::from_checkpoint(engine, &loaded).unwrap();
        assert!(a.quantized_decoder() && b.quantized_decoder());
        let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
        // Two replicas of one published int8 flavor answer bit-identically.
        assert_eq!(a.predict(&inputs), b.predict(&inputs));
        fs::remove_file(path).ok();
    }

    #[test]
    fn format1_file_without_flavor_key_loads_as_f32() {
        // A revision-1 writer never emitted the `flavor` key; this build
        // must keep reading such files (as plain f32 checkpoints).
        #[derive(Serialize)]
        struct V1File {
            format: u64,
            version: u64,
            provenance: Provenance,
            config: ModelConfig,
            features: FeatureEncoder,
            params: Checkpoint,
        }
        let (engine, ds, model) = trained_tiny();
        let modern = ModelCheckpoint::from_model(&model);
        let v1 = V1File {
            format: 1,
            version: 3,
            provenance: modern.provenance.clone(),
            config: modern.config,
            features: modern.features.clone(),
            params: modern.params.clone(),
        };
        let dir = std::env::temp_dir().join("ai2_core_model_ckpt_v1_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model_v1.json");
        fs::write(&path, serde_json::to_string(&v1).unwrap()).unwrap();
        let loaded = ModelCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.format, 1);
        assert_eq!(loaded.version, 3);
        assert!(loaded.flavor.is_none());
        let restored = Airchitect2::from_checkpoint(engine, &loaded).unwrap();
        assert!(!restored.quantized_decoder());
        let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
        assert_eq!(model.predict(&inputs), restored.predict(&inputs));
        fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_panic() {
        let (engine, _, model) = trained_tiny();
        let mut ck = ModelCheckpoint::from_model(&model);
        let key = ck.params.params.keys().next().unwrap().clone();
        ck.params.params.remove(&key);
        assert!(Airchitect2::from_checkpoint(engine, &ck).is_err());
    }
}
