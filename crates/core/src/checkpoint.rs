//! Whole-model checkpoints: everything a serving process needs to answer
//! queries from a trained [`Airchitect2`] without re-training — the
//! architecture configuration, the fitted feature statistics, and every
//! parameter tensor.
//!
//! [`ai2_nn::checkpoint::Checkpoint`] alone is not enough to *serve*: a
//! restored parameter store still needs the [`FeatureEncoder`] fitted on
//! the original training split (standardisation statistics change the
//! inputs, hence the outputs) and the exact [`ModelConfig`] (head codecs
//! change the output decoding). [`ModelCheckpoint`] bundles all three, so
//! `save` on the training side and [`Airchitect2::from_checkpoint`] on
//! the serving side reproduce bit-identical predictions.

use std::fs;
use std::path::Path;

use ai2_nn::checkpoint::{Checkpoint, CheckpointError};
use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::features::FeatureEncoder;
use crate::model::Airchitect2;

/// A self-contained snapshot of a trained [`Airchitect2`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Architecture hyperparameters (head kind, widths, seed).
    pub config: ModelConfig,
    /// Feature / performance statistics fitted on the training split.
    pub features: FeatureEncoder,
    /// Every parameter tensor, keyed by registration name.
    pub params: Checkpoint,
}

impl ModelCheckpoint {
    /// Snapshots a trained model.
    pub fn from_model(model: &Airchitect2) -> ModelCheckpoint {
        ModelCheckpoint {
            config: *model.config(),
            features: model.feature_encoder().clone(),
            params: Checkpoint::from_store(model.store()),
        }
    }

    /// Writes the checkpoint as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self)?;
        fs::write(path, json)?;
        Ok(())
    }

    /// Reads a checkpoint from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelCheckpoint, CheckpointError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainConfig;
    use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig};

    fn trained_tiny() -> (std::sync::Arc<EvalEngine>, DseDataset, Airchitect2) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 40,
                seed: 21,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let engine = EvalEngine::shared(task);
        let mut model =
            Airchitect2::with_engine(&ModelConfig::tiny(), std::sync::Arc::clone(&engine), &ds);
        model.fit(&ds, &TrainConfig::quick());
        (engine, ds, model)
    }

    #[test]
    fn restored_model_predicts_identically() {
        let (engine, ds, model) = trained_tiny();
        let ck = ModelCheckpoint::from_model(&model);
        let restored = Airchitect2::from_checkpoint(engine, &ck).unwrap();
        let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
        assert_eq!(model.predict(&inputs), restored.predict(&inputs));
    }

    #[test]
    fn file_roundtrip_preserves_everything() {
        let (engine, ds, model) = trained_tiny();
        let dir = std::env::temp_dir().join("ai2_core_model_ckpt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ModelCheckpoint::from_model(&model).save(&path).unwrap();
        let loaded = ModelCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.config, *model.config());
        let restored = Airchitect2::from_checkpoint(engine, &loaded).unwrap();
        let inputs: Vec<_> = ds.samples.iter().map(|s| s.input()).collect();
        assert_eq!(model.predict(&inputs), restored.predict(&inputs));
        fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_panic() {
        let (engine, _, model) = trained_tiny();
        let mut ck = ModelCheckpoint::from_model(&model);
        let key = ck.params.params.keys().next().unwrap().clone();
        ck.params.params.remove(&key);
        assert!(Airchitect2::from_checkpoint(engine, &ck).is_err());
    }
}
