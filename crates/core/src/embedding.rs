//! Embedding-space analysis: the quantitative counterpart of the paper's
//! Fig. 5 ("contrastive learning results in a uniform embedding space").
//!
//! Two standard metrics (Wang & Isola, ICML 2020) summarise what the
//! figure shows visually:
//!
//! * **alignment** — mean squared distance between embeddings of
//!   same-class samples (lower = positives cluster),
//! * **uniformity** — `log E exp(−2‖zᵢ − zⱼ‖²)` over all pairs (lower =
//!   embeddings spread uniformly on the hypersphere).

use ai2_tensor::linalg::Pca;
use ai2_tensor::Tensor;

/// Summary metrics of an embedding space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbeddingReport {
    /// Mean squared distance over same-class pairs (lower is better).
    pub alignment: f64,
    /// `log E exp(−2‖zᵢ−zⱼ‖²)` over all pairs (lower is better).
    pub uniformity: f64,
    /// Number of samples analysed.
    pub samples: usize,
}

/// Computes alignment/uniformity on L2-normalised copies of `embeddings`
/// (`[n, d]`) with one class label per row.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows or fewer
/// than two rows are given.
pub fn analyze(embeddings: &Tensor, labels: &[u32]) -> EmbeddingReport {
    let n = embeddings.rows();
    assert_eq!(labels.len(), n, "analyze: labels/rows mismatch");
    assert!(n >= 2, "analyze: need at least two samples");
    let z = embeddings.normalize_rows(1e-8);

    let mut align_sum = 0.0f64;
    let mut align_pairs = 0usize;
    let mut unif_sum = 0.0f64;
    let mut unif_pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let d2: f64 = z
                .row(i)
                .iter()
                .zip(z.row(j))
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum();
            unif_sum += (-2.0 * d2).exp();
            unif_pairs += 1;
            if labels[i] == labels[j] {
                align_sum += d2;
                align_pairs += 1;
            }
        }
    }
    EmbeddingReport {
        alignment: if align_pairs > 0 {
            align_sum / align_pairs as f64
        } else {
            f64::NAN
        },
        uniformity: (unif_sum / unif_pairs as f64).ln(),
        samples: n,
    }
}

/// PCA projection of embeddings to 2-D for the Fig. 5 scatter export.
///
/// # Panics
///
/// Panics if fewer than two samples or fewer than two dimensions.
pub fn project_2d(embeddings: &Tensor) -> Tensor {
    let pca = Pca::fit(embeddings, 2);
    pca.transform(embeddings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_tensor::rng;

    #[test]
    fn clustered_embeddings_have_better_alignment() {
        // two tight clusters vs the same points with shuffled labels
        let mut r = rng::seeded(3);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let center = if class == 0 { 1.0 } else { -1.0 };
            let noise = rng::randn(&mut r, &[4]).scale(0.05);
            let mut v = vec![center; 4];
            for (a, b) in v.iter_mut().zip(noise.as_slice()) {
                *a += b;
            }
            rows.push(Tensor::from_slice(&v));
            labels.push(class as u32);
        }
        let z = Tensor::stack_rows(&rows);
        let clustered = analyze(&z, &labels);
        let shuffled: Vec<u32> = (0..40).map(|i| (i / 20) as u32).collect();
        let mixed = analyze(&z, &shuffled);
        assert!(
            clustered.alignment < mixed.alignment,
            "clustered {} !< mixed {}",
            clustered.alignment,
            mixed.alignment
        );
    }

    #[test]
    fn uniform_embeddings_have_lower_uniformity_loss() {
        let mut r = rng::seeded(4);
        // spread points vs all-identical points
        let spread = rng::randn(&mut r, &[50, 8]);
        let collapsed = Tensor::ones(&[50, 8]);
        let labels: Vec<u32> = (0..50).map(|i| i as u32 % 5).collect();
        let u_spread = analyze(&spread, &labels).uniformity;
        let u_collapsed = analyze(&collapsed, &labels).uniformity;
        assert!(
            u_spread < u_collapsed,
            "spread {u_spread} !< collapsed {u_collapsed}"
        );
    }

    #[test]
    fn projection_shape() {
        let mut r = rng::seeded(5);
        let z = rng::randn(&mut r, &[30, 8]);
        let p = project_2d(&z);
        assert_eq!(p.shape(), &[30, 2]);
        assert!(p.all_finite());
    }
}
