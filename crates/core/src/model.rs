//! The AIrchitect v2 encoder–decoder transformer.

use std::sync::Arc;

use ai2_dse::{DesignPoint, DseDataset, DseTask, EvalEngine};
use ai2_nn::layers::{LayerNorm, Linear, TransformerBlock};
use ai2_nn::{Graph, ParamId, ParamStore, VarId};
use ai2_tensor::Tensor;
use ai2_uov::ConfigCodec;
use ai2_workloads::generator::DseInput;

use crate::config::{HeadKind, ModelConfig};
use crate::features::{FeatureEncoder, PreparedDataset, NUM_FEATURES};
use crate::predictor::Predictor;
use crate::train::{Stage1Trainer, Stage2Trainer, TrainConfig, TrainReport};

/// Number of UOV buckets used for the stage-1 contrastive class labels
/// (independent of the head codec, fixed at the paper's K = 16).
pub(crate) const CONTRASTIVE_BUCKETS: usize = 16;

/// The AIrchitect v2 model: a contrastively trained encoder producing the
/// intermediate representation, and a decoder with two output heads
/// (`#PEs`, buffer size) predicting Unified Ordinal Vectors.
pub struct Airchitect2 {
    cfg: ModelConfig,
    store: ParamStore,
    // encoder (stage 1)
    embed: Linear,
    pos_enc: ParamId,
    enc_blocks: Vec<TransformerBlock>,
    enc_ln: LayerNorm,
    enc_proj: Linear,
    perf_head: Linear,
    encoder_param_count: usize,
    // decoder (stage 2)
    dec_in: Linear,
    pos_dec: ParamId,
    dec_blocks: Vec<TransformerBlock>,
    dec_ln: LayerNorm,
    head_pe: Linear,
    head_buf: Linear,
    // problem binding
    pe_codec: Box<dyn ConfigCodec>,
    buf_codec: Box<dyn ConfigCodec>,
    features: FeatureEncoder,
    engine: Arc<EvalEngine>,
}

impl Airchitect2 {
    /// Builds a model bound to `task`, fitting feature statistics on
    /// `train`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `train` is empty.
    pub fn new(cfg: &ModelConfig, task: &DseTask, train: &DseDataset) -> Airchitect2 {
        Self::with_engine(cfg, EvalEngine::shared(task.clone()), train)
    }

    /// Builds a model sharing a caller-provided [`EvalEngine`], so its
    /// metric and deployment queries land in (and reuse) the same cache
    /// as every other subsystem.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `train` is empty.
    pub fn with_engine(
        cfg: &ModelConfig,
        engine: Arc<EvalEngine>,
        train: &DseDataset,
    ) -> Airchitect2 {
        Self::with_features(cfg, engine, FeatureEncoder::fit(train))
    }

    /// Builds a model from pre-fitted feature statistics instead of a
    /// training dataset — the serving-side constructor: a restored
    /// checkpoint must reuse the statistics fitted on the *original*
    /// training split, not refit them.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn with_features(
        cfg: &ModelConfig,
        engine: Arc<EvalEngine>,
        features: FeatureEncoder,
    ) -> Airchitect2 {
        cfg.validate();
        let task = engine.task();
        let mut store = ParamStore::new(cfg.seed);
        let td = cfg.tokens * cfg.d_model;

        let embed = Linear::new(&mut store, "enc.embed", NUM_FEATURES, td, true);
        let pos_enc = store.add_zeros("enc.pos", &[td]);
        let enc_blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(&mut store, &format!("enc.blk{i}"), cfg.d_model, cfg.heads)
            })
            .collect();
        let enc_ln = LayerNorm::new(&mut store, "enc.ln", cfg.d_model);
        let enc_proj = Linear::new(&mut store, "enc.proj", cfg.d_model, cfg.d_emb, true);
        let perf_head = Linear::new(&mut store, "enc.perf", cfg.d_emb, 1, true);
        let encoder_param_count = store.len();

        let dec_in = Linear::new(&mut store, "dec.in", cfg.d_emb, td, true);
        let pos_dec = store.add_zeros("dec.pos", &[td]);
        let dec_blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(&mut store, &format!("dec.blk{i}"), cfg.d_model, cfg.heads)
            })
            .collect();
        let dec_ln = LayerNorm::new(&mut store, "dec.ln", cfg.d_model);
        let pe_codec = cfg.head.codec(task.space().num_pe_choices());
        let buf_codec = cfg.head.codec(task.space().num_buf_choices());
        let head_pe = Linear::new(
            &mut store,
            "dec.head_pe",
            cfg.d_model,
            pe_codec.width(),
            true,
        );
        let head_buf = Linear::new(
            &mut store,
            "dec.head_buf",
            cfg.d_model,
            buf_codec.width(),
            true,
        );

        Airchitect2 {
            cfg: *cfg,
            store,
            embed,
            pos_enc,
            enc_blocks,
            enc_ln,
            enc_proj,
            perf_head,
            encoder_param_count,
            dec_in,
            pos_dec,
            dec_blocks,
            dec_ln,
            head_pe,
            head_buf,
            pe_codec,
            buf_codec,
            features,
            engine,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The bound DSE task.
    pub fn task(&self) -> &DseTask {
        self.engine.task()
    }

    /// The shared evaluation substrate the model is bound to.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }

    /// The fitted feature encoder.
    pub fn feature_encoder(&self) -> &FeatureEncoder {
        &self.features
    }

    /// The PE head's codec.
    pub fn pe_codec(&self) -> &dyn ConfigCodec {
        self.pe_codec.as_ref()
    }

    /// The buffer head's codec.
    pub fn buf_codec(&self) -> &dyn ConfigCodec {
        self.buf_codec.as_ref()
    }

    /// The parameter store (shared by both stages).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store, exposed for custom training loops (the
    /// built-in trainers and the step-level benchmarks use it).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total scalar parameters — the "model size" axis of Figs. 8b / 9.
    pub fn model_size(&self) -> usize {
        self.store.num_scalars()
    }

    /// Parameters of the encoder side (frozen during stage 2).
    pub fn encoder_params(&self) -> Vec<ParamId> {
        self.store
            .iter()
            .map(|(id, _, _)| id)
            .take(self.encoder_param_count)
            .collect()
    }

    /// Parameters of the decoder side.
    pub fn decoder_params(&self) -> Vec<ParamId> {
        self.store
            .iter()
            .map(|(id, _, _)| id)
            .skip(self.encoder_param_count)
            .collect()
    }

    /// Renders a dataset into training tensors for this model's codecs.
    pub fn prepare(&self, ds: &DseDataset) -> PreparedDataset {
        PreparedDataset::build(
            ds,
            self.engine.task(),
            &self.features,
            self.pe_codec.as_ref(),
            self.buf_codec.as_ref(),
            CONTRASTIVE_BUCKETS,
        )
    }

    // ---- graph builders ---------------------------------------------------

    /// Records the encoder on `g`: features `[B, F]` → embedding
    /// `[B, d_emb]`.
    pub fn forward_encoder(&self, g: &mut Graph<'_>, x: VarId) -> VarId {
        let b = g.value(x).rows();
        let h = self.embed.forward(g, x);
        let pos = g.param(self.pos_enc);
        let h = g.add_row(h, pos);
        let mut h = g.reshape(h, &[b * self.cfg.tokens, self.cfg.d_model]);
        for blk in &self.enc_blocks {
            h = blk.forward(g, h, b, self.cfg.tokens);
        }
        let h = self.enc_ln.forward(g, h);
        let pooled = g.mean_pool_tokens(h, self.cfg.tokens);
        self.enc_proj.forward(g, pooled)
    }

    /// Records the performance-prediction head: embedding → `[B, 1]`.
    pub fn forward_perf(&self, g: &mut Graph<'_>, z: VarId) -> VarId {
        self.perf_head.forward(g, z)
    }

    /// Records the decoder: embedding `[B, d_emb]` → raw logits of the
    /// two heads (`[B, pe_width]`, `[B, buf_width]`).
    pub fn forward_decoder(&self, g: &mut Graph<'_>, z: VarId) -> (VarId, VarId) {
        let b = g.value(z).rows();
        let h = self.dec_in.forward(g, z);
        let pos = g.param(self.pos_dec);
        let h = g.add_row(h, pos);
        let mut h = g.reshape(h, &[b * self.cfg.tokens, self.cfg.d_model]);
        for blk in &self.dec_blocks {
            h = blk.forward(g, h, b, self.cfg.tokens);
        }
        let h = self.dec_ln.forward(g, h);
        let pooled = g.mean_pool_tokens(h, self.cfg.tokens);
        (
            self.head_pe.forward(g, pooled),
            self.head_buf.forward(g, pooled),
        )
    }

    // ---- inference ----------------------------------------------------------

    /// Embeddings for a feature matrix `[n, F]`, chunked to bound graph
    /// size.
    pub fn embeddings(&self, features: &Tensor) -> Tensor {
        let mut parts = Vec::new();
        let n = features.rows();
        let chunk = 512;
        let mut i = 0;
        while i < n {
            let j = (i + chunk).min(n);
            let mut g = Graph::new(&self.store);
            let x = g.constant(features.slice_rows(i, j));
            let z = self.forward_encoder(&mut g, x);
            parts.push(g.value(z).clone());
            i = j;
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat_rows(&refs)
    }

    /// Predicted (sigmoided) head outputs for an embedding matrix.
    pub fn head_outputs(&self, embeddings: &Tensor) -> (Tensor, Tensor) {
        let mut pe_parts = Vec::new();
        let mut buf_parts = Vec::new();
        let n = embeddings.rows();
        let chunk = 512;
        let mut i = 0;
        while i < n {
            let j = (i + chunk).min(n);
            let mut g = Graph::new(&self.store);
            let z = g.constant(embeddings.slice_rows(i, j));
            let (pe, buf) = self.forward_decoder(&mut g, z);
            let pe = g.sigmoid(pe);
            let buf = g.sigmoid(buf);
            pe_parts.push(g.value(pe).clone());
            buf_parts.push(g.value(buf).clone());
            i = j;
        }
        (
            Tensor::concat_rows(&pe_parts.iter().collect::<Vec<_>>()),
            Tensor::concat_rows(&buf_parts.iter().collect::<Vec<_>>()),
        )
    }

    /// One-shot prediction for a batch of DSE inputs.
    pub fn predict(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let f = self.features.encode_inputs(inputs);
        let z = self.embeddings(&f);
        self.decode_embedding_batch(&z)
    }

    /// Decodes a batch of embedding rows into design points — the hook
    /// used by the latent-space BO of Fig. 8a.
    pub fn decode_embedding_batch(&self, embeddings: &Tensor) -> Vec<DesignPoint> {
        let (pe_out, buf_out) = self.head_outputs(embeddings);
        (0..embeddings.rows())
            .map(|i| DesignPoint {
                pe_idx: self.pe_codec.decode(pe_out.row(i)),
                buf_idx: self.buf_codec.decode(buf_out.row(i)),
            })
            .collect()
    }

    /// Decodes a single embedding vector.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != d_emb`.
    pub fn decode_embedding(&self, z: &[f32]) -> DesignPoint {
        assert_eq!(z.len(), self.cfg.d_emb, "decode_embedding: wrong width");
        let t = Tensor::from_vec(z.to_vec(), &[1, z.len()]).expect("sized");
        self.decode_embedding_batch(&t)[0]
    }

    /// Predicted (de-standardised) latency score for raw inputs — the
    /// stage-1 performance predictor.
    pub fn predict_perf(&self, inputs: &[DseInput]) -> Vec<f64> {
        let f = self.features.encode_inputs(inputs);
        let z = self.embeddings(&f);
        let mut g = Graph::new(&self.store);
        let zv = g.constant(z);
        let p = self.forward_perf(&mut g, zv);
        g.value(p)
            .as_slice()
            .iter()
            .map(|&v| self.features.decode_perf(v))
            .collect()
    }

    /// Trains both stages with `cfg` and returns the loss history.
    pub fn fit(&mut self, train: &DseDataset, cfg: &TrainConfig) -> TrainReport {
        let prep = self.prepare(train);
        let stage1 = Stage1Trainer::new(cfg.clone()).run(self, &prep);
        let stage2 = Stage2Trainer::new(cfg.clone()).run(self, &prep);
        TrainReport { stage1, stage2 }
    }

    /// The evaluation interface over this trained model.
    pub fn predictor(&self) -> Predictor<'_> {
        Predictor::new(self)
    }

    /// Snapshots the trained model (config + feature statistics +
    /// parameters) for later [`Airchitect2::from_checkpoint`] restores.
    pub fn checkpoint(&self) -> crate::checkpoint::ModelCheckpoint {
        crate::checkpoint::ModelCheckpoint::from_model(self)
    }

    /// Restores a model from a [`ModelCheckpoint`] — the warm-start path
    /// of the serving layer. Predictions of the restored model are
    /// bit-identical to the model that produced the checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the checkpoint is missing a
    /// parameter or holds one with the wrong shape.
    ///
    /// [`ModelCheckpoint`]: crate::checkpoint::ModelCheckpoint
    /// [`CheckpointError`]: ai2_nn::checkpoint::CheckpointError
    pub fn from_checkpoint(
        engine: Arc<EvalEngine>,
        ck: &crate::checkpoint::ModelCheckpoint,
    ) -> Result<Airchitect2, ai2_nn::checkpoint::CheckpointError> {
        let mut model = Self::with_features(&ck.config, engine, ck.features.clone());
        ck.params.apply_to(model.store_mut())?;
        Ok(model)
    }

    /// Head kind shortcut (for reporting).
    pub fn head_kind(&self) -> HeadKind {
        self.cfg.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::GenerateConfig;

    fn tiny_setup() -> (DseTask, DseDataset, Airchitect2) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 60,
                seed: 5,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
        (task, ds, model)
    }

    #[test]
    fn forward_shapes() {
        let (_, ds, model) = tiny_setup();
        let prep = model.prepare(&ds);
        let z = model.embeddings(&prep.features);
        assert_eq!(z.shape(), &[60, model.config().d_emb]);
        let (pe, buf) = model.head_outputs(&z);
        assert_eq!(pe.shape(), &[60, model.pe_codec().width()]);
        assert_eq!(buf.shape(), &[60, model.buf_codec().width()]);
        assert!(pe.all_finite() && buf.all_finite());
        // sigmoid outputs in (0,1)
        assert!(pe.max() < 1.0 && pe.min() > 0.0);
    }

    #[test]
    fn predictions_are_valid_points() {
        let (task, ds, model) = tiny_setup();
        let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
        for p in model.predict(&inputs) {
            assert!(p.pe_idx < task.space().num_pe_choices());
            assert!(p.buf_idx < task.space().num_buf_choices());
        }
    }

    #[test]
    fn encoder_decoder_param_split_is_complete() {
        let (_, _, model) = tiny_setup();
        let e = model.encoder_params();
        let d = model.decoder_params();
        assert!(!e.is_empty() && !d.is_empty());
        assert_eq!(e.len() + d.len(), model.store().len());
        // no overlap
        for id in &e {
            assert!(!d.contains(id));
        }
        // heads belong to the decoder
        let names: Vec<&str> = d.iter().map(|&id| model.store().name(id)).collect();
        assert!(names.iter().any(|n| n.contains("head_pe")));
        assert!(names.iter().all(|n| n.starts_with("dec.")));
    }

    #[test]
    fn embeddings_are_deterministic() {
        let (_, ds, model) = tiny_setup();
        let prep = model.prepare(&ds);
        assert_eq!(
            model.embeddings(&prep.features),
            model.embeddings(&prep.features)
        );
    }

    #[test]
    fn decode_single_embedding_matches_batch() {
        let (_, ds, model) = tiny_setup();
        let prep = model.prepare(&ds);
        let z = model.embeddings(&prep.features);
        let batch = model.decode_embedding_batch(&z);
        let single = model.decode_embedding(z.row(4));
        assert_eq!(single, batch[4]);
    }

    #[test]
    fn model_size_counts_scalars() {
        let (_, _, model) = tiny_setup();
        assert_eq!(model.model_size(), model.store().num_scalars());
        assert!(model.model_size() > 1000);
    }
}
