//! The AIrchitect v2 encoder–decoder transformer.

use std::sync::Arc;

use ai2_dse::{DesignPoint, DseDataset, DseTask, EvalEngine};
use ai2_nn::layers::{LayerNorm, Linear, TransformerBlock};
use ai2_nn::quant::{QuantError, QuantSource, QuantizedBlock, QuantizedLinear};
use ai2_nn::{Arena, Graph, ParamId, ParamStore, VarId};
use ai2_tensor::Tensor;
use ai2_uov::ConfigCodec;
use ai2_workloads::generator::DseInput;

use crate::config::{HeadKind, ModelConfig};
use crate::features::{FeatureEncoder, PreparedDataset, NUM_FEATURES};
use crate::predictor::Predictor;
use crate::quant::{QuantBlob, QuantTensor};
use crate::train::{Stage1Trainer, Stage2Trainer, TrainConfig, TrainReport};

/// Number of UOV buckets used for the stage-1 contrastive class labels
/// (independent of the head codec, fixed at the paper's K = 16).
pub(crate) const CONTRASTIVE_BUCKETS: usize = 16;

/// Rows per inference graph — bounds tape size (and therefore arena
/// footprint) for very large batches.
const INFER_CHUNK: usize = 512;

/// Reusable inference workspace: an activation [`Arena`] plus the output
/// tensors of the encoder and the two decoder heads.
///
/// One scratch serves one thread. After a warm-up pass per batch shape,
/// [`Airchitect2::predict_with`] / [`Airchitect2::forward_into`] perform
/// **zero heap allocations** in the forward pass — the serving hot path
/// reuses every buffer across batches.
#[derive(Default)]
pub struct InferenceScratch {
    arena: Arena,
    emb: Tensor,
    pe_out: Tensor,
    buf_out: Tensor,
}

impl InferenceScratch {
    /// An empty workspace; buffers grow on the first pass.
    pub fn new() -> InferenceScratch {
        InferenceScratch::default()
    }

    /// Number of pooled activation buffers currently idle (diagnostics).
    pub fn pooled(&self) -> usize {
        self.arena.pooled()
    }
}

/// Int8 views of every decoder matmul weight — the runtime form of the
/// quantized checkpoint flavor (see [`crate::quant`]).
pub struct QuantizedDecoder {
    dec_in: QuantizedLinear,
    blocks: Vec<QuantizedBlock>,
    head_pe: QuantizedLinear,
    head_buf: QuantizedLinear,
}

/// The AIrchitect v2 model: a contrastively trained encoder producing the
/// intermediate representation, and a decoder with two output heads
/// (`#PEs`, buffer size) predicting Unified Ordinal Vectors.
pub struct Airchitect2 {
    cfg: ModelConfig,
    store: ParamStore,
    // encoder (stage 1)
    embed: Linear,
    pos_enc: ParamId,
    enc_blocks: Vec<TransformerBlock>,
    enc_ln: LayerNorm,
    enc_proj: Linear,
    perf_head: Linear,
    encoder_param_count: usize,
    // decoder (stage 2)
    dec_in: Linear,
    pos_dec: ParamId,
    dec_blocks: Vec<TransformerBlock>,
    dec_ln: LayerNorm,
    head_pe: Linear,
    head_buf: Linear,
    /// When set, decoder inference runs through int8 weights (the
    /// quantized checkpoint flavor).
    quant_dec: Option<QuantizedDecoder>,
    // problem binding
    pe_codec: Box<dyn ConfigCodec>,
    buf_codec: Box<dyn ConfigCodec>,
    features: FeatureEncoder,
    engine: Arc<EvalEngine>,
}

impl Airchitect2 {
    /// Builds a model bound to `task`, fitting feature statistics on
    /// `train`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `train` is empty.
    pub fn new(cfg: &ModelConfig, task: &DseTask, train: &DseDataset) -> Airchitect2 {
        Self::with_engine(cfg, EvalEngine::shared(task.clone()), train)
    }

    /// Builds a model sharing a caller-provided [`EvalEngine`], so its
    /// metric and deployment queries land in (and reuse) the same cache
    /// as every other subsystem.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `train` is empty.
    pub fn with_engine(
        cfg: &ModelConfig,
        engine: Arc<EvalEngine>,
        train: &DseDataset,
    ) -> Airchitect2 {
        Self::with_features(cfg, engine, FeatureEncoder::fit(train))
    }

    /// Builds a model from pre-fitted feature statistics instead of a
    /// training dataset — the serving-side constructor: a restored
    /// checkpoint must reuse the statistics fitted on the *original*
    /// training split, not refit them.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn with_features(
        cfg: &ModelConfig,
        engine: Arc<EvalEngine>,
        features: FeatureEncoder,
    ) -> Airchitect2 {
        cfg.validate();
        let task = engine.task();
        let mut store = ParamStore::new(cfg.seed);
        let td = cfg.tokens * cfg.d_model;

        let embed = Linear::new(&mut store, "enc.embed", NUM_FEATURES, td, true);
        let pos_enc = store.add_zeros("enc.pos", &[td]);
        let enc_blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(&mut store, &format!("enc.blk{i}"), cfg.d_model, cfg.heads)
            })
            .collect();
        let enc_ln = LayerNorm::new(&mut store, "enc.ln", cfg.d_model);
        let enc_proj = Linear::new(&mut store, "enc.proj", cfg.d_model, cfg.d_emb, true);
        let perf_head = Linear::new(&mut store, "enc.perf", cfg.d_emb, 1, true);
        let encoder_param_count = store.len();

        let dec_in = Linear::new(&mut store, "dec.in", cfg.d_emb, td, true);
        let pos_dec = store.add_zeros("dec.pos", &[td]);
        let dec_blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(&mut store, &format!("dec.blk{i}"), cfg.d_model, cfg.heads)
            })
            .collect();
        let dec_ln = LayerNorm::new(&mut store, "dec.ln", cfg.d_model);
        let pe_codec = cfg.head.codec(task.space().num_pe_choices());
        let buf_codec = cfg.head.codec(task.space().num_buf_choices());
        let head_pe = Linear::new(
            &mut store,
            "dec.head_pe",
            cfg.d_model,
            pe_codec.width(),
            true,
        );
        let head_buf = Linear::new(
            &mut store,
            "dec.head_buf",
            cfg.d_model,
            buf_codec.width(),
            true,
        );

        Airchitect2 {
            cfg: *cfg,
            store,
            embed,
            pos_enc,
            enc_blocks,
            enc_ln,
            enc_proj,
            perf_head,
            encoder_param_count,
            dec_in,
            pos_dec,
            dec_blocks,
            dec_ln,
            head_pe,
            head_buf,
            quant_dec: None,
            pe_codec,
            buf_codec,
            features,
            engine,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The bound DSE task.
    pub fn task(&self) -> &DseTask {
        self.engine.task()
    }

    /// The shared evaluation substrate the model is bound to.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }

    /// The fitted feature encoder.
    pub fn feature_encoder(&self) -> &FeatureEncoder {
        &self.features
    }

    /// The PE head's codec.
    pub fn pe_codec(&self) -> &dyn ConfigCodec {
        self.pe_codec.as_ref()
    }

    /// The buffer head's codec.
    pub fn buf_codec(&self) -> &dyn ConfigCodec {
        self.buf_codec.as_ref()
    }

    /// The parameter store (shared by both stages).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store, exposed for custom training loops (the
    /// built-in trainers and the step-level benchmarks use it).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total scalar parameters — the "model size" axis of Figs. 8b / 9.
    pub fn model_size(&self) -> usize {
        self.store.num_scalars()
    }

    /// Parameters of the encoder side (frozen during stage 2).
    pub fn encoder_params(&self) -> Vec<ParamId> {
        self.store
            .iter()
            .map(|(id, _, _)| id)
            .take(self.encoder_param_count)
            .collect()
    }

    /// Parameters of the decoder side.
    pub fn decoder_params(&self) -> Vec<ParamId> {
        self.store
            .iter()
            .map(|(id, _, _)| id)
            .skip(self.encoder_param_count)
            .collect()
    }

    /// Renders a dataset into training tensors for this model's codecs.
    pub fn prepare(&self, ds: &DseDataset) -> PreparedDataset {
        PreparedDataset::build(
            ds,
            self.engine.task(),
            &self.features,
            self.pe_codec.as_ref(),
            self.buf_codec.as_ref(),
            CONTRASTIVE_BUCKETS,
        )
    }

    // ---- graph builders ---------------------------------------------------

    /// Records the encoder on `g`: features `[B, F]` → embedding
    /// `[B, d_emb]`.
    pub fn forward_encoder(&self, g: &mut Graph<'_>, x: VarId) -> VarId {
        let b = g.value(x).rows();
        let h = self.embed.forward(g, x);
        let pos = g.param(self.pos_enc);
        let h = g.add_row(h, pos);
        let mut h = g.reshape(h, &[b * self.cfg.tokens, self.cfg.d_model]);
        for blk in &self.enc_blocks {
            h = blk.forward(g, h, b, self.cfg.tokens);
        }
        let h = self.enc_ln.forward(g, h);
        let pooled = g.mean_pool_tokens(h, self.cfg.tokens);
        self.enc_proj.forward(g, pooled)
    }

    /// Records the performance-prediction head: embedding → `[B, 1]`.
    pub fn forward_perf(&self, g: &mut Graph<'_>, z: VarId) -> VarId {
        self.perf_head.forward(g, z)
    }

    /// Records the decoder: embedding `[B, d_emb]` → raw logits of the
    /// two heads (`[B, pe_width]`, `[B, buf_width]`).
    pub fn forward_decoder(&self, g: &mut Graph<'_>, z: VarId) -> (VarId, VarId) {
        let b = g.value(z).rows();
        let h = self.dec_in.forward(g, z);
        let pos = g.param(self.pos_dec);
        let h = g.add_row(h, pos);
        let mut h = g.reshape(h, &[b * self.cfg.tokens, self.cfg.d_model]);
        for blk in &self.dec_blocks {
            h = blk.forward(g, h, b, self.cfg.tokens);
        }
        let h = self.dec_ln.forward(g, h);
        let pooled = g.mean_pool_tokens(h, self.cfg.tokens);
        (
            self.head_pe.forward(g, pooled),
            self.head_buf.forward(g, pooled),
        )
    }

    /// Records the decoder with int8 matmul weights in place of the `f32`
    /// ones (inference-only; same structure as
    /// [`Airchitect2::forward_decoder`]).
    pub fn forward_decoder_quant(
        &self,
        g: &mut Graph<'_>,
        z: VarId,
        q: &QuantizedDecoder,
    ) -> (VarId, VarId) {
        let b = g.value(z).rows();
        let h = self.dec_in.forward_quant(g, z, &q.dec_in);
        let pos = g.param(self.pos_dec);
        let h = g.add_row(h, pos);
        let mut h = g.reshape(h, &[b * self.cfg.tokens, self.cfg.d_model]);
        for (blk, qb) in self.dec_blocks.iter().zip(&q.blocks) {
            h = blk.forward_quant(g, h, b, self.cfg.tokens, qb);
        }
        let h = self.dec_ln.forward(g, h);
        let pooled = g.mean_pool_tokens(h, self.cfg.tokens);
        (
            self.head_pe.forward_quant(g, pooled, &q.head_pe),
            self.head_buf.forward_quant(g, pooled, &q.head_buf),
        )
    }

    // ---- quantized decoder flavor -----------------------------------------

    fn build_quant_decoder(
        &self,
        src: &mut QuantSource<'_>,
    ) -> Result<QuantizedDecoder, QuantError> {
        Ok(QuantizedDecoder {
            dec_in: self.dec_in.quantized(&self.store, src)?,
            blocks: self
                .dec_blocks
                .iter()
                .map(|b| b.quantized(&self.store, src))
                .collect::<Result<Vec<_>, _>>()?,
            head_pe: self.head_pe.quantized(&self.store, src)?,
            head_buf: self.head_buf.quantized(&self.store, src)?,
        })
    }

    /// Switches decoder inference to freshly quantized int8 weights and
    /// returns the serializable blob (deterministic: the same `f32`
    /// weights always quantize to the same blob).
    pub fn quantize_decoder(&mut self) -> QuantBlob {
        let mut blob = QuantBlob::default();
        let qd = self
            .build_quant_decoder(&mut |name: &str, w: &Tensor| {
                let q = QuantizedLinear::from_weight(w);
                blob.tensors
                    .insert(name.to_string(), QuantTensor::from_linear(&q));
                Ok(q)
            })
            .expect("fresh quantization cannot fail");
        self.quant_dec = Some(qd);
        blob
    }

    /// Switches decoder inference to int8 weights restored from `blob` —
    /// never re-quantized, so every replica restored from one published
    /// blob answers bit-identically.
    ///
    /// # Errors
    ///
    /// Returns a [`QuantError`] if the blob is missing a decoder weight
    /// or holds one with the wrong dimensions.
    pub fn restore_quantized_decoder(&mut self, blob: &QuantBlob) -> Result<(), QuantError> {
        let qd = self.build_quant_decoder(&mut |name: &str, _w: &Tensor| {
            blob.tensors
                .get(name)
                .map(QuantTensor::to_linear)
                .ok_or_else(|| QuantError::Missing(name.to_string()))
        })?;
        self.quant_dec = Some(qd);
        Ok(())
    }

    /// Reverts decoder inference to the full-precision `f32` weights.
    pub fn clear_quantized_decoder(&mut self) {
        self.quant_dec = None;
    }

    /// Whether the decoder currently serves through int8 weights.
    pub fn quantized_decoder(&self) -> bool {
        self.quant_dec.is_some()
    }

    // ---- inference ----------------------------------------------------------

    /// Embeddings for a feature matrix `[n, F]` computed into `scratch`
    /// (chunked to bound graph size). Warm calls allocate nothing.
    pub fn embeddings_into<'a>(
        &self,
        features: &Tensor,
        scratch: &'a mut InferenceScratch,
    ) -> &'a Tensor {
        let n = features.rows();
        let de = self.cfg.d_emb;
        scratch.emb.reset_zeros(&[n, de]);
        let mut i = 0;
        while i < n {
            let j = (i + INFER_CHUNK).min(n);
            let arena = std::mem::take(&mut scratch.arena);
            let mut g = Graph::with_arena(&self.store, arena);
            let x = g.input_rows(features, i, j);
            let z = self.forward_encoder(&mut g, x);
            scratch.emb.as_mut_slice()[i * de..j * de].copy_from_slice(g.value(z).as_slice());
            scratch.arena = g.into_arena();
            i = j;
        }
        &scratch.emb
    }

    /// Decoder heads over the embeddings already sitting in
    /// `scratch.emb`; fills `scratch.pe_out` / `scratch.buf_out`.
    fn head_outputs_scratch(&self, scratch: &mut InferenceScratch) {
        let n = scratch.emb.rows();
        let (pw, bw) = (self.pe_codec.width(), self.buf_codec.width());
        scratch.pe_out.reset_zeros(&[n, pw]);
        scratch.buf_out.reset_zeros(&[n, bw]);
        let mut i = 0;
        while i < n {
            let j = (i + INFER_CHUNK).min(n);
            let arena = std::mem::take(&mut scratch.arena);
            let mut g = Graph::with_arena(&self.store, arena);
            let z = g.input_rows(&scratch.emb, i, j);
            let (pe, buf) = match &self.quant_dec {
                Some(q) => self.forward_decoder_quant(&mut g, z, q),
                None => self.forward_decoder(&mut g, z),
            };
            let pe = g.sigmoid(pe);
            let buf = g.sigmoid(buf);
            scratch.pe_out.as_mut_slice()[i * pw..j * pw].copy_from_slice(g.value(pe).as_slice());
            scratch.buf_out.as_mut_slice()[i * bw..j * bw].copy_from_slice(g.value(buf).as_slice());
            scratch.arena = g.into_arena();
            i = j;
        }
    }

    /// Predicted (sigmoided) head outputs for an embedding matrix,
    /// computed into `scratch`. Warm calls allocate nothing.
    pub fn head_outputs_into<'a>(
        &self,
        embeddings: &Tensor,
        scratch: &'a mut InferenceScratch,
    ) -> (&'a Tensor, &'a Tensor) {
        scratch.emb.reset_zeros(embeddings.shape());
        scratch
            .emb
            .as_mut_slice()
            .copy_from_slice(embeddings.as_slice());
        self.head_outputs_scratch(scratch);
        (&scratch.pe_out, &scratch.buf_out)
    }

    /// The full serving forward pass — features `[n, F]` → sigmoided
    /// head outputs — entirely inside `scratch`'s pooled buffers.
    pub fn forward_into<'a>(
        &self,
        features: &Tensor,
        scratch: &'a mut InferenceScratch,
    ) -> (&'a Tensor, &'a Tensor) {
        let mut sp = ai2_obs::local_span("core.forward", "model");
        if sp.is_recording() {
            sp.arg("rows", features.rows());
            sp.arg(
                "flavor",
                if self.quant_dec.is_some() {
                    "int8"
                } else {
                    "f32"
                },
            );
        }
        self.embeddings_into(features, scratch);
        self.head_outputs_scratch(scratch);
        (&scratch.pe_out, &scratch.buf_out)
    }

    /// Embeddings for a feature matrix `[n, F]`, chunked to bound graph
    /// size.
    pub fn embeddings(&self, features: &Tensor) -> Tensor {
        let mut scratch = InferenceScratch::new();
        self.embeddings_into(features, &mut scratch);
        scratch.emb
    }

    /// Predicted (sigmoided) head outputs for an embedding matrix.
    pub fn head_outputs(&self, embeddings: &Tensor) -> (Tensor, Tensor) {
        let mut scratch = InferenceScratch::new();
        self.head_outputs_into(embeddings, &mut scratch);
        (scratch.pe_out, scratch.buf_out)
    }

    /// One-shot prediction for a batch of DSE inputs.
    pub fn predict(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
        let mut scratch = InferenceScratch::new();
        self.predict_with(inputs, &mut scratch)
    }

    /// [`Airchitect2::predict`] over a caller-held workspace — the
    /// serving hot path. The forward pass allocates nothing once
    /// `scratch` is warm for the batch shape.
    pub fn predict_with(
        &self,
        inputs: &[DseInput],
        scratch: &mut InferenceScratch,
    ) -> Vec<DesignPoint> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let mut sp = ai2_obs::local_span("core.predict", "model");
        if sp.is_recording() {
            sp.arg("batch", inputs.len());
        }
        let f = self.features.encode_inputs(inputs);
        self.forward_into(&f, scratch);
        (0..scratch.emb.rows())
            .map(|i| DesignPoint {
                pe_idx: self.pe_codec.decode(scratch.pe_out.row(i)),
                buf_idx: self.buf_codec.decode(scratch.buf_out.row(i)),
            })
            .collect()
    }

    /// Decodes a batch of embedding rows into design points — the hook
    /// used by the latent-space BO of Fig. 8a.
    pub fn decode_embedding_batch(&self, embeddings: &Tensor) -> Vec<DesignPoint> {
        let (pe_out, buf_out) = self.head_outputs(embeddings);
        (0..embeddings.rows())
            .map(|i| DesignPoint {
                pe_idx: self.pe_codec.decode(pe_out.row(i)),
                buf_idx: self.buf_codec.decode(buf_out.row(i)),
            })
            .collect()
    }

    /// Decodes a single embedding vector.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != d_emb`.
    pub fn decode_embedding(&self, z: &[f32]) -> DesignPoint {
        assert_eq!(z.len(), self.cfg.d_emb, "decode_embedding: wrong width");
        let t = Tensor::from_vec(z.to_vec(), &[1, z.len()]).expect("sized");
        self.decode_embedding_batch(&t)[0]
    }

    /// Predicted (de-standardised) latency score for raw inputs — the
    /// stage-1 performance predictor.
    pub fn predict_perf(&self, inputs: &[DseInput]) -> Vec<f64> {
        let f = self.features.encode_inputs(inputs);
        let z = self.embeddings(&f);
        let mut g = Graph::new(&self.store);
        let zv = g.constant(z);
        let p = self.forward_perf(&mut g, zv);
        g.value(p)
            .as_slice()
            .iter()
            .map(|&v| self.features.decode_perf(v))
            .collect()
    }

    /// Trains both stages with `cfg` and returns the loss history.
    pub fn fit(&mut self, train: &DseDataset, cfg: &TrainConfig) -> TrainReport {
        let prep = self.prepare(train);
        let stage1 = Stage1Trainer::new(cfg.clone()).run(self, &prep);
        let stage2 = Stage2Trainer::new(cfg.clone()).run(self, &prep);
        TrainReport { stage1, stage2 }
    }

    /// The evaluation interface over this trained model.
    pub fn predictor(&self) -> Predictor<'_> {
        Predictor::new(self)
    }

    /// Snapshots the trained model (config + feature statistics +
    /// parameters) for later [`Airchitect2::from_checkpoint`] restores.
    pub fn checkpoint(&self) -> crate::checkpoint::ModelCheckpoint {
        crate::checkpoint::ModelCheckpoint::from_model(self)
    }

    /// Restores a model from a [`ModelCheckpoint`] — the warm-start path
    /// of the serving layer. Predictions of the restored model are
    /// bit-identical to the model that produced the checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the checkpoint is missing a
    /// parameter or holds one with the wrong shape.
    ///
    /// [`ModelCheckpoint`]: crate::checkpoint::ModelCheckpoint
    /// [`CheckpointError`]: ai2_nn::checkpoint::CheckpointError
    pub fn from_checkpoint(
        engine: Arc<EvalEngine>,
        ck: &crate::checkpoint::ModelCheckpoint,
    ) -> Result<Airchitect2, ai2_nn::checkpoint::CheckpointError> {
        let mut model = Self::with_features(&ck.config, engine, ck.features.clone());
        ck.params.apply_to(model.store_mut())?;
        if let Some(blob) = &ck.flavor {
            model.restore_quantized_decoder(blob).map_err(|e| match e {
                QuantError::Missing(n) => {
                    ai2_nn::checkpoint::CheckpointError::MissingParam(format!("quantized:{n}"))
                }
                QuantError::ShapeMismatch {
                    name,
                    expected,
                    found,
                } => ai2_nn::checkpoint::CheckpointError::ShapeMismatch {
                    name,
                    expected: vec![expected.0, expected.1],
                    found: vec![found.0, found.1],
                },
            })?;
        }
        Ok(model)
    }

    /// Head kind shortcut (for reporting).
    pub fn head_kind(&self) -> HeadKind {
        self.cfg.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::GenerateConfig;

    fn tiny_setup() -> (DseTask, DseDataset, Airchitect2) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 60,
                seed: 5,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        let model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
        (task, ds, model)
    }

    #[test]
    fn forward_shapes() {
        let (_, ds, model) = tiny_setup();
        let prep = model.prepare(&ds);
        let z = model.embeddings(&prep.features);
        assert_eq!(z.shape(), &[60, model.config().d_emb]);
        let (pe, buf) = model.head_outputs(&z);
        assert_eq!(pe.shape(), &[60, model.pe_codec().width()]);
        assert_eq!(buf.shape(), &[60, model.buf_codec().width()]);
        assert!(pe.all_finite() && buf.all_finite());
        // sigmoid outputs in (0,1)
        assert!(pe.max() < 1.0 && pe.min() > 0.0);
    }

    #[test]
    fn predictions_are_valid_points() {
        let (task, ds, model) = tiny_setup();
        let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
        for p in model.predict(&inputs) {
            assert!(p.pe_idx < task.space().num_pe_choices());
            assert!(p.buf_idx < task.space().num_buf_choices());
        }
    }

    #[test]
    fn encoder_decoder_param_split_is_complete() {
        let (_, _, model) = tiny_setup();
        let e = model.encoder_params();
        let d = model.decoder_params();
        assert!(!e.is_empty() && !d.is_empty());
        assert_eq!(e.len() + d.len(), model.store().len());
        // no overlap
        for id in &e {
            assert!(!d.contains(id));
        }
        // heads belong to the decoder
        let names: Vec<&str> = d.iter().map(|&id| model.store().name(id)).collect();
        assert!(names.iter().any(|n| n.contains("head_pe")));
        assert!(names.iter().all(|n| n.starts_with("dec.")));
    }

    #[test]
    fn embeddings_are_deterministic() {
        let (_, ds, model) = tiny_setup();
        let prep = model.prepare(&ds);
        assert_eq!(
            model.embeddings(&prep.features),
            model.embeddings(&prep.features)
        );
    }

    #[test]
    fn decode_single_embedding_matches_batch() {
        let (_, ds, model) = tiny_setup();
        let prep = model.prepare(&ds);
        let z = model.embeddings(&prep.features);
        let batch = model.decode_embedding_batch(&z);
        let single = model.decode_embedding(z.row(4));
        assert_eq!(single, batch[4]);
    }

    #[test]
    fn model_size_counts_scalars() {
        let (_, _, model) = tiny_setup();
        assert_eq!(model.model_size(), model.store().num_scalars());
        assert!(model.model_size() > 1000);
    }

    #[test]
    fn warm_scratch_matches_fresh_prediction() {
        let (_, ds, model) = tiny_setup();
        let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
        let fresh = model.predict(&inputs);
        let mut scratch = InferenceScratch::new();
        // Warm the workspace, then predict repeatedly — results must not
        // drift across reuses and must equal the fresh-workspace path.
        for _ in 0..3 {
            assert_eq!(model.predict_with(&inputs, &mut scratch), fresh);
        }
        assert!(scratch.pooled() > 0, "arena should hold recycled buffers");
        // A smaller batch through the same (oversized) scratch still
        // agrees with a fresh run.
        let small = &inputs[..7];
        assert_eq!(
            model.predict_with(small, &mut scratch),
            model.predict(small)
        );
    }

    #[test]
    fn quantized_decoder_stays_rank_consistent_and_valid() {
        let (task, ds, mut model) = tiny_setup();
        let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
        let f32_points = model.predict(&inputs);
        model.quantize_decoder();
        assert!(model.quantized_decoder());
        let q_points = model.predict(&inputs);
        assert_eq!(q_points.len(), f32_points.len());
        for p in &q_points {
            assert!(p.pe_idx < task.space().num_pe_choices());
            assert!(p.buf_idx < task.space().num_buf_choices());
        }
        model.clear_quantized_decoder();
        assert_eq!(model.predict(&inputs), f32_points);
    }

    #[test]
    fn restored_blob_is_bit_identical_to_publisher() {
        let (_, ds, mut model) = tiny_setup();
        let prep = model.prepare(&ds);
        let z = model.embeddings(&prep.features);
        let blob = model.quantize_decoder();
        assert!(!blob.is_empty());
        let (pe_a, buf_a) = model.head_outputs(&z);

        // An independent model instance restored from the stored i8 data
        // (no re-quantization) must answer bit-for-bit identically.
        let mut other = Airchitect2::with_features(
            model.config(),
            std::sync::Arc::clone(model.engine()),
            model.feature_encoder().clone(),
        );
        ai2_nn::checkpoint::Checkpoint::from_store(model.store())
            .apply_to(other.store_mut())
            .unwrap();
        other.restore_quantized_decoder(&blob).unwrap();
        let (pe_b, buf_b) = other.head_outputs(&z);
        assert_eq!(pe_a, pe_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn restore_from_incomplete_blob_errors() {
        let (_, _, mut model) = tiny_setup();
        let mut blob = model.quantize_decoder();
        let key = blob.tensors.keys().next().unwrap().clone();
        blob.tensors.remove(&key);
        assert!(model.restore_quantized_decoder(&blob).is_err());
    }
}
