//! Two-stage training: contrastive encoder (stage 1), frozen-encoder
//! decoder with unification loss (stage 2).

use ai2_nn::optim::{Adam, LrSchedule, Optimizer};
use ai2_nn::Graph;
use ai2_tensor::{rng, Tensor};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::config::HeadKind;
use crate::features::PreparedDataset;
use crate::model::Airchitect2;

/// Hyperparameters of both training stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Stage-1 (encoder) epochs — 500 in the paper.
    pub stage1_epochs: usize,
    /// Stage-2 (decoder) epochs — 100 in the paper.
    pub stage2_epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Stage-1 learning rate.
    pub lr_stage1: f32,
    /// Stage-2 learning rate.
    pub lr_stage2: f32,
    /// Contrastive temperature τ (0.4 in the paper).
    pub tau: f32,
    /// Whether the stage-1 objective includes the contrastive term `L_C`
    /// (Table II ablation switch).
    pub use_contrastive: bool,
    /// Whether the stage-1 objective includes the L1 performance term
    /// `L_perf` (Table II ablation switch). With both switches off the
    /// encoder trains on a plain L2 performance loss, matching the
    /// paper's "only an L2-loss term" baseline row.
    pub use_perf: bool,
    /// Unification-loss α (0.75 in the paper).
    pub alpha: f32,
    /// Unification-loss γ (1 in the paper).
    pub gamma: f32,
    /// Global-norm gradient clip (0 disables).
    pub grad_clip: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            stage1_epochs: 60,
            stage2_epochs: 80,
            batch_size: 256,
            lr_stage1: 2e-3,
            lr_stage2: 2e-3,
            tau: 0.4,
            use_contrastive: true,
            use_perf: true,
            alpha: 0.75,
            gamma: 1.0,
            grad_clip: 5.0,
            seed: 0x7EA1,
        }
    }
}

impl TrainConfig {
    /// Fast preset for unit tests (few epochs, small batches).
    pub fn quick() -> Self {
        TrainConfig {
            stage1_epochs: 8,
            stage2_epochs: 12,
            batch_size: 64,
            ..Self::default()
        }
    }

    /// The paper's full schedule (500 + 100 epochs). CPU-expensive; used
    /// by the experiment binaries when `--full` is requested.
    pub fn paper() -> Self {
        TrainConfig {
            stage1_epochs: 500,
            stage2_epochs: 100,
            ..Self::default()
        }
    }

    /// Returns a copy with the stage-1 ablation switches set — the four
    /// rows of Table II.
    pub fn with_stage1_losses(mut self, contrastive: bool, perf: bool) -> Self {
        self.use_contrastive = contrastive;
        self.use_perf = perf;
        self
    }
}

/// Loss history of a full two-stage run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean stage-1 loss per epoch.
    pub stage1: Vec<f32>,
    /// Mean stage-2 loss per epoch.
    pub stage2: Vec<f32>,
}

/// Shuffled minibatch index lists for one epoch. Every sample index
/// appears in exactly one batch — `chunks` keeps the final partial batch
/// when `n % batch != 0` (pinned by `epoch_batches_partition_every_index`
/// below). Batch sizes below 2 are widened to 2: the contrastive loss
/// needs at least one in-batch pair to contrast against.
fn epoch_batches(n: usize, batch: usize, rng: &mut rand::rngs::StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch.max(2)).map(|c| c.to_vec()).collect()
}

/// Stage-1 trainer: encoder + performance head with
/// `L_stage1 = L_C + L_perf` (Eq. 1 + L1), or the ablation variants of
/// Table II.
#[derive(Debug, Clone)]
pub struct Stage1Trainer {
    cfg: TrainConfig,
}

impl Stage1Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        Stage1Trainer { cfg }
    }

    /// Runs stage 1, updating the model's encoder parameters in place.
    /// Returns the mean loss per epoch.
    pub fn run(&self, model: &mut Airchitect2, prep: &PreparedDataset) -> Vec<f32> {
        let cfg = &self.cfg;
        let mut opt = Adam::new(cfg.lr_stage1);
        let schedule = LrSchedule::Cosine {
            min_lr: cfg.lr_stage1 * 0.05,
            total_epochs: cfg.stage1_epochs,
        };
        let mut r = rng::seeded(cfg.seed);
        let mut history = Vec::with_capacity(cfg.stage1_epochs);
        for epoch in 0..cfg.stage1_epochs {
            opt.set_learning_rate(schedule.lr_at(cfg.lr_stage1, epoch));
            let mut epoch_loss = 0.0f64;
            let batches = epoch_batches(prep.len(), cfg.batch_size, &mut r);
            let num_batches = batches.len();
            for idx in batches {
                let batch = prep.batch(&idx);
                let mut g = Graph::new(model.store());
                let x = g.constant(batch.features);
                let z = model.forward_encoder(&mut g, x);
                let mut loss = None;
                if cfg.use_contrastive {
                    let zn = g.normalize_rows(z);
                    let lc = g.info_nce_loss(zn, &batch.labels, cfg.tau);
                    loss = Some(lc);
                }
                if cfg.use_perf {
                    let p = model.forward_perf(&mut g, z);
                    let lp = g.l1_loss(p, batch.perf.clone());
                    loss = Some(match loss {
                        Some(l) => g.add(l, lp),
                        None => lp,
                    });
                }
                let loss = loss.unwrap_or_else(|| {
                    // ablation baseline: plain L2 on the performance target
                    let p = model.forward_perf(&mut g, z);
                    g.mse_loss(p, batch.perf.clone())
                });
                epoch_loss += g.scalar(loss) as f64;
                let mut grads = g.backward(loss);
                clip(&mut grads, cfg.grad_clip);
                drop(g);
                opt.step(model.store_mut(), &grads);
            }
            history.push((epoch_loss / num_batches.max(1) as f64) as f32);
        }
        history
    }
}

/// Stage-2 trainer: decoder + output heads on frozen encoder embeddings.
///
/// The encoder's weights never enter the stage-2 tape: embeddings are
/// precomputed once (they are constants while the encoder is frozen) and
/// fed to the decoder as inputs, which is both faithful to the paper
/// ("keeping the encoder's weights fixed to prevent the backpropagation
/// of gradients") and much faster.
#[derive(Debug, Clone)]
pub struct Stage2Trainer {
    cfg: TrainConfig,
}

impl Stage2Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        Stage2Trainer { cfg }
    }

    /// Runs stage 2, updating the decoder parameters in place. Returns
    /// the mean loss per epoch.
    pub fn run(&self, model: &mut Airchitect2, prep: &PreparedDataset) -> Vec<f32> {
        let cfg = &self.cfg;
        let embeddings = model.embeddings(&prep.features);
        let encoder_before: Vec<Tensor> = model
            .encoder_params()
            .iter()
            .map(|&id| model.store().get(id).clone())
            .collect();

        let mut opt = Adam::new(cfg.lr_stage2);
        let schedule = LrSchedule::Cosine {
            min_lr: cfg.lr_stage2 * 0.05,
            total_epochs: cfg.stage2_epochs,
        };
        let mut r = rng::seeded(cfg.seed ^ 0x5a5a);
        let head = model.head_kind();
        let mut history = Vec::with_capacity(cfg.stage2_epochs);
        for epoch in 0..cfg.stage2_epochs {
            opt.set_learning_rate(schedule.lr_at(cfg.lr_stage2, epoch));
            let mut epoch_loss = 0.0f64;
            let batches = epoch_batches(prep.len(), cfg.batch_size, &mut r);
            let num_batches = batches.len();
            for idx in batches {
                let batch = prep.batch(&idx);
                let z_rows: Vec<Tensor> = idx
                    .iter()
                    .map(|&i| Tensor::from_slice(embeddings.row(i)))
                    .collect();
                let z = Tensor::stack_rows(&z_rows);
                let mut g = Graph::new(model.store());
                let zv = g.constant(z);
                let (pe_logits, buf_logits) = model.forward_decoder(&mut g, zv);
                let l_pe = head_loss(
                    &mut g,
                    head,
                    cfg,
                    pe_logits,
                    &batch.pe_encoded,
                    &batch.pe_targets,
                );
                let l_buf = head_loss(
                    &mut g,
                    head,
                    cfg,
                    buf_logits,
                    &batch.buf_encoded,
                    &batch.buf_targets,
                );
                let loss = g.add(l_pe, l_buf);
                epoch_loss += g.scalar(loss) as f64;
                let mut grads = g.backward(loss);
                clip(&mut grads, cfg.grad_clip);
                drop(g);
                opt.step(model.store_mut(), &grads);
            }
            history.push((epoch_loss / num_batches.max(1) as f64) as f32);
        }

        // invariant: stage 2 must not have touched the encoder
        for (id, before) in model.encoder_params().iter().zip(&encoder_before) {
            debug_assert_eq!(
                model.store().get(*id),
                before,
                "stage 2 modified frozen encoder parameter {}",
                model.store().name(*id)
            );
        }
        history
    }
}

/// Per-head loss dispatch: UOV → unification loss (Eq. 3),
/// classification → softmax cross-entropy, regression → MSE on the
/// sigmoid output.
fn head_loss(
    g: &mut Graph<'_>,
    head: HeadKind,
    cfg: &TrainConfig,
    logits: ai2_nn::VarId,
    encoded: &Tensor,
    targets: &[usize],
) -> ai2_nn::VarId {
    match head {
        HeadKind::Uov { .. } => g.unification_loss(logits, encoded.clone(), cfg.alpha, cfg.gamma),
        HeadKind::Classification => g.cross_entropy_loss(logits, targets),
        HeadKind::Regression => {
            let y = g.sigmoid(logits);
            g.mse_loss(y, encoded.clone())
        }
    }
}

fn clip(grads: &mut ai2_nn::Gradients, max_norm: f32) {
    if max_norm > 0.0 {
        let n = grads.global_norm();
        if n > max_norm {
            grads.scale_all(max_norm / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use ai2_dse::{DseDataset, DseTask, GenerateConfig};

    fn setup(n: usize) -> (DseTask, DseDataset) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: n,
                seed: 9,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        (task, ds)
    }

    #[test]
    fn epoch_batches_partition_every_index() {
        // exhaustive over small (n, batch) combinations including every
        // n % batch != 0 case: each sample index must appear exactly
        // once per epoch — a dropped final partial batch would silently
        // starve up to batch-1 samples of gradient signal every epoch
        let mut r = rng::seeded(0xBA7C);
        for n in 1..=33usize {
            for batch in 1..=9usize {
                let batches = epoch_batches(n, batch, &mut r);
                let effective = batch.max(2);
                assert_eq!(
                    batches.len(),
                    n.div_ceil(effective),
                    "n {n} batch {batch}: wrong batch count"
                );
                assert!(
                    batches.iter().all(|b| !b.is_empty()),
                    "n {n} batch {batch}: empty batch"
                );
                assert!(
                    batches.iter().all(|b| b.len() <= effective),
                    "n {n} batch {batch}: oversized batch"
                );
                let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..n).collect::<Vec<_>>(),
                    "n {n} batch {batch}: indices not a permutation of 0..n"
                );
            }
        }
    }

    #[test]
    fn stage1_loss_decreases() {
        let (task, ds) = setup(200);
        let mut model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
        let prep = model.prepare(&ds);
        let cfg = TrainConfig {
            stage1_epochs: 10,
            batch_size: 64,
            ..TrainConfig::default()
        };
        let hist = Stage1Trainer::new(cfg).run(&mut model, &prep);
        assert_eq!(hist.len(), 10);
        let first = hist[0];
        let last = *hist.last().unwrap();
        assert!(
            last < first,
            "stage-1 loss did not decrease: {first} → {last}"
        );
        assert!(hist.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn stage2_loss_decreases_and_encoder_frozen() {
        let (task, ds) = setup(200);
        let mut model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
        let prep = model.prepare(&ds);
        let cfg = TrainConfig::quick();
        Stage1Trainer::new(cfg.clone()).run(&mut model, &prep);
        let enc_before: Vec<_> = model
            .encoder_params()
            .iter()
            .map(|&id| model.store().get(id).clone())
            .collect();
        let hist = Stage2Trainer::new(cfg).run(&mut model, &prep);
        assert!(
            hist.last().unwrap() < &hist[0],
            "stage-2 loss did not decrease"
        );
        for (id, before) in model.encoder_params().iter().zip(&enc_before) {
            assert_eq!(model.store().get(*id), before, "encoder changed in stage 2");
        }
    }

    #[test]
    fn ablation_switches_produce_different_models() {
        let (task, ds) = setup(120);
        let run = |contrastive: bool, perf: bool| {
            let mut model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds);
            let prep = model.prepare(&ds);
            let cfg = TrainConfig {
                stage1_epochs: 4,
                batch_size: 64,
                ..TrainConfig::default()
            }
            .with_stage1_losses(contrastive, perf);
            Stage1Trainer::new(cfg).run(&mut model, &prep);
            model.embeddings(&prep.features)
        };
        let both = run(true, true);
        let none = run(false, false);
        assert!(
            both.max_abs_diff(&none) > 1e-4,
            "ablation switches had no effect on the embedding"
        );
    }

    #[test]
    fn training_with_classification_head_works() {
        let (task, ds) = setup(150);
        let cfg_model = ModelConfig {
            head: crate::HeadKind::Classification,
            ..ModelConfig::tiny()
        };
        let mut model = Airchitect2::new(&cfg_model, &task, &ds);
        let report = model.fit(&ds, &TrainConfig::quick());
        assert!(report.stage2.last().unwrap().is_finite());
        let acc = model.predictor().accuracy(&ds);
        assert!(acc >= 0.0);
    }

    #[test]
    fn quick_fit_learns_better_than_untrained() {
        let (task, ds) = setup(800);
        let (train, test) = ds.split(0.8, 11);
        let mut model = Airchitect2::new(&ModelConfig::tiny(), &task, &train);
        let untrained_ratio = model.predictor().latency_ratio(&test);
        let untrained_acc = model.predictor().accuracy(&test);
        let cfg = TrainConfig {
            stage1_epochs: 20,
            stage2_epochs: 30,
            batch_size: 64,
            ..TrainConfig::default()
        };
        model.fit(&train, &cfg);
        let trained_ratio = model.predictor().latency_ratio(&test);
        let trained_acc = model.predictor().accuracy(&test);
        // latency quality is the robust signal for a short run; bucket
        // accuracy should also move off its untrained value
        assert!(
            trained_ratio < untrained_ratio || trained_acc > untrained_acc + 5.0,
            "training did not help: ratio {untrained_ratio} → {trained_ratio}, \
             acc {untrained_acc} → {trained_acc}"
        );
    }
}
