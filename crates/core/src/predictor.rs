//! Evaluation of one-shot predictions: exact-match accuracy (the paper's
//! Tables II/III metric) and latency quality (how close the predicted
//! configuration's latency is to the oracle optimum).
//!
//! All metrics of one method over one dataset come from a **single**
//! `predict_points` forward pass ([`evaluate_of`] → [`EvalReport`]),
//! and every cost query flows through the shared
//! [`EvalEngine`] — so scoring four metrics costs one batched inference
//! plus cached cost lookups, not four inferences and four cost sweeps.

use ai2_dse::{DesignPoint, DseDataset, EvalEngine};
use ai2_uov::UovCodec;
use ai2_workloads::generator::DseInput;

use crate::model::{Airchitect2, CONTRASTIVE_BUCKETS};

/// Evaluation interface over a trained [`Airchitect2`] (or any method
/// exposing per-input design-point predictions via [`PredictFn`]).
#[derive(Clone, Copy)]
pub struct Predictor<'m> {
    model: &'m Airchitect2,
}

/// Any one-shot DSE method: inputs → recommended design points. Allows
/// the baselines to reuse the same metrics.
pub trait PredictFn {
    /// Recommends one design point per input.
    fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint>;
}

impl PredictFn for Predictor<'_> {
    fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
        self.model.predict(inputs)
    }
}

/// All prediction-quality metrics of one method over one dataset,
/// computed from a single batched `predict_points` pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Bucket-level accuracy in percent — the headline metric of the
    /// reproduction (Tables II/III): both output heads land in the same
    /// K = 16 UOV bucket as the oracle optimum.
    pub bucket_accuracy: f64,
    /// Index-exact accuracy in percent: both predicted indices equal the
    /// oracle optimum exactly.
    pub exact_accuracy: f64,
    /// Exact accuracy of the PE axis alone (%).
    pub pe_accuracy: f64,
    /// Exact accuracy of the buffer axis alone (%).
    pub buf_accuracy: f64,
    /// Geometric-mean latency ratio `predicted / oracle` (≥ 1, lower is
    /// better). 1.00 means every prediction is latency-optimal even when
    /// not index-identical.
    pub latency_ratio: f64,
    /// Number of samples scored.
    pub samples: usize,
}

impl EvalReport {
    /// The report of an empty dataset (zero accuracies, unit ratio).
    pub fn empty() -> EvalReport {
        EvalReport {
            bucket_accuracy: 0.0,
            exact_accuracy: 0.0,
            pe_accuracy: 0.0,
            buf_accuracy: 0.0,
            latency_ratio: 1.0,
            samples: 0,
        }
    }
}

impl<'m> Predictor<'m> {
    /// Wraps a trained model.
    pub fn new(model: &'m Airchitect2) -> Self {
        Predictor { model }
    }

    /// Every metric from one forward pass, scored through the model's
    /// shared engine.
    pub fn evaluate(&self, ds: &DseDataset) -> EvalReport {
        evaluate_of(self, self.model.engine(), ds)
    }

    /// Bucket-level accuracy in percent (see
    /// [`EvalReport::bucket_accuracy`]). Index comparison only — no
    /// cost-model queries; use [`Predictor::evaluate`] when you also
    /// want the latency ratio.
    pub fn accuracy(&self, ds: &DseDataset) -> f64 {
        bucket_accuracy_of(self, self.model.engine(), ds)
    }

    /// Index-exact accuracy in percent (index comparison only).
    pub fn exact_accuracy(&self, ds: &DseDataset) -> f64 {
        accuracy_of(self, self.model.engine(), ds)
    }

    /// Per-axis accuracies `(pe %, buffer %)` (index comparison only).
    pub fn per_axis_accuracy(&self, ds: &DseDataset) -> (f64, f64) {
        per_axis_accuracy_of(self, self.model.engine(), ds)
    }

    /// Geometric-mean latency ratio `predicted / oracle`.
    pub fn latency_ratio(&self, ds: &DseDataset) -> f64 {
        latency_ratio_of(self, self.model.engine(), ds)
    }
}

/// Index-agreement counts of one prediction batch against the oracle
/// labels — no cost-model queries.
struct IndexMetrics {
    bucket: f64,
    exact: f64,
    pe: f64,
    buf: f64,
}

fn index_metrics(engine: &EvalEngine, preds: &[DesignPoint], ds: &DseDataset) -> IndexMetrics {
    let space = engine.space();
    let pe_b = UovCodec::new(CONTRASTIVE_BUCKETS, space.num_pe_choices());
    let buf_b = UovCodec::new(CONTRASTIVE_BUCKETS, space.num_buf_choices());
    let mut bucket_hits = 0usize;
    let mut exact_hits = 0usize;
    let mut pe_hits = 0usize;
    let mut buf_hits = 0usize;
    for (p, s) in preds.iter().zip(&ds.samples) {
        if pe_b.bucket_of(p.pe_idx) == pe_b.bucket_of(s.optimal.pe_idx)
            && buf_b.bucket_of(p.buf_idx) == buf_b.bucket_of(s.optimal.buf_idx)
        {
            bucket_hits += 1;
        }
        if *p == s.optimal {
            exact_hits += 1;
        }
        if p.pe_idx == s.optimal.pe_idx {
            pe_hits += 1;
        }
        if p.buf_idx == s.optimal.buf_idx {
            buf_hits += 1;
        }
    }
    let n = ds.len() as f64;
    IndexMetrics {
        bucket: 100.0 * bucket_hits as f64 / n,
        exact: 100.0 * exact_hits as f64 / n,
        pe: 100.0 * pe_hits as f64 / n,
        buf: 100.0 * buf_hits as f64 / n,
    }
}

/// Geometric-mean `predicted / oracle` score ratio of one prediction
/// batch, scored through the engine.
fn latency_ratio_metric(
    engine: &EvalEngine,
    inputs: &[DseInput],
    preds: &[DesignPoint],
    ds: &DseDataset,
) -> f64 {
    // infeasible predictions are scored without the budget and
    // penalized, matching how a deployed over-budget config would simply
    // be rejected and rated badly
    let queries: Vec<(DseInput, DesignPoint)> =
        inputs.iter().zip(preds).map(|(&i, &p)| (i, p)).collect();
    let scores = engine.eval_batch(&queries);
    let mut log_sum = 0.0f64;
    for (((input, p), checked), s) in queries.iter().zip(&scores).zip(&ds.samples) {
        let score = checked.unwrap_or_else(|| engine.score_unchecked_transient(input, *p) * 10.0);
        log_sum += (score / s.best_score).max(1.0).ln();
    }
    (log_sum / ds.len() as f64).exp()
}

fn predict_all(method: &dyn PredictFn, ds: &DseDataset) -> (Vec<DseInput>, Vec<DesignPoint>) {
    let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
    let preds = method.predict_points(&inputs);
    (inputs, preds)
}

/// Scores any prediction method over `ds` in one batched pass: one
/// `predict_points` call, then bucket / exact / per-axis accuracy and
/// the latency ratio from the shared engine's cached costs. All methods
/// in Table III are scored through this same path, so classification and
/// UOV heads compare fairly.
pub fn evaluate_of(method: &dyn PredictFn, engine: &EvalEngine, ds: &DseDataset) -> EvalReport {
    if ds.is_empty() {
        return EvalReport::empty();
    }
    let (inputs, preds) = predict_all(method, ds);
    let idx = index_metrics(engine, &preds, ds);
    EvalReport {
        bucket_accuracy: idx.bucket,
        exact_accuracy: idx.exact,
        pe_accuracy: idx.pe,
        buf_accuracy: idx.buf,
        latency_ratio: latency_ratio_metric(engine, &inputs, &preds, ds),
        samples: ds.len(),
    }
}

/// Bucket-level accuracy (%) of any prediction method. Index comparison
/// only — one `predict_points` pass, no cost-model queries.
pub fn bucket_accuracy_of(method: &dyn PredictFn, engine: &EvalEngine, ds: &DseDataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let (_, preds) = predict_all(method, ds);
    index_metrics(engine, &preds, ds).bucket
}

/// Index-exact accuracy (%) of any prediction method (index comparison
/// only).
pub fn accuracy_of(method: &dyn PredictFn, engine: &EvalEngine, ds: &DseDataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let (_, preds) = predict_all(method, ds);
    index_metrics(engine, &preds, ds).exact
}

/// Per-axis accuracies (%) of any prediction method (index comparison
/// only).
pub fn per_axis_accuracy_of(
    method: &dyn PredictFn,
    engine: &EvalEngine,
    ds: &DseDataset,
) -> (f64, f64) {
    if ds.is_empty() {
        return (0.0, 0.0);
    }
    let (_, preds) = predict_all(method, ds);
    let idx = index_metrics(engine, &preds, ds);
    (idx.pe, idx.buf)
}

/// Geometric-mean `predicted-score / oracle-score` of any method — one
/// `predict_points` pass plus one batched scoring pass.
pub fn latency_ratio_of(method: &dyn PredictFn, engine: &EvalEngine, ds: &DseDataset) -> f64 {
    if ds.is_empty() {
        return 1.0;
    }
    let (inputs, preds) = predict_all(method, ds);
    latency_ratio_metric(engine, &inputs, &preds, ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::train::TrainConfig;
    use ai2_dse::{DseTask, GenerateConfig};

    struct OraclePredictor<'a>(&'a EvalEngine);

    impl PredictFn for OraclePredictor<'_> {
        fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
            inputs.iter().map(|i| self.0.oracle(i).best_point).collect()
        }
    }

    struct ConstantPredictor(DesignPoint);

    impl PredictFn for ConstantPredictor {
        fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
            vec![self.0; inputs.len()]
        }
    }

    fn setup() -> (EvalEngine, DseDataset) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 50,
                seed: 13,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        (EvalEngine::new(task), ds)
    }

    #[test]
    fn oracle_predictor_scores_perfectly() {
        let (engine, ds) = setup();
        let p = OraclePredictor(&engine);
        assert_eq!(accuracy_of(&p, &engine, &ds), 100.0);
        let (a, b) = per_axis_accuracy_of(&p, &engine, &ds);
        assert_eq!((a, b), (100.0, 100.0));
    }

    #[test]
    fn constant_predictor_scores_poorly() {
        let (engine, ds) = setup();
        let p = ConstantPredictor(DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        });
        assert!(accuracy_of(&p, &engine, &ds) < 50.0);
    }

    #[test]
    fn latency_ratio_is_one_for_oracle_points() {
        let (engine, ds) = setup();
        let ratio = latency_ratio_of(&OraclePredictor(&engine), &engine, &ds);
        assert!((ratio - 1.0).abs() < 1e-9, "oracle ratio {ratio}");
        assert_eq!(
            bucket_accuracy_of(&OraclePredictor(&engine), &engine, &ds),
            100.0
        );
    }

    #[test]
    fn report_is_internally_consistent() {
        let (engine, ds) = setup();
        let rep = evaluate_of(&OraclePredictor(&engine), &engine, &ds);
        assert_eq!(rep.samples, ds.len());
        assert_eq!(rep.bucket_accuracy, 100.0);
        assert_eq!(rep.exact_accuracy, 100.0);
        // exact accuracy can never exceed either per-axis accuracy or
        // the bucket-level accuracy
        let bad = evaluate_of(
            &ConstantPredictor(DesignPoint {
                pe_idx: 2,
                buf_idx: 3,
            }),
            &engine,
            &ds,
        );
        assert!(bad.exact_accuracy <= bad.pe_accuracy + 1e-9);
        assert!(bad.exact_accuracy <= bad.buf_accuracy + 1e-9);
        assert!(bad.exact_accuracy <= bad.bucket_accuracy + 1e-9);
        assert!(bad.latency_ratio >= 1.0);
    }

    #[test]
    fn empty_dataset_yields_empty_report() {
        let (engine, _) = setup();
        let ds = DseDataset {
            backend: ai2_dse::BackendId::Analytic,
            samples: vec![],
        };
        let rep = evaluate_of(
            &ConstantPredictor(DesignPoint {
                pe_idx: 0,
                buf_idx: 0,
            }),
            &engine,
            &ds,
        );
        assert_eq!(rep, EvalReport::empty());
    }

    #[test]
    fn trained_model_beats_constant_on_latency_ratio() {
        let (engine, ds) = setup();
        let bigger = GenerateConfig {
            num_samples: 300,
            seed: 14,
            threads: 2,
            ..GenerateConfig::default()
        };
        let ds_big = DseDataset::generate(engine.task(), &bigger);
        let mut model = Airchitect2::new(&ModelConfig::tiny(), engine.task(), &ds_big);
        model.fit(&ds_big, &TrainConfig::quick());
        let ratio = model.predictor().latency_ratio(&ds);
        let const_ratio = latency_ratio_of(
            &ConstantPredictor(DesignPoint {
                pe_idx: 0,
                buf_idx: 0,
            }),
            &engine,
            &ds,
        );
        assert!(
            ratio < const_ratio,
            "trained ratio {ratio} not better than constant {const_ratio}"
        );
    }
}
