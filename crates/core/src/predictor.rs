//! Evaluation of one-shot predictions: exact-match accuracy (the paper's
//! Tables II/III metric) and latency quality (how close the predicted
//! configuration's latency is to the oracle optimum).

use ai2_dse::{DesignPoint, DseDataset, DseTask};
use ai2_uov::UovCodec;
use ai2_workloads::generator::DseInput;

use crate::model::{Airchitect2, CONTRASTIVE_BUCKETS};

/// Evaluation interface over a trained [`Airchitect2`] (or any method
/// exposing per-input design-point predictions via [`PredictFn`]).
#[derive(Clone, Copy)]
pub struct Predictor<'m> {
    model: &'m Airchitect2,
}

/// Any one-shot DSE method: inputs → recommended design points. Allows
/// the baselines to reuse the same metrics.
pub trait PredictFn {
    /// Recommends one design point per input.
    fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint>;
}

impl PredictFn for Predictor<'_> {
    fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
        self.model.predict(inputs)
    }
}

impl<'m> Predictor<'m> {
    /// Wraps a trained model.
    pub fn new(model: &'m Airchitect2) -> Self {
        Predictor { model }
    }

    /// Bucket-level accuracy in percent — the headline metric of the
    /// reproduction (Tables II/III): a prediction is correct when both
    /// output heads land in the same K = 16 UOV bucket as the oracle
    /// optimum. This matches the paper's bucketized output space; the
    /// stricter index-exact metric is [`Predictor::exact_accuracy`].
    pub fn accuracy(&self, ds: &DseDataset) -> f64 {
        bucket_accuracy_of(self, self.model.task(), ds)
    }

    /// Index-exact accuracy in percent: both predicted indices equal the
    /// oracle optimum exactly.
    pub fn exact_accuracy(&self, ds: &DseDataset) -> f64 {
        accuracy_of(self, ds)
    }

    /// Per-axis accuracies `(pe %, buffer %)`.
    pub fn per_axis_accuracy(&self, ds: &DseDataset) -> (f64, f64) {
        per_axis_accuracy_of(self, ds)
    }

    /// Geometric-mean latency ratio `predicted / oracle` (≥ 1, lower is
    /// better). 1.00 means every prediction is latency-optimal even when
    /// not index-identical.
    pub fn latency_ratio(&self, ds: &DseDataset) -> f64 {
        latency_ratio_of(self, self.model.task(), ds)
    }
}

/// Bucket-level accuracy (%) of any prediction method: both axes must
/// fall into the oracle's K = 16 UOV bucket. All methods in Table III are
/// scored through this same bucketizer, so classification and UOV heads
/// compare fairly.
pub fn bucket_accuracy_of(method: &dyn PredictFn, task: &DseTask, ds: &DseDataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let space = task.space();
    let pe_b = UovCodec::new(CONTRASTIVE_BUCKETS, space.num_pe_choices());
    let buf_b = UovCodec::new(CONTRASTIVE_BUCKETS, space.num_buf_choices());
    let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
    let preds = method.predict_points(&inputs);
    let hits = preds
        .iter()
        .zip(&ds.samples)
        .filter(|(p, s)| {
            pe_b.bucket_of(p.pe_idx) == pe_b.bucket_of(s.optimal.pe_idx)
                && buf_b.bucket_of(p.buf_idx) == buf_b.bucket_of(s.optimal.buf_idx)
        })
        .count();
    100.0 * hits as f64 / ds.len() as f64
}

/// Index-exact accuracy (%) of any prediction method.
pub fn accuracy_of(method: &dyn PredictFn, ds: &DseDataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
    let preds = method.predict_points(&inputs);
    let hits = preds
        .iter()
        .zip(&ds.samples)
        .filter(|(p, s)| **p == s.optimal)
        .count();
    100.0 * hits as f64 / ds.len() as f64
}

/// Per-axis accuracies (%) of any prediction method.
pub fn per_axis_accuracy_of(method: &dyn PredictFn, ds: &DseDataset) -> (f64, f64) {
    if ds.is_empty() {
        return (0.0, 0.0);
    }
    let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
    let preds = method.predict_points(&inputs);
    let pe = preds
        .iter()
        .zip(&ds.samples)
        .filter(|(p, s)| p.pe_idx == s.optimal.pe_idx)
        .count();
    let buf = preds
        .iter()
        .zip(&ds.samples)
        .filter(|(p, s)| p.buf_idx == s.optimal.buf_idx)
        .count();
    (
        100.0 * pe as f64 / ds.len() as f64,
        100.0 * buf as f64 / ds.len() as f64,
    )
}

/// Geometric-mean `predicted-score / oracle-score` of any method
/// (infeasible predictions are scored without the budget, matching how a
/// deployed over-budget config would simply be rejected and rated badly).
pub fn latency_ratio_of(method: &dyn PredictFn, task: &DseTask, ds: &DseDataset) -> f64 {
    if ds.is_empty() {
        return 1.0;
    }
    let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
    let preds = method.predict_points(&inputs);
    let mut log_sum = 0.0f64;
    for (p, s) in preds.iter().zip(&ds.samples) {
        let score = task
            .score(&s.input(), *p)
            .unwrap_or_else(|| task.score_unchecked(&s.input(), *p) * 10.0);
        log_sum += (score / s.best_score).max(1.0).ln();
    }
    (log_sum / ds.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::train::TrainConfig;
    use ai2_dse::{DseTask, GenerateConfig};

    struct OraclePredictor<'a>(&'a DseTask);

    impl PredictFn for OraclePredictor<'_> {
        fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
            inputs.iter().map(|i| self.0.oracle(i).best_point).collect()
        }
    }

    struct ConstantPredictor(DesignPoint);

    impl PredictFn for ConstantPredictor {
        fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
            vec![self.0; inputs.len()]
        }
    }

    fn setup() -> (DseTask, DseDataset) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 50,
                seed: 13,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        (task, ds)
    }

    #[test]
    fn oracle_predictor_scores_perfectly() {
        let (task, ds) = setup();
        let p = OraclePredictor(&task);
        assert_eq!(accuracy_of(&p, &ds), 100.0);
        let (a, b) = per_axis_accuracy_of(&p, &ds);
        assert_eq!((a, b), (100.0, 100.0));
    }

    #[test]
    fn constant_predictor_scores_poorly() {
        let (_, ds) = setup();
        let p = ConstantPredictor(DesignPoint { pe_idx: 0, buf_idx: 0 });
        assert!(accuracy_of(&p, &ds) < 50.0);
    }

    #[test]
    fn latency_ratio_is_one_for_oracle_points() {
        let (task, ds) = setup();
        let ratio = latency_ratio_of(&OraclePredictor(&task), &task, &ds);
        assert!((ratio - 1.0).abs() < 1e-9, "oracle ratio {ratio}");
        assert_eq!(bucket_accuracy_of(&OraclePredictor(&task), &task, &ds), 100.0);
    }

    #[test]
    fn trained_model_beats_constant_on_latency_ratio() {
        let (task, ds) = setup();
        let mut bigger = GenerateConfig {
            num_samples: 300,
            seed: 14,
            threads: 2,
            ..GenerateConfig::default()
        };
        bigger.num_samples = 300;
        let ds_big = DseDataset::generate(&task, &bigger);
        let mut model = Airchitect2::new(&ModelConfig::tiny(), &task, &ds_big);
        model.fit(&ds_big, &TrainConfig::quick());
        let ratio = model.predictor().latency_ratio(&ds);
        let const_ratio = latency_ratio_of(
            &ConstantPredictor(DesignPoint { pe_idx: 0, buf_idx: 0 }),
            &task,
            &ds,
        );
        assert!(
            ratio < const_ratio,
            "trained ratio {ratio} not better than constant {const_ratio}"
        );
    }
}
