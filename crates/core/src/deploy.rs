//! Model-level deployment: turning per-layer recommendations into one
//! hardware configuration for a whole network (paper §III-E).

use ai2_dse::{DesignPoint, DseTask};
use ai2_maestro::Dataflow;
use ai2_workloads::generator::DseInput;
use ai2_workloads::Layer;

/// Model-level latency of running every layer (tiled, with repetition
/// counts) on hardware `point`, letting each layer use its best dataflow
/// — the "estimate the model-wise latency across all layers" step of
/// Method 1, computed with the MAESTRO-style cost model.
pub fn model_latency(task: &DseTask, layers: &[Layer], point: DesignPoint) -> f64 {
    layers
        .iter()
        .map(|layer| {
            let best_df = Dataflow::ALL
                .iter()
                .map(|&df| {
                    task.score_unchecked(
                        &DseInput {
                            gemm: layer.gemm,
                            dataflow: df,
                        },
                        point,
                    )
                })
                .fold(f64::INFINITY, f64::min);
            best_df * layer.count as f64
        })
        .sum()
}

/// Per-layer recommendations from any one-shot or search method.
pub trait LayerRecommender {
    /// Recommends a design point for one layer-level DSE input.
    fn recommend(&self, input: &DseInput) -> DesignPoint;
}

impl<F: Fn(&DseInput) -> DesignPoint> LayerRecommender for F {
    fn recommend(&self, input: &DseInput) -> DesignPoint {
        self(input)
    }
}

/// Outcome of a model-level deployment selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deployment {
    /// The chosen hardware configuration.
    pub point: DesignPoint,
    /// Model-level latency (cycles) on that configuration.
    pub latency: f64,
}

fn candidate_points(
    task: &DseTask,
    layers: &[Layer],
    rec: &dyn LayerRecommender,
) -> Vec<(usize, DesignPoint)> {
    // one recommendation per (layer, dataflow) input, deduplicated but
    // remembering which layer produced each candidate
    let mut cands: Vec<(usize, DesignPoint)> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        for df in Dataflow::ALL {
            let p = rec.recommend(&DseInput {
                gemm: layer.gemm,
                dataflow: df,
            });
            if task.is_feasible(p) && !cands.iter().any(|(_, q)| *q == p) {
                cands.push((li, p));
            }
        }
    }
    if cands.is_empty() {
        // every recommendation violated the budget: fall back to the
        // smallest configuration, which the task guarantees feasible
        cands.push((0, DesignPoint { pe_idx: 0, buf_idx: 0 }));
    }
    cands
}

/// **Method 1**: evaluate each per-layer recommendation model-wide and
/// pick the one minimising total latency.
///
/// # Panics
///
/// Panics if `layers` is empty.
pub fn method1(task: &DseTask, layers: &[Layer], rec: &dyn LayerRecommender) -> Deployment {
    assert!(!layers.is_empty(), "method1: no layers");
    let mut best: Option<Deployment> = None;
    for (_, p) in candidate_points(task, layers, rec) {
        let lat = model_latency(task, layers, p);
        if best.is_none_or(|b| lat < b.latency) {
            best = Some(Deployment { point: p, latency: lat });
        }
    }
    best.expect("at least one candidate")
}

/// **Method 2**: find the bottleneck layer (largest latency on its own
/// recommended hardware) and adopt its recommendation model-wide.
///
/// # Panics
///
/// Panics if `layers` is empty.
pub fn method2(task: &DseTask, layers: &[Layer], rec: &dyn LayerRecommender) -> Deployment {
    assert!(!layers.is_empty(), "method2: no layers");
    let mut bottleneck: Option<(f64, DesignPoint)> = None;
    for layer in layers {
        // recommended point for this layer (best dataflow by its own score)
        let mut layer_best: Option<(f64, DesignPoint)> = None;
        for df in Dataflow::ALL {
            let input = DseInput {
                gemm: layer.gemm,
                dataflow: df,
            };
            let p = rec.recommend(&input);
            if !task.is_feasible(p) {
                continue;
            }
            let s = task.score_unchecked(&input, p);
            if layer_best.is_none_or(|(b, _)| s < b) {
                layer_best = Some((s, p));
            }
        }
        let Some((score, p)) = layer_best else { continue };
        let weighted = score * layer.count as f64;
        if bottleneck.is_none_or(|(b, _)| weighted > b) {
            bottleneck = Some((weighted, p));
        }
    }
    let (_, point) = bottleneck.unwrap_or((0.0, DesignPoint { pe_idx: 0, buf_idx: 0 }));
    Deployment {
        point,
        latency: model_latency(task, layers, point),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_maestro::GemmWorkload;
    use ai2_workloads::zoo;

    fn layers() -> Vec<Layer> {
        zoo::resnet18().to_dse_layers()
    }

    fn oracle_rec(task: &DseTask) -> impl LayerRecommender + '_ {
        move |input: &DseInput| task.oracle(input).best_point
    }

    #[test]
    fn method1_latency_is_min_over_candidates() {
        let task = DseTask::table_i_default();
        let ls = layers();
        let rec = oracle_rec(&task);
        let d = method1(&task, &ls, &rec);
        assert!(d.latency > 0.0);
        assert!(task.is_feasible(d.point));
        // any single-layer recommendation cannot beat the Method-1 choice
        let alt = task.oracle(&DseInput {
            gemm: ls[0].gemm,
            dataflow: Dataflow::WeightStationary,
        });
        let alt_lat = model_latency(&task, &ls, alt.best_point);
        assert!(d.latency <= alt_lat + 1e-6);
    }

    #[test]
    fn method2_picks_feasible_bottleneck_config() {
        let task = DseTask::table_i_default();
        let ls = layers();
        let rec = oracle_rec(&task);
        let d = method2(&task, &ls, &rec);
        assert!(task.is_feasible(d.point));
        assert!(d.latency > 0.0);
    }

    #[test]
    fn method1_never_worse_than_method2_with_same_recommender() {
        // Method 1 evaluates a superset of deployment candidates, so with
        // the same recommender it is at least as good.
        let task = DseTask::table_i_default();
        let ls = layers();
        let rec = oracle_rec(&task);
        let d1 = method1(&task, &ls, &rec);
        let d2 = method2(&task, &ls, &rec);
        assert!(d1.latency <= d2.latency + 1e-6);
    }

    #[test]
    fn bad_recommender_yields_worse_deployment() {
        let task = DseTask::table_i_default();
        let ls = layers();
        let good = method1(&task, &ls, &oracle_rec(&task));
        let bad_rec = |_: &DseInput| DesignPoint { pe_idx: 0, buf_idx: 0 };
        let bad = method1(&task, &ls, &bad_rec);
        assert!(
            bad.latency >= good.latency,
            "tiny config should not beat oracle deployment"
        );
    }

    #[test]
    fn model_latency_scales_with_counts() {
        let task = DseTask::table_i_default();
        let one = vec![Layer::new("l", GemmWorkload::new(64, 128, 64))];
        let two = vec![Layer::repeated("l", GemmWorkload::new(64, 128, 64), 2)];
        let p = DesignPoint { pe_idx: 8, buf_idx: 5 };
        let l1 = model_latency(&task, &one, p);
        let l2 = model_latency(&task, &two, p);
        assert!((l2 - 2.0 * l1).abs() < 1e-6);
    }
}
