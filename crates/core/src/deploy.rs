//! Model-level deployment: turning per-layer recommendations into one
//! hardware configuration for a whole network (paper §III-E).
//!
//! All cost queries flow through the shared
//! [`EvalEngine`]: per-layer costs are memoized, so the many candidate
//! configurations Method 1 compares reuse each other's layer sweeps, and
//! candidate evaluation fans out over the engine's worker pool.

use std::collections::HashSet;

use ai2_dse::{DesignPoint, EvalEngine};
use ai2_maestro::Dataflow;
use ai2_workloads::generator::DseInput;
use ai2_workloads::Layer;

/// Model-level latency of running every layer (tiled, with repetition
/// counts) on hardware `point`, letting each layer use its best dataflow
/// — the "estimate the model-wise latency across all layers" step of
/// Method 1, computed with the MAESTRO-style cost model through the
/// shared engine.
pub fn model_latency(engine: &EvalEngine, layers: &[Layer], point: DesignPoint) -> f64 {
    engine.model_latency(layers, point)
}

/// Per-layer recommendations from any one-shot or search method.
pub trait LayerRecommender {
    /// Recommends a design point for one layer-level DSE input.
    fn recommend(&self, input: &DseInput) -> DesignPoint;
}

impl<F: Fn(&DseInput) -> DesignPoint> LayerRecommender for F {
    fn recommend(&self, input: &DseInput) -> DesignPoint {
        self(input)
    }
}

/// Outcome of a model-level deployment selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deployment {
    /// The chosen hardware configuration.
    pub point: DesignPoint,
    /// Model-level latency (cycles) on that configuration.
    pub latency: f64,
}

fn candidate_points(
    engine: &EvalEngine,
    layers: &[Layer],
    rec: &dyn LayerRecommender,
) -> Vec<(usize, DesignPoint)> {
    // one recommendation per (layer, dataflow) input, deduplicated in
    // O(1) per candidate while preserving first-seen order (and which
    // layer produced each candidate)
    let mut seen: HashSet<DesignPoint> = HashSet::new();
    let mut cands: Vec<(usize, DesignPoint)> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        for df in Dataflow::ALL {
            let p = rec.recommend(&DseInput {
                gemm: layer.gemm,
                dataflow: df,
            });
            if engine.is_feasible(p) && seen.insert(p) {
                cands.push((li, p));
            }
        }
    }
    if cands.is_empty() {
        // every recommendation violated the budget: fall back to the
        // smallest configuration, which the task guarantees feasible
        cands.push((
            0,
            DesignPoint {
                pe_idx: 0,
                buf_idx: 0,
            },
        ));
    }
    cands
}

/// **Method 1**: evaluate each per-layer recommendation model-wide and
/// pick the one minimising total latency. Candidate evaluations fan out
/// over the engine's worker pool.
///
/// # Panics
///
/// Panics if `layers` is empty.
pub fn method1(engine: &EvalEngine, layers: &[Layer], rec: &dyn LayerRecommender) -> Deployment {
    assert!(!layers.is_empty(), "method1: no layers");
    let cands = candidate_points(engine, layers, rec);
    let points: Vec<DesignPoint> = cands.iter().map(|&(_, p)| p).collect();
    let latencies = engine.model_latency_batch(layers, &points);
    let mut best: Option<Deployment> = None;
    for (&point, &latency) in points.iter().zip(&latencies) {
        if best.is_none_or(|b| latency < b.latency) {
            best = Some(Deployment { point, latency });
        }
    }
    best.expect("at least one candidate")
}

/// **Method 2**: find the bottleneck layer (largest latency on its own
/// recommended hardware) and adopt its recommendation model-wide.
///
/// # Panics
///
/// Panics if `layers` is empty.
pub fn method2(engine: &EvalEngine, layers: &[Layer], rec: &dyn LayerRecommender) -> Deployment {
    assert!(!layers.is_empty(), "method2: no layers");
    let mut bottleneck: Option<(f64, DesignPoint)> = None;
    for layer in layers {
        // recommended point for this layer (best dataflow by its own score)
        let mut layer_best: Option<(f64, DesignPoint)> = None;
        for df in Dataflow::ALL {
            let input = DseInput {
                gemm: layer.gemm,
                dataflow: df,
            };
            let p = rec.recommend(&input);
            if !engine.is_feasible(p) {
                continue;
            }
            let s = engine.score_unchecked(&input, p);
            if layer_best.is_none_or(|(b, _)| s < b) {
                layer_best = Some((s, p));
            }
        }
        let Some((score, p)) = layer_best else {
            continue;
        };
        let weighted = score * layer.count as f64;
        if bottleneck.is_none_or(|(b, _)| weighted > b) {
            bottleneck = Some((weighted, p));
        }
    }
    let (_, point) = bottleneck.unwrap_or((
        0.0,
        DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        },
    ));
    Deployment {
        point,
        latency: engine.model_latency(layers, point),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_maestro::GemmWorkload;
    use ai2_workloads::zoo;

    fn layers() -> Vec<Layer> {
        zoo::resnet18().to_dse_layers()
    }

    fn oracle_rec(engine: &EvalEngine) -> impl LayerRecommender + '_ {
        move |input: &DseInput| engine.oracle(input).best_point
    }

    #[test]
    fn method1_latency_is_min_over_candidates() {
        let engine = EvalEngine::table_i_default();
        let ls = layers();
        let rec = oracle_rec(&engine);
        let d = method1(&engine, &ls, &rec);
        assert!(d.latency > 0.0);
        assert!(engine.is_feasible(d.point));
        // any single-layer recommendation cannot beat the Method-1 choice
        let alt = engine.oracle(&DseInput {
            gemm: ls[0].gemm,
            dataflow: Dataflow::WeightStationary,
        });
        let alt_lat = model_latency(&engine, &ls, alt.best_point);
        assert!(d.latency <= alt_lat + 1e-6);
    }

    #[test]
    fn method2_picks_feasible_bottleneck_config() {
        let engine = EvalEngine::table_i_default();
        let ls = layers();
        let rec = oracle_rec(&engine);
        let d = method2(&engine, &ls, &rec);
        assert!(engine.is_feasible(d.point));
        assert!(d.latency > 0.0);
    }

    #[test]
    fn method1_never_worse_than_method2_with_same_recommender() {
        // Method 1 evaluates a superset of deployment candidates, so with
        // the same recommender it is at least as good.
        let engine = EvalEngine::table_i_default();
        let ls = layers();
        let rec = oracle_rec(&engine);
        let d1 = method1(&engine, &ls, &rec);
        let d2 = method2(&engine, &ls, &rec);
        assert!(d1.latency <= d2.latency + 1e-6);
    }

    #[test]
    fn bad_recommender_yields_worse_deployment() {
        let engine = EvalEngine::table_i_default();
        let ls = layers();
        let good = method1(&engine, &ls, &oracle_rec(&engine));
        let bad_rec = |_: &DseInput| DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        };
        let bad = method1(&engine, &ls, &bad_rec);
        assert!(
            bad.latency >= good.latency,
            "tiny config should not beat oracle deployment"
        );
    }

    #[test]
    fn model_latency_scales_with_counts() {
        let engine = EvalEngine::table_i_default();
        let one = vec![Layer::new("l", GemmWorkload::new(64, 128, 64))];
        let two = vec![Layer::repeated("l", GemmWorkload::new(64, 128, 64), 2)];
        let p = DesignPoint {
            pe_idx: 8,
            buf_idx: 5,
        };
        let l1 = model_latency(&engine, &one, p);
        let l2 = model_latency(&engine, &two, p);
        assert!((l2 - 2.0 * l1).abs() < 1e-6);
    }

    #[test]
    fn duplicate_recommendations_are_deduplicated_in_order() {
        let engine = EvalEngine::table_i_default();
        let ls = layers();
        // constant recommender: every (layer, dataflow) points at the
        // same config → exactly one candidate survives
        let p0 = DesignPoint {
            pe_idx: 3,
            buf_idx: 2,
        };
        let const_rec = move |_: &DseInput| p0;
        let cands = candidate_points(&engine, &ls, &const_rec);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0], (0, p0));
    }
}
