//! AIRCHITECT v2 — learning the hardware accelerator design space through
//! unified representations (Seo, Ramachandran et al., DATE 2025).
//!
//! This crate is the paper's primary contribution, rebuilt in Rust on the
//! substrates of this workspace:
//!
//! * an **encoder–decoder transformer** ([`Airchitect2`]) over the 4-token
//!   workload embedding (`M`, `N`, `K`, dataflow),
//! * **stage-1 training** ([`train::Stage1Trainer`]): supervised-infoNCE
//!   contrastive loss (Eq. 1) plus an L1 performance-prediction loss,
//!   shaping a uniform, smooth embedding space,
//! * **stage-2 training** ([`train::Stage2Trainer`]): the encoder frozen,
//!   two [`ai2_uov::UovCodec`] heads trained with the unification loss
//!   (Eq. 3) to predict `#PEs` and L2 buffer size,
//! * **one-shot inference** ([`predictor::Predictor`]) with exact-match
//!   accuracy and latency-quality metrics,
//! * **model-level deployment** ([`deploy`]) via the paper's Method 1
//!   (global argmin) and Method 2 (bottleneck layer),
//! * **embedding-space analysis** ([`embedding`]) reproducing the
//!   alignment/uniformity comparison of Fig. 5.
//!
//! # Quickstart
//!
//! ```no_run
//! use ai2_dse::{DseDataset, DseTask, GenerateConfig};
//! use airchitect::{Airchitect2, ModelConfig, train::TrainConfig};
//!
//! let task = DseTask::table_i_default();
//! let data = DseDataset::generate(&task, &GenerateConfig::default());
//! let (train, test) = data.split(0.8, 42);
//! let mut model = Airchitect2::new(&ModelConfig::default(), &task, &train);
//! model.fit(&train, &TrainConfig::quick());
//! let accuracy = model.predictor().accuracy(&test);
//! println!("exact-match accuracy: {accuracy:.2}%");
//! ```

mod config;
mod features;
mod model;

pub mod checkpoint;
pub mod deploy;
pub mod embedding;
pub mod predictor;
pub mod quant;
pub mod train;

pub use checkpoint::{ModelCheckpoint, Provenance, CHECKPOINT_FORMAT};
pub use config::{HeadKind, ModelConfig};
pub use features::{FeatureEncoder, PreparedBatch, PreparedDataset, NUM_FEATURES};
pub use model::{Airchitect2, InferenceScratch, QuantizedDecoder};
pub use predictor::{EvalReport, Predictor};
pub use quant::{QuantBlob, QuantTensor};
