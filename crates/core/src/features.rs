//! Input featurization and target preparation shared by AIrchitect v2
//! and every learning-based baseline, so that all methods in Table III
//! train on identical tensors.

use ai2_dse::{DseDataset, DseTask};
use ai2_tensor::stats::Standardizer;
use ai2_tensor::Tensor;
use ai2_uov::{ConfigCodec, UovCodec};
use ai2_workloads::generator::DseInput;
use serde::{Deserialize, Serialize};

/// Number of input features after encoding: `ln M`, `ln N`, `ln K`
/// (standardised) plus a 3-way dataflow one-hot.
pub const NUM_FEATURES: usize = 6;

/// Maps raw DSE inputs to standardized network features and latency
/// scores to standardized regression targets. Fitted on the training
/// split only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureEncoder {
    dims: Standardizer,
    perf_mean: f32,
    perf_std: f32,
}

impl FeatureEncoder {
    /// Fits feature and performance statistics on the training set.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &DseDataset) -> FeatureEncoder {
        assert!(!train.is_empty(), "FeatureEncoder::fit: empty dataset");
        let rows: Vec<Tensor> = train
            .samples
            .iter()
            .map(|s| Tensor::from_slice(&[(s.m as f32).ln(), (s.n as f32).ln(), (s.k as f32).ln()]))
            .collect();
        let dims = Standardizer::fit(&Tensor::stack_rows(&rows));
        let perf: Vec<f32> = train
            .samples
            .iter()
            .map(|s| (s.best_score as f32).max(1.0).ln())
            .collect();
        let (perf_mean, perf_std) = ai2_tensor::stats::mean_std(&perf);
        FeatureEncoder {
            dims,
            perf_mean,
            perf_std: perf_std.max(1e-6),
        }
    }

    /// Encodes one DSE input as a feature row.
    pub fn encode_input(&self, input: &DseInput) -> [f32; NUM_FEATURES] {
        let raw = Tensor::from_rows(&[&[
            (input.gemm.m as f32).ln(),
            (input.gemm.n as f32).ln(),
            (input.gemm.k as f32).ln(),
        ]]);
        let z = self.dims.transform(&raw);
        let mut out = [0.0f32; NUM_FEATURES];
        out[..3].copy_from_slice(z.row(0));
        out[3 + input.dataflow.index()] = 1.0;
        out
    }

    /// Encodes a batch of inputs as `[n, NUM_FEATURES]`.
    pub fn encode_inputs(&self, inputs: &[DseInput]) -> Tensor {
        let rows: Vec<Tensor> = inputs
            .iter()
            .map(|i| Tensor::from_slice(&self.encode_input(i)))
            .collect();
        Tensor::stack_rows(&rows)
    }

    /// Standardised log-latency target for the performance predictor.
    pub fn encode_perf(&self, score: f64) -> f32 {
        ((score as f32).max(1.0).ln() - self.perf_mean) / self.perf_std
    }

    /// Inverse of [`FeatureEncoder::encode_perf`].
    pub fn decode_perf(&self, z: f32) -> f64 {
        (z * self.perf_std + self.perf_mean).exp() as f64
    }
}

/// A dataset rendered into training tensors for one (model, codec)
/// combination.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// `[n, NUM_FEATURES]` standardized inputs.
    pub features: Tensor,
    /// `[n, 1]` standardized log-latency targets.
    pub perf: Tensor,
    /// Ground-truth PE choice indices.
    pub pe_targets: Vec<usize>,
    /// Ground-truth buffer choice indices.
    pub buf_targets: Vec<usize>,
    /// `[n, pe_codec.width()]` encoded PE targets.
    pub pe_encoded: Tensor,
    /// `[n, buf_codec.width()]` encoded buffer targets.
    pub buf_encoded: Tensor,
    /// Joint UOV-bucket class of each sample — the contrastive label of
    /// §III-C ("configurations that belong to the same UOV buckets").
    pub contrastive_labels: Vec<u32>,
}

impl PreparedDataset {
    /// Renders a dataset with the given codecs. The contrastive labels
    /// always come from UOV bucketization of the task's axes (with the
    /// provided bucket count) regardless of the head codec, matching the
    /// paper's stage-1 definition.
    pub fn build(
        ds: &DseDataset,
        task: &DseTask,
        enc: &FeatureEncoder,
        pe_codec: &dyn ConfigCodec,
        buf_codec: &dyn ConfigCodec,
        contrastive_buckets: usize,
    ) -> PreparedDataset {
        let n = ds.len();
        assert!(n > 0, "PreparedDataset::build: empty dataset");
        let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
        let features = enc.encode_inputs(&inputs);
        let perf_rows: Vec<Tensor> = ds
            .samples
            .iter()
            .map(|s| Tensor::from_slice(&[enc.encode_perf(s.best_score)]))
            .collect();
        let perf = Tensor::stack_rows(&perf_rows);

        let pe_targets: Vec<usize> = ds.samples.iter().map(|s| s.optimal.pe_idx).collect();
        let buf_targets: Vec<usize> = ds.samples.iter().map(|s| s.optimal.buf_idx).collect();

        let encode_all = |codec: &dyn ConfigCodec, targets: &[usize]| {
            let rows: Vec<Tensor> = targets
                .iter()
                .map(|&t| Tensor::from_slice(&codec.encode(t)))
                .collect();
            Tensor::stack_rows(&rows)
        };
        let pe_encoded = encode_all(pe_codec, &pe_targets);
        let buf_encoded = encode_all(buf_codec, &buf_targets);

        let pe_bucketizer = UovCodec::new(contrastive_buckets, task.space().num_pe_choices());
        let buf_bucketizer = UovCodec::new(contrastive_buckets, task.space().num_buf_choices());
        let nbuf = buf_bucketizer.num_buckets() as u32;
        let contrastive_labels: Vec<u32> = pe_targets
            .iter()
            .zip(&buf_targets)
            .map(|(&p, &b)| {
                pe_bucketizer.bucket_of(p) as u32 * nbuf + buf_bucketizer.bucket_of(b) as u32
            })
            .collect();

        PreparedDataset {
            features,
            perf,
            pe_targets,
            buf_targets,
            pe_encoded,
            buf_encoded,
            contrastive_labels,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// Whether the prepared set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts rows `idx` as a minibatch (features, perf, pe, buf,
    /// labels).
    pub fn batch(&self, idx: &[usize]) -> PreparedBatch {
        let pick_rows = |t: &Tensor| {
            let rows: Vec<Tensor> = idx.iter().map(|&i| Tensor::from_slice(t.row(i))).collect();
            Tensor::stack_rows(&rows)
        };
        PreparedBatch {
            features: pick_rows(&self.features),
            perf: pick_rows(&self.perf),
            pe_encoded: pick_rows(&self.pe_encoded),
            buf_encoded: pick_rows(&self.buf_encoded),
            pe_targets: idx.iter().map(|&i| self.pe_targets[i]).collect(),
            buf_targets: idx.iter().map(|&i| self.buf_targets[i]).collect(),
            labels: idx.iter().map(|&i| self.contrastive_labels[i]).collect(),
        }
    }
}

/// One minibatch of prepared tensors.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    /// `[b, NUM_FEATURES]`.
    pub features: Tensor,
    /// `[b, 1]`.
    pub perf: Tensor,
    /// `[b, pe_width]`.
    pub pe_encoded: Tensor,
    /// `[b, buf_width]`.
    pub buf_encoded: Tensor,
    /// Ground-truth PE choice indices (classification heads).
    pub pe_targets: Vec<usize>,
    /// Ground-truth buffer choice indices (classification heads).
    pub buf_targets: Vec<usize>,
    /// Contrastive class per row.
    pub labels: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::GenerateConfig;
    use ai2_uov::OneHotCodec;

    fn tiny() -> (DseTask, DseDataset) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: 40,
                seed: 3,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        (task, ds)
    }

    #[test]
    fn features_are_standardised_and_one_hot() {
        let (_, ds) = tiny();
        let enc = FeatureEncoder::fit(&ds);
        let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
        let f = enc.encode_inputs(&inputs);
        assert_eq!(f.shape(), &[40, NUM_FEATURES]);
        for i in 0..f.rows() {
            let onehot: f32 = f.row(i)[3..].iter().sum();
            assert_eq!(onehot, 1.0);
        }
        // standardized numeric columns
        for j in 0..3 {
            let col: Vec<f32> = (0..f.rows()).map(|i| f[(i, j)]).collect();
            let (m, s) = ai2_tensor::stats::mean_std(&col);
            assert!(m.abs() < 0.2, "col {j} mean {m}");
            assert!(s > 0.5 && s < 1.5, "col {j} std {s}");
        }
    }

    #[test]
    fn perf_roundtrip() {
        let (_, ds) = tiny();
        let enc = FeatureEncoder::fit(&ds);
        let score = ds.samples[0].best_score;
        let z = enc.encode_perf(score);
        let back = enc.decode_perf(z);
        assert!((back - score).abs() / score < 1e-3, "{back} vs {score}");
    }

    #[test]
    fn prepared_dataset_shapes_and_labels() {
        let (task, ds) = tiny();
        let enc = FeatureEncoder::fit(&ds);
        let pe_codec = UovCodec::new(16, 64);
        let buf_codec = UovCodec::new(16, 12);
        let prep = PreparedDataset::build(&ds, &task, &enc, &pe_codec, &buf_codec, 16);
        assert_eq!(prep.len(), 40);
        assert_eq!(prep.pe_encoded.shape(), &[40, 16]);
        assert_eq!(prep.buf_encoded.shape(), &[40, 12]); // 16 clamps to 12 choices
        assert_eq!(prep.contrastive_labels.len(), 40);
        // labels reproducible from targets
        for (i, s) in ds.samples.iter().enumerate() {
            assert_eq!(prep.pe_targets[i], s.optimal.pe_idx);
        }
    }

    #[test]
    fn batch_extracts_requested_rows() {
        let (task, ds) = tiny();
        let enc = FeatureEncoder::fit(&ds);
        let pe_codec = OneHotCodec::new(64);
        let buf_codec = OneHotCodec::new(12);
        let prep = PreparedDataset::build(&ds, &task, &enc, &pe_codec, &buf_codec, 16);
        let b = prep.batch(&[3, 7]);
        assert_eq!(b.features.shape(), &[2, NUM_FEATURES]);
        assert_eq!(b.features.row(0), prep.features.row(3));
        assert_eq!(b.labels[1], prep.contrastive_labels[7]);
    }
}
