//! Model hyperparameters and output-head configuration.

use ai2_uov::{ConfigCodec, DiscretizationKind, OneHotCodec, RegressionCodec, UovCodec};
use serde::{Deserialize, Serialize};

/// Output-head representation — UOV by default, with the paper's ablation
/// alternatives (Figs. 8b, 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeadKind {
    /// Unified Ordinal Vectors with `K` buckets (the paper's default,
    /// `K = 16`).
    Uov {
        /// Bucket count.
        k: usize,
    },
    /// One-hot classification over all choices (the "Classification"
    /// columns of Fig. 9).
    Classification,
    /// Single-scalar regression (the `K = 1` end of Fig. 8b).
    Regression,
}

impl HeadKind {
    /// Builds the codec for an axis with `num_choices` options.
    pub fn codec(self, num_choices: usize) -> Box<dyn ConfigCodec> {
        match self {
            HeadKind::Uov { k } => Box::new(UovCodec::with_kind(
                DiscretizationKind::SpaceIncreasing,
                k,
                num_choices,
            )),
            HeadKind::Classification => Box::new(OneHotCodec::new(num_choices)),
            HeadKind::Regression => Box::new(RegressionCodec::new(num_choices)),
        }
    }
}

impl Default for HeadKind {
    fn default() -> Self {
        HeadKind::Uov { k: 16 }
    }
}

/// Architecture hyperparameters of [`crate::Airchitect2`].
///
/// The defaults are the CPU-scaled equivalent of the paper's setup:
/// `L = 2` stacked self-attention blocks in both encoder and decoder,
/// 4 input tokens (one per Table I feature), 16 UOV buckets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Transformer width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Stacked blocks per side (`L` in the paper's Fig. 2).
    pub layers: usize,
    /// Width of the intermediate representation (embedding space).
    pub d_emb: usize,
    /// Input tokens (4: `M`, `N`, `K`, dataflow).
    pub tokens: usize,
    /// Output-head representation.
    pub head: HeadKind,
    /// Parameter-init / batching seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            d_model: 32,
            heads: 4,
            layers: 2,
            d_emb: 16,
            tokens: 4,
            head: HeadKind::default(),
            seed: 0xD47E,
        }
    }
}

impl ModelConfig {
    /// A tiny configuration for unit tests (width 16, one layer).
    pub fn tiny() -> Self {
        ModelConfig {
            d_model: 16,
            heads: 2,
            layers: 1,
            d_emb: 8,
            ..Self::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`, or any dimension
    /// is zero.
    pub fn validate(&self) {
        assert!(
            self.d_model > 0 && self.heads > 0 && self.layers > 0,
            "zero dimension"
        );
        assert!(self.d_emb > 0 && self.tokens > 0, "zero dimension");
        assert_eq!(
            self.d_model % self.heads,
            0,
            "d_model {} not divisible by heads {}",
            self.d_model,
            self.heads
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ModelConfig::default().validate();
        ModelConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_heads_rejected() {
        ModelConfig {
            d_model: 30,
            heads: 4,
            ..ModelConfig::default()
        }
        .validate();
    }

    #[test]
    fn head_kinds_produce_codecs() {
        assert_eq!(HeadKind::Uov { k: 16 }.codec(64).width(), 16);
        assert_eq!(HeadKind::Classification.codec(64).width(), 64);
        assert_eq!(HeadKind::Regression.codec(64).width(), 1);
        // more buckets than choices degenerate to per-choice buckets
        assert_eq!(HeadKind::Uov { k: 16 }.codec(12).width(), 12);
    }
}
