//! The int8 decoder checkpoint flavor.
//!
//! A quantized-flavor [`crate::checkpoint::ModelCheckpoint`] carries,
//! alongside its full `f32` parameters, an int8 copy of every decoder
//! matmul weight ([`QuantBlob`]). A model restored from such a checkpoint
//! serves decoder inference through [`ai2_nn::quant::QuantizedLinear`]
//! layers rebuilt from the *stored* `i8` data — never re-quantized — so
//! every replica of one published checkpoint answers bit-identically,
//! which is exactly the invariant the serving checker asserts per flavor.
//!
//! Quantization itself is deterministic (symmetric per-output-channel,
//! round-to-nearest), so publishing the flavor twice from the same `f32`
//! weights also produces identical blobs.

use std::collections::BTreeMap;

use ai2_nn::quant::QuantizedLinear;
use serde::{Deserialize, Serialize};

/// Serialized form of one [`QuantizedLinear`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    /// Input feature count of the original `[in_dim, out_dim]` weight.
    pub in_dim: usize,
    /// Output feature count.
    pub out_dim: usize,
    /// Per-output-channel dequantization scales (`out_dim` entries).
    pub scales: Vec<f32>,
    /// Transposed `[out_dim, in_dim]` int8 weight data.
    pub data: Vec<i8>,
}

impl QuantTensor {
    /// Captures a quantized layer for serialization.
    pub fn from_linear(q: &QuantizedLinear) -> QuantTensor {
        QuantTensor {
            in_dim: q.in_dim(),
            out_dim: q.out_dim(),
            scales: q.scales().to_vec(),
            data: q.weights_i8().to_vec(),
        }
    }

    /// Rebuilds the runtime layer from stored data.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with the dimensions.
    pub fn to_linear(&self) -> QuantizedLinear {
        QuantizedLinear::from_parts(
            self.data.clone(),
            self.scales.clone(),
            self.in_dim,
            self.out_dim,
        )
    }
}

/// Every int8 decoder weight of a quantized-flavor checkpoint, keyed by
/// the weight's parameter-store name (`"dec.blk0.attn.wq.w"`, …).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantBlob {
    /// Name → quantized tensor.
    pub tensors: BTreeMap<String, QuantTensor>,
}

impl QuantBlob {
    /// Number of quantized tensors in the blob.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the blob holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }
}
