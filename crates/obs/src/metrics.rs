//! Lock-free metrics: atomic counters, gauges and fixed-bucket
//! log-scale histograms, grouped into name-keyed registries.
//!
//! A [`Histogram`] is a fixed array of [`NUM_BUCKETS`] atomic bucket
//! counts: values below [`SUB`] get exact unit-width buckets, larger
//! values land in log-scale buckets with [`SUB`] sub-buckets per power
//! of two (≲3% relative quantile error). Memory is **bounded for the
//! life of the process** — recording never allocates — which is the fix
//! for the old serve metrics window that grew an unbounded sample
//! `Vec`.
//!
//! The hot path is registration-free: resolve `Arc` handles from a
//! [`Registry`] once at startup, then update with `Relaxed` atomics.
//! Readers take a [`MetricsDump`] snapshot per registry and
//! [`MetricsDump::merge`] them (the serving layer keeps one registry
//! per shard).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-buckets per power of two (and the width of the exact region).
pub const SUB: usize = 1 << SUB_BITS;
const SUB_BITS: u32 = 5;
/// Total bucket count covering the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB - 1);
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Half-open `[lo, hi)` value range of bucket `i` (`hi` saturates at
/// `u64::MAX` for the topmost octave).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB {
        return (i as u64, i as u64 + 1);
    }
    let octave = (i >> SUB_BITS) as u32;
    let shift = octave - 1;
    let sub = (i & (SUB - 1)) as u64;
    let lo = (SUB as u64 + sub) << shift;
    (lo, lo.saturating_add(1u64 << shift))
}

/// Monotonic atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed atomic gauge (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log-scale histogram of `u64` values. Recording is
/// lock-free and allocation-free; memory is a fixed [`NUM_BUCKETS`]
/// array regardless of how many values are recorded.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`], mergeable across shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), interpolated within the
    /// containing bucket; `None` when empty. Exact for values below
    /// [`SUB`]; ≲3% relative error above.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (below + c - 1) as f64 >= rank {
                let (lo, hi) = bucket_bounds(i);
                let top = (hi - 1).max(lo);
                let within = if c == 1 {
                    0.5
                } else {
                    ((rank - below as f64) / (c - 1) as f64).clamp(0.0, 1.0)
                };
                return Some(lo as f64 + within * (top - lo) as f64);
            }
            below += c;
        }
        // Unreachable when count equals the bucket total, but stay safe.
        None
    }
}

/// A named metric handle.
#[derive(Clone, Debug)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Snapshot value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// Name-keyed collection of metrics. Registration (get-or-create) takes
/// a lock; the returned `Arc` handles update lock-free, so resolve them
/// once at startup and hammer away.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().expect("metrics registry poisoned")
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    pub fn snapshot(&self) -> MetricsDump {
        let metrics = self
            .lock()
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect();
        MetricsDump { metrics }
    }
}

/// Merged point-in-time view over one or more registries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsDump {
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsDump {
    /// Merge another dump in: counters and gauges add, histograms merge
    /// bucket-wise. Mismatched kinds under one name panic — that is a
    /// registration bug, not a runtime condition.
    pub fn merge(&mut self, other: &MetricsDump) {
        for (name, v) in &other.metrics {
            match self.metrics.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), v) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (a, b) => panic!("metric {name:?} kind mismatch: {a:?} vs {b:?}"),
                },
            }
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    pub fn gauge(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_roundtrip() {
        for v in 0..4096u64 {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "v={v} i={i} lo={lo} hi={hi}");
        }
        for shift in 0..63 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v.saturating_mul(2) - 1] {
                let i = bucket_index(probe);
                assert!(i < NUM_BUCKETS);
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= probe && (probe < hi || hi == u64::MAX));
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_have_exact_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        // Exact buckets below 64, width-2 buckets up to 128: stay close
        // to the numpy-convention reference (50.5 / 95.05 / 99.01).
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 50.5).abs() <= 1.0, "p50={p50}");
        let p95 = s.quantile(0.95).unwrap();
        assert!((p95 - 95.05).abs() <= 2.5, "p95={p95}");
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
        let top = s.quantile(1.0).unwrap();
        assert!((99.0..=101.0).contains(&top), "p100={top}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn log_buckets_bound_relative_error() {
        let h = Histogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, want) in [(0.0, 1_000.0), (1.0, 1_000_000.0)] {
            let got = s.quantile(q).unwrap();
            assert!(
                (got - want).abs() / want <= 0.04,
                "q={q} got={got} want={want}"
            );
        }
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            all.record(v * 7);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn registry_snapshot_and_dump_merge() {
        let shard0 = Registry::new();
        let shard1 = Registry::new();
        shard0.counter("served").add(3);
        shard1.counter("served").add(4);
        shard0.gauge("depth").set(2);
        shard1.gauge("depth").set(5);
        shard0.histogram("lat").record(10);
        shard1.histogram("lat").record(20);
        let mut dump = shard0.snapshot();
        dump.merge(&shard1.snapshot());
        assert_eq!(dump.counter("served"), 7);
        assert_eq!(dump.gauge("depth"), 7);
        let lat = dump.histogram("lat").unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.sum(), 30);
        assert_eq!(dump.counter("missing"), 0);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.inc();
        assert_eq!(r.snapshot().counter("x"), 2);
    }
}
