//! Deterministic span tracing with Chrome `trace_event` export.
//!
//! A [`Tracer`] hands out [`SpanGuard`] RAII guards whose start/end
//! timestamps come from an injected [`TimeSource`] closure — under the
//! serving stack's `VirtualClock` two replays of the same scenario
//! produce byte-identical dumps. Span ids are allocated from a single
//! atomic sequence (reset when tracing is enabled), so id assignment is
//! deterministic under the simulation harness's manual driver.
//!
//! Completed spans land in a **bounded** buffer; once full, further
//! spans are counted as dropped rather than recorded, so the tracer can
//! stay enabled indefinitely without growing memory. Drops are
//! deterministic too — the same replay drops the same spans.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Nanosecond time source. Wrap the serving clock so span timestamps
/// are deterministic under a virtual clock.
pub type TimeSource = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Sentinel parent id for root spans.
pub const NO_PARENT: u64 = 0;

/// Default completed-span buffer capacity.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A typed span/event argument value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgValue {
    U64(u64),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One completed span (or instant event, when `start_ns == end_ns` and
/// `instant` is set).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    /// Parent span id, or [`NO_PARENT`] for roots.
    pub parent: u64,
    pub name: &'static str,
    pub cat: &'static str,
    /// Logical thread/shard lane (Chrome `tid`).
    pub tid: u64,
    pub start_ns: u64,
    pub end_ns: u64,
    pub instant: bool,
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Buffer {
    spans: Vec<SpanRecord>,
    dropped: u64,
}

struct Inner {
    enabled: AtomicBool,
    time: TimeSource,
    /// Next span id; ids start at 1 so 0 can mean "no parent".
    next_id: AtomicU64,
    buf: Mutex<Buffer>,
    cap: usize,
}

/// Cheaply clonable handle to a shared trace buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("cap", &self.inner.cap)
            .finish()
    }
}

impl Tracer {
    /// A tracer driven by `time` (nanoseconds), initially disabled.
    pub fn new(time: TimeSource) -> Self {
        Self::with_capacity(time, DEFAULT_CAPACITY)
    }

    /// Like [`Tracer::new`] with an explicit completed-span capacity.
    pub fn with_capacity(time: TimeSource, cap: usize) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                time,
                next_id: AtomicU64::new(0),
                buf: Mutex::new(Buffer {
                    spans: Vec::new(),
                    dropped: 0,
                }),
                cap,
            }),
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording. Enabling starts a **fresh capture**:
    /// the buffer is cleared and the id sequence resets, so captures are
    /// deterministic regardless of what ran before.
    pub fn set_enabled(&self, on: bool) {
        if on {
            let mut buf = self.lock();
            buf.spans.clear();
            buf.dropped = 0;
            self.inner.next_id.store(0, Ordering::Relaxed);
        }
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    pub fn now_ns(&self) -> u64 {
        (self.inner.time)()
    }

    /// Allocate a fresh span id (never [`NO_PARENT`]).
    pub fn alloc_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Buffer> {
        self.inner.buf.lock().expect("trace buffer poisoned")
    }

    /// Number of spans dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    fn push(&self, rec: SpanRecord) {
        let mut buf = self.lock();
        if buf.spans.len() < self.inner.cap {
            buf.spans.push(rec);
        } else {
            buf.dropped += 1;
        }
    }

    /// Open a live span. Returns an inert guard (zero cost on drop)
    /// when tracing is disabled.
    pub fn span(&self, name: &'static str, cat: &'static str, tid: u64, parent: u64) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard { active: None };
        }
        SpanGuard {
            active: Some(ActiveSpan {
                tracer: self.clone(),
                id: self.alloc_id(),
                parent,
                name,
                cat,
                tid,
                start_ns: self.now_ns(),
                args: Vec::new(),
                tls_prev: None,
            }),
        }
    }

    /// Record a span whose interval was measured externally (e.g. queue
    /// wait reconstructed from an admission timestamp). Returns the span
    /// id, or [`NO_PARENT`] when tracing is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        parent: u64,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> u64 {
        if !self.enabled() {
            return NO_PARENT;
        }
        let id = self.alloc_id();
        self.record_span_id(id, name, cat, tid, parent, start_ns, end_ns, args);
        id
    }

    /// Like [`Tracer::record_span`] but with a caller-allocated id —
    /// used when the id had to exist before the interval ended (e.g. a
    /// request root span whose id children reference while it is still
    /// open).
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_id(
        &self,
        id: u64,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        parent: u64,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() || id == NO_PARENT {
            return;
        }
        self.push(SpanRecord {
            id,
            parent,
            name,
            cat,
            tid,
            start_ns,
            end_ns: end_ns.max(start_ns),
            instant: false,
            args,
        });
    }

    /// Record an instant event at the current time.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        let now = self.now_ns();
        let id = self.alloc_id();
        self.push(SpanRecord {
            id,
            parent: NO_PARENT,
            name,
            cat,
            tid,
            start_ns: now,
            end_ns: now,
            instant: true,
            args,
        });
    }

    /// Snapshot of all completed spans (does not drain).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Render the buffer as Chrome `trace_event` JSON (the format
    /// `chrome://tracing` and Perfetto load). Events are sorted by
    /// `(start_ns, id)`, one per line, timestamps in fractional
    /// microseconds — the output is byte-deterministic for a given
    /// buffer state.
    pub fn chrome_json(&self) -> String {
        let (mut recs, dropped) = {
            let buf = self.lock();
            (buf.spans.clone(), buf.dropped)
        };
        recs.sort_by_key(|r| (r.start_ns, r.id));
        let mut out = String::with_capacity(64 + recs.len() * 160);
        out.push_str("{\"traceEvents\":[");
        for (i, r) in recs.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"name\":\"");
            push_escaped(&mut out, r.name);
            out.push_str("\",\"cat\":\"");
            push_escaped(&mut out, r.cat);
            if r.instant {
                out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                push_us(&mut out, r.start_ns);
            } else {
                out.push_str("\",\"ph\":\"X\",\"ts\":");
                push_us(&mut out, r.start_ns);
                out.push_str(",\"dur\":");
                push_us(&mut out, r.end_ns - r.start_ns);
            }
            let _ = write!(out, ",\"pid\":1,\"tid\":{}", r.tid);
            let _ = write!(out, ",\"args\":{{\"span_id\":{}", r.id);
            if r.parent != NO_PARENT {
                let _ = write!(out, ",\"parent\":{}", r.parent);
            }
            for (k, v) in &r.args {
                out.push_str(",\"");
                push_escaped(&mut out, k);
                out.push_str("\":");
                match v {
                    ArgValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    ArgValue::Str(s) => {
                        out.push('"');
                        push_escaped(&mut out, s);
                        out.push('"');
                    }
                }
            }
            out.push_str("}}");
        }
        let _ = write!(out, "\n],\"otherData\":{{\"dropped\":{dropped}}}}}\n");
        out
    }
}

/// Microseconds with fixed 3-decimal nanosecond remainder — stable
/// formatting (no float printing) for byte-identical dumps.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct ActiveSpan {
    tracer: Tracer,
    id: u64,
    parent: u64,
    name: &'static str,
    cat: &'static str,
    tid: u64,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
    /// `Some(previous_parent)` when this span installed itself as the
    /// thread-local parent (see [`local_span`]); restored on drop.
    tls_prev: Option<u64>,
}

/// RAII guard for a live span; records on drop. Inert (and allocation
/// free) when tracing was disabled at creation.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn inert() -> Self {
        SpanGuard { active: None }
    }

    /// This span's id, or [`NO_PARENT`] if inert — pass as `parent` to
    /// children.
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(NO_PARENT, |a| a.id)
    }

    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attach an argument (no-op when inert).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(a) = self.active.as_mut() {
            a.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        if let Some(prev) = a.tls_prev {
            CURRENT.with(|c| {
                if let Some(ctx) = c.borrow_mut().as_mut() {
                    ctx.parent = prev;
                }
            });
        }
        let end_ns = a.tracer.now_ns().max(a.start_ns);
        a.tracer.push(SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            cat: a.cat,
            tid: a.tid,
            start_ns: a.start_ns,
            end_ns,
            instant: false,
            args: a.args,
        });
    }
}

struct LocalCtx {
    tracer: Tracer,
    parent: u64,
    tid: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<LocalCtx>> = const { RefCell::new(None) };
}

/// Restores the previous thread-local tracer context on drop.
pub struct ScopedTracer {
    prev: Option<LocalCtx>,
}

impl Drop for ScopedTracer {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Install `tracer` as this thread's current tracer for the lifetime of
/// the returned guard. Spans opened via [`local_span`] (e.g. inside
/// tensor kernels) attach under `parent` on lane `tid`.
pub fn scoped(tracer: &Tracer, parent: u64, tid: u64) -> ScopedTracer {
    let prev = CURRENT.with(|c| {
        c.replace(Some(LocalCtx {
            tracer: tracer.clone(),
            parent,
            tid,
        }))
    });
    ScopedTracer { prev }
}

/// Open a span on the thread-local tracer installed by [`scoped`].
/// While the guard lives, it becomes the thread-local parent, so nested
/// `local_span` calls form a well-nested tree. When no tracer is
/// installed — or tracing is disabled — this is one thread-local read
/// and a branch: no allocation, no atomics on the buffer.
pub fn local_span(name: &'static str, cat: &'static str) -> SpanGuard {
    CURRENT.with(|c| {
        let mut b = c.borrow_mut();
        let Some(ctx) = b.as_mut() else {
            return SpanGuard::inert();
        };
        if !ctx.tracer.enabled() {
            return SpanGuard::inert();
        }
        let id = ctx.tracer.alloc_id();
        let prev = ctx.parent;
        ctx.parent = id;
        let start_ns = ctx.tracer.now_ns();
        SpanGuard {
            active: Some(ActiveSpan {
                tracer: ctx.tracer.clone(),
                id,
                parent: prev,
                name,
                cat,
                tid: ctx.tid,
                start_ns,
                args: Vec::new(),
                tls_prev: Some(prev),
            }),
        }
    })
}

/// Open a span: `span!(tracer, name, cat, tid, parent)` on an explicit
/// tracer, or `span!(name, cat)` on the thread-local tracer installed
/// by [`scoped`].
#[macro_export]
macro_rules! span {
    ($name:expr, $cat:expr) => {
        $crate::trace::local_span($name, $cat)
    };
    ($tracer:expr, $name:expr, $cat:expr, $tid:expr, $parent:expr) => {
        $tracer.span($name, $cat, $tid, $parent)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtual_tracer() -> (Tracer, Arc<AtomicU64>) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        let time: TimeSource = Arc::new(move || t2.load(Ordering::SeqCst));
        (Tracer::new(time), t)
    }

    #[test]
    fn disabled_tracer_records_nothing_and_guards_are_inert() {
        let (tr, _) = virtual_tracer();
        {
            let mut g = tr.span("a", "t", 0, NO_PARENT);
            assert!(!g.is_recording());
            assert_eq!(g.id(), NO_PARENT);
            g.arg("k", 1u64);
        }
        tr.instant("i", "t", 0, Vec::new());
        assert!(tr.records().is_empty());
        assert_eq!(
            tr.chrome_json(),
            "{\"traceEvents\":[\n],\"otherData\":{\"dropped\":0}}\n"
        );
    }

    #[test]
    fn spans_nest_and_capture_virtual_time() {
        let (tr, clock) = virtual_tracer();
        tr.set_enabled(true);
        let root_id;
        {
            clock.store(1000, Ordering::SeqCst);
            let mut root = tr.span("request", "serve", 3, NO_PARENT);
            root.arg("req", "q1");
            root_id = root.id();
            {
                clock.store(2000, Ordering::SeqCst);
                let child = tr.span("inner", "serve", 3, root.id());
                assert_eq!(child.id(), root_id + 1);
                clock.store(2500, Ordering::SeqCst);
            }
            clock.store(4000, Ordering::SeqCst);
        }
        let recs = tr.records();
        assert_eq!(recs.len(), 2);
        let child = &recs[0];
        let root = &recs[1];
        assert_eq!(root.id, root_id);
        assert_eq!((root.start_ns, root.end_ns), (1000, 4000));
        assert_eq!(child.parent, root_id);
        assert_eq!((child.start_ns, child.end_ns), (2000, 2500));
        assert_eq!(root.args, vec![("req", ArgValue::Str("q1".into()))]);
    }

    #[test]
    fn local_span_uses_the_scoped_tracer_and_auto_parents() {
        let (tr, _) = virtual_tracer();
        // No scoped tracer installed: inert.
        assert!(!local_span("gemm", "kernel").is_recording());
        tr.set_enabled(true);
        {
            let _scope = scoped(&tr, 7, 2);
            let outer = local_span("forward", "kernel");
            let outer_id = outer.id();
            {
                let inner = local_span("gemm", "kernel");
                assert!(inner.is_recording());
            }
            drop(outer);
            let recs = tr.records();
            assert_eq!(recs[0].name, "gemm");
            assert_eq!(recs[0].parent, outer_id);
            assert_eq!(recs[1].parent, 7);
            assert_eq!(recs[1].tid, 2);
        }
        // Scope dropped: inert again.
        assert!(!local_span("gemm", "kernel").is_recording());
    }

    #[test]
    fn enabling_resets_ids_and_buffer_for_deterministic_captures() {
        let (tr, clock) = virtual_tracer();
        tr.set_enabled(true);
        drop(tr.span("a", "t", 0, NO_PARENT));
        drop(tr.span("b", "t", 0, NO_PARENT));
        let first = tr.chrome_json();
        tr.set_enabled(true); // fresh capture
        clock.store(0, Ordering::SeqCst);
        drop(tr.span("a", "t", 0, NO_PARENT));
        drop(tr.span("b", "t", 0, NO_PARENT));
        assert_eq!(tr.chrome_json(), first);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let time: TimeSource = Arc::new(|| 0);
        let tr = Tracer::with_capacity(time, 2);
        tr.set_enabled(true);
        for _ in 0..5 {
            drop(tr.span("s", "t", 0, NO_PARENT));
        }
        assert_eq!(tr.records().len(), 2);
        assert_eq!(tr.dropped(), 3);
        assert!(tr.chrome_json().contains("\"dropped\":3"));
    }

    #[test]
    fn chrome_json_escapes_and_formats_timestamps() {
        let (tr, clock) = virtual_tracer();
        tr.set_enabled(true);
        clock.store(1_234_567, Ordering::SeqCst);
        tr.instant(
            "tick",
            "life",
            1,
            vec![("path", ArgValue::Str("a\"b\\c\n".into()))],
        );
        let json = tr.chrome_json();
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("a\\\"b\\\\c\\n"));
        assert!(json.ends_with("],\"otherData\":{\"dropped\":0}}\n"));
    }
}
