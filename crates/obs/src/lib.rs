//! `ai2_obs` — the observability substrate for the AIrchitect v2
//! serving stack: deterministic spans and lock-free metrics, with zero
//! crates.io dependencies (std only).
//!
//! Two halves:
//!
//! * [`trace`] — a [`Tracer`] that records RAII-guarded spans and
//!   instant events into a bounded buffer. Timestamps come from an
//!   injected [`TimeSource`] (the serving `Clock`), so a run under a
//!   virtual clock produces **byte-identical** Chrome `trace_event`
//!   JSON every replay. A thread-local tracer slot ([`scoped`] /
//!   [`local_span`]) lets leaf crates (`ai2_tensor` kernels, the
//!   `airchitect` forward pass) open spans without threading a tracer
//!   through every signature; when tracing is disabled or no tracer is
//!   installed the cost is one thread-local read and a branch — no
//!   allocation, preserving the zero-alloc steady-state forward.
//!
//! * [`metrics`] — atomic [`Counter`]s / [`Gauge`]s and a fixed-bucket
//!   log-scale [`Histogram`] (bounded memory, ~3% relative quantile
//!   error), grouped into name-keyed [`Registry`] instances. The
//!   serving layer keeps one registry per shard; readers merge
//!   [`MetricsDump`] snapshots, so the hot path never contends on a
//!   lock (registration takes a lock once at startup; updates are
//!   `Relaxed` atomics on pre-resolved `Arc` handles).

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricValue, MetricsDump, Registry,
};
pub use trace::{
    local_span, scoped, ArgValue, ScopedTracer, SpanGuard, SpanRecord, TimeSource, Tracer,
    NO_PARENT,
};
