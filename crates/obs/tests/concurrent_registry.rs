//! Concurrent-writer property test for the lock-free registry: N
//! threads hammer counters, gauges and histograms through shared `Arc`
//! handles; the merged snapshot must equal a single-threaded reference
//! fed the same values. Counters and histogram buckets are exact under
//! concurrency (atomic adds), so equality is bit-exact, not
//! approximate.

use ai2_obs::{MetricsDump, Registry};

/// Deterministic splitmix64 so the test needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn thread_values(seed: u64, thread: u64, n: usize) -> Vec<u64> {
    let mut state = seed ^ (thread.wrapping_mul(0xa076_1d64_78bd_642f));
    (0..n).map(|_| splitmix64(&mut state) >> 20).collect()
}

#[test]
fn merged_concurrent_snapshot_equals_single_threaded_reference() {
    const THREADS: usize = 8;
    const OPS: usize = 20_000;
    const SHARDS: usize = 4;

    for seed in [1u64, 0xDEAD_BEEF, 42] {
        // Concurrent run: THREADS writers spread across SHARDS
        // registries, like serve shards sharing worker threads.
        let shards: Vec<Registry> = (0..SHARDS).map(|_| Registry::new()).collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let reg = &shards[t % SHARDS];
                scope.spawn(move || {
                    let served = reg.counter("served");
                    let depth = reg.gauge("depth");
                    let lat = reg.histogram("latency_ns");
                    let batch = reg.histogram("batch");
                    for v in thread_values(seed, t as u64, OPS) {
                        served.inc();
                        if v % 2 == 0 {
                            depth.add(1);
                        } else {
                            depth.sub(1);
                        }
                        lat.record(v);
                        batch.record(v % 33);
                    }
                });
            }
        });
        let mut merged = MetricsDump::default();
        for reg in &shards {
            merged.merge(&reg.snapshot());
        }

        // Single-threaded reference fed exactly the same values.
        let reference = Registry::new();
        {
            let served = reference.counter("served");
            let depth = reference.gauge("depth");
            let lat = reference.histogram("latency_ns");
            let batch = reference.histogram("batch");
            for t in 0..THREADS {
                for v in thread_values(seed, t as u64, OPS) {
                    served.inc();
                    if v % 2 == 0 {
                        depth.add(1);
                    } else {
                        depth.sub(1);
                    }
                    lat.record(v);
                    batch.record(v % 33);
                }
            }
        }

        assert_eq!(merged, reference.snapshot(), "seed={seed:#x}");
        assert_eq!(merged.counter("served"), (THREADS * OPS) as u64);
    }
}
