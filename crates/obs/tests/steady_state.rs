//! Memory steady-state regression tests, enforced with a counting
//! global allocator: recording into the bounded histogram never
//! allocates (the fix for the old serve metrics window that grew an
//! unbounded sample `Vec`), and the disabled tracing path — what every
//! kernel call pays when no trace is being captured — is
//! allocation-free too.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ai2_obs::{local_span, Registry, TimeSource, Tracer, NO_PARENT};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn recording_a_million_samples_never_allocates() {
    let reg = Registry::new();
    let counter = reg.counter("served");
    let gauge = reg.gauge("depth");
    let hist = reg.histogram("latency_ns");
    // Warm up outside the measured window, then measure steady state.
    hist.record(1);
    let before = allocs();
    for i in 0..1_000_000u64 {
        counter.inc();
        gauge.set(i as i64 & 0xff);
        hist.record(i.wrapping_mul(2654435761) >> 12);
    }
    let during = allocs() - before;
    assert_eq!(during, 0, "steady-state metric recording allocated");
    assert_eq!(hist.count(), 1_000_001);
}

#[test]
fn disabled_tracing_path_never_allocates() {
    let time: TimeSource = Arc::new(|| 0);
    let tracer = Tracer::new(time);
    assert!(!tracer.enabled());
    let before = allocs();
    for _ in 0..100_000 {
        // No scoped tracer installed: the kernel-side fast path.
        let g = local_span("tensor.gemm", "kernel");
        assert!(!g.is_recording());
        // Disabled explicit tracer: the serve-side fast path.
        let mut s = tracer.span("request", "serve", 0, NO_PARENT);
        s.arg("ignored", 1u64);
    }
    let during = allocs() - before;
    assert_eq!(during, 0, "disabled tracing path allocated");
}
