//! A whole model as an ordered list of layers.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// A named DNN/LLM workload: an ordered list of [`Layer`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWorkload {
    /// Model name (`"resnet50"`, `"llama2_7b"` …).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl ModelWorkload {
    /// Creates a model from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "ModelWorkload: no layers");
        ModelWorkload {
            name: name.into(),
            layers,
        }
    }

    /// Total MACs over all layers and repetitions.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::total_macs).sum()
    }

    /// Number of layer entries (not counting repetitions).
    pub fn num_unique_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total executed layer instances (counting repetitions).
    pub fn num_layer_instances(&self) -> u64 {
        self.layers.iter().map(|l| l.count as u64).sum()
    }

    /// Every layer tiled into the Table I ranges — the form consumed by
    /// the DSE pipeline (per-layer hardware recommendation).
    pub fn to_dse_layers(&self) -> Vec<Layer> {
        self.layers.iter().map(Layer::tiled_to_ranges).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_maestro::GemmWorkload;

    fn model() -> ModelWorkload {
        ModelWorkload::new(
            "toy",
            vec![
                Layer::new("a", GemmWorkload::new(2, 3, 4)),
                Layer::repeated("b", GemmWorkload::new(5, 6, 7), 3),
            ],
        )
    }

    #[test]
    fn totals() {
        let m = model();
        assert_eq!(m.total_macs(), 24 + 3 * 210);
        assert_eq!(m.num_unique_layers(), 2);
        assert_eq!(m.num_layer_instances(), 4);
    }

    #[test]
    fn dse_layers_are_in_range() {
        let m = ModelWorkload::new("big", vec![Layer::linear("l", 1024, 4096, 4096)]);
        for l in m.to_dse_layers() {
            assert!(l.in_table_i_ranges());
        }
    }

    #[test]
    #[should_panic(expected = "no layers")]
    fn empty_model_rejected() {
        ModelWorkload::new("empty", vec![]);
    }
}
