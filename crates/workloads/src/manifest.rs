//! The 105-workload training manifest.
//!
//! The paper's dataset is built from **105 real DNN workloads**; this
//! module assembles the equivalent: the unique per-layer GEMMs (tiled
//! into the Table I ranges) contributed by the training half of the
//! [`crate::zoo`], truncated deterministically to exactly 105 entries.

use std::collections::HashSet;

use ai2_maestro::GemmWorkload;

use crate::layer::Layer;
use crate::zoo;

/// Number of workloads in the training manifest, matching the paper.
pub const MANIFEST_SIZE: usize = 105;

/// The 105 unique training workloads (deduplicated by GEMM shape, in
/// deterministic zoo order, truncated to [`MANIFEST_SIZE`]).
///
/// # Panics
///
/// Panics if the zoo provides fewer than 105 unique in-range layers —
/// that would mean the zoo was edited without updating the manifest.
pub fn manifest_105() -> Vec<Layer> {
    let mut seen: HashSet<GemmWorkload> = HashSet::new();
    let mut out: Vec<Layer> = Vec::new();
    for model in zoo::training_models() {
        for layer in model.to_dse_layers() {
            if seen.insert(layer.gemm) {
                let mut named = layer.clone();
                named.name = format!("{}::{}", model.name, layer.name);
                out.push(named);
            }
        }
    }
    assert!(
        out.len() >= MANIFEST_SIZE,
        "zoo provides only {} unique layers; expected at least {MANIFEST_SIZE}",
        out.len()
    );
    out.truncate(MANIFEST_SIZE);
    out
}

/// Unique layers the zoo can contribute before truncation (diagnostics).
pub fn available_unique_layers() -> usize {
    let mut seen: HashSet<GemmWorkload> = HashSet::new();
    let mut count = 0;
    for model in zoo::training_models() {
        for layer in model.to_dse_layers() {
            if seen.insert(layer.gemm) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_has_exactly_105_entries() {
        assert_eq!(manifest_105().len(), MANIFEST_SIZE);
    }

    #[test]
    fn manifest_entries_are_unique_and_in_range() {
        let m = manifest_105();
        let mut seen = HashSet::new();
        for l in &m {
            assert!(l.in_table_i_ranges(), "{} out of range", l.name);
            assert!(seen.insert(l.gemm), "duplicate shape {}", l.gemm);
        }
    }

    #[test]
    fn manifest_is_deterministic() {
        assert_eq!(manifest_105(), manifest_105());
    }

    #[test]
    fn manifest_spans_cnn_and_transformer_layers() {
        let m = manifest_105();
        assert!(m.iter().any(|l| l.name.starts_with("vgg16")));
        assert!(m.iter().any(|l| l.name.starts_with("bert_base")));
    }
}
