//! A named layer lowered to a GEMM, with a repetition count.

use ai2_maestro::GemmWorkload;
use serde::{Deserialize, Serialize};

/// Maximum `M` in the paper's Table I input space.
pub const TABLE_I_MAX_M: u64 = 256;
/// Maximum `N` in the paper's Table I input space.
pub const TABLE_I_MAX_N: u64 = 1677;
/// Maximum `K` in the paper's Table I input space.
pub const TABLE_I_MAX_K: u64 = 1185;

/// One layer of a model: a GEMM plus how many times it repeats
/// (e.g. the 12 identical blocks of BERT-base).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable layer name (`"conv2_x.3x3"`, `"ffn.up"` …).
    pub name: String,
    /// The GEMM this layer lowers to.
    pub gemm: GemmWorkload,
    /// How many times the layer executes per inference.
    pub count: u32,
}

impl Layer {
    /// Creates a layer executing once.
    pub fn new(name: impl Into<String>, gemm: GemmWorkload) -> Self {
        Layer {
            name: name.into(),
            gemm,
            count: 1,
        }
    }

    /// Creates a layer repeated `count` times.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn repeated(name: impl Into<String>, gemm: GemmWorkload, count: u32) -> Self {
        assert!(count > 0, "Layer: zero repetition count");
        Layer {
            name: name.into(),
            gemm,
            count,
        }
    }

    /// Lowers a 2-D convolution to its im2col GEMM:
    /// `M = out_h·out_w`, `N = out_channels`, `K = in_channels·kh·kw`.
    pub fn conv2d(
        name: impl Into<String>,
        out_h: u64,
        out_w: u64,
        out_c: u64,
        in_c: u64,
        kh: u64,
        kw: u64,
    ) -> Self {
        Layer::new(
            name,
            GemmWorkload::new(out_h * out_w, out_c, in_c * kh * kw),
        )
    }

    /// Lowers a fully connected / projection layer:
    /// `M = tokens (or batch)`, `N = out_features`, `K = in_features`.
    pub fn linear(
        name: impl Into<String>,
        tokens: u64,
        out_features: u64,
        in_features: u64,
    ) -> Self {
        Layer::new(name, GemmWorkload::new(tokens, out_features, in_features))
    }

    /// MACs contributed by all repetitions.
    pub fn total_macs(&self) -> u64 {
        self.gemm.macs() * self.count as u64
    }

    /// Splits an out-of-range GEMM into equal in-range tiles.
    ///
    /// A dimension exceeding its Table I bound is divided into the
    /// smallest number of equal chunks that fit; the returned layer holds
    /// the (ceiling-balanced) tile GEMM and a count multiplied by the
    /// number of tiles. In-range layers are returned unchanged.
    ///
    /// This mirrors how a compiler blocks a large GEMM onto a fixed
    /// accelerator, and keeps every DSE query inside the training
    /// distribution of the paper's Table I.
    pub fn tiled_to_ranges(&self) -> Layer {
        let split = |dim: u64, cap: u64| -> (u64, u64) {
            let parts = dim.div_ceil(cap);
            (dim.div_ceil(parts), parts)
        };
        let (m_t, pm) = split(self.gemm.m, TABLE_I_MAX_M);
        let (n_t, pn) = split(self.gemm.n, TABLE_I_MAX_N);
        let (k_t, pk) = split(self.gemm.k, TABLE_I_MAX_K);
        let tiles = pm * pn * pk;
        if tiles == 1 {
            return self.clone();
        }
        Layer {
            name: format!("{}[{}t]", self.name, tiles),
            gemm: GemmWorkload::new(m_t, n_t, k_t),
            count: self.count * tiles as u32,
        }
    }

    /// Whether the GEMM lies inside the Table I input space.
    pub fn in_table_i_ranges(&self) -> bool {
        self.gemm.m <= TABLE_I_MAX_M && self.gemm.n <= TABLE_I_MAX_N && self.gemm.k <= TABLE_I_MAX_K
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_lowering_matches_im2col() {
        let l = Layer::conv2d("c", 56, 56, 64, 3, 7, 7);
        assert_eq!(l.gemm.m, 3136);
        assert_eq!(l.gemm.n, 64);
        assert_eq!(l.gemm.k, 147);
    }

    #[test]
    fn linear_lowering() {
        let l = Layer::linear("fc", 128, 3072, 768);
        assert_eq!(l.gemm, GemmWorkload::new(128, 3072, 768));
    }

    #[test]
    fn total_macs_scales_with_count() {
        let l = Layer::repeated("blk", GemmWorkload::new(2, 3, 4), 5);
        assert_eq!(l.total_macs(), 24 * 5);
    }

    #[test]
    fn tiling_keeps_total_work_approximately() {
        let l = Layer::conv2d("big", 112, 112, 64, 3, 7, 7); // M = 12544
        let t = l.tiled_to_ranges();
        assert!(t.in_table_i_ranges());
        let orig = l.total_macs() as f64;
        let tiled = t.total_macs() as f64;
        // ceiling-balanced tiles may slightly overcount, never undercount
        assert!(tiled >= orig);
        assert!(
            tiled < orig * 1.10,
            "tiling overhead too large: {tiled} vs {orig}"
        );
    }

    #[test]
    fn tiling_in_range_is_identity() {
        let l = Layer::linear("small", 128, 1024, 512);
        assert_eq!(l.tiled_to_ranges(), l);
    }

    #[test]
    fn tiling_splits_every_axis() {
        let l = Layer::linear("llm.ffn", 512, 11008, 4096); // all three exceed
        let t = l.tiled_to_ranges();
        assert!(t.in_table_i_ranges());
        assert!(t.count >= 2 * 7 * 4);
        assert!(t.name.contains('t'));
    }
}
