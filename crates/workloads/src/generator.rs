//! Randomized workload sampling over the Table I input space.
//!
//! The paper generates its DSE dataset "by executing ConfuciuX on the
//! randomized input parameters" drawn from 105 real DNN workloads. The
//! [`WorkloadSampler`] reproduces that: a mixture of
//!
//! * uniform samples over the raw Table I ranges (design-space coverage),
//! * log-uniform samples (realistic density of small layers), and
//! * jittered copies of manifest layers (the real-workload component).

use ai2_maestro::{Dataflow, GemmWorkload};
use rand::rngs::StdRng;
use rand::Rng;

use crate::layer::{TABLE_I_MAX_K, TABLE_I_MAX_M, TABLE_I_MAX_N};
use crate::manifest;

/// One DSE input sample: a GEMM plus the mapping's dataflow, matching the
/// paper's input features `M, N, K, dataflow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DseInput {
    /// The workload GEMM.
    pub gemm: GemmWorkload,
    /// The mapping dataflow (a categorical *input* of the DSE task).
    pub dataflow: Dataflow,
}

impl DseInput {
    /// Raw feature vector `[M, N, K, dataflow_index]`.
    pub fn features(&self) -> [f32; 4] {
        let g = self.gemm.features();
        [g[0], g[1], g[2], self.dataflow.index() as f32]
    }
}

/// How a [`WorkloadSampler`] draws GEMM dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingStrategy {
    /// Uniform over `[1, max]` per dimension.
    Uniform,
    /// Log-uniform over `[1, max]` per dimension (dense small layers).
    LogUniform,
    /// Mixture: uniform / log-uniform / manifest-jitter with the given
    /// weights (normalised internally).
    Mixture {
        /// Weight of the uniform component.
        uniform: f32,
        /// Weight of the log-uniform component.
        log_uniform: f32,
        /// Weight of the manifest-jitter component.
        manifest: f32,
    },
}

impl Default for SamplingStrategy {
    fn default() -> Self {
        SamplingStrategy::Mixture {
            uniform: 0.4,
            log_uniform: 0.3,
            manifest: 0.3,
        }
    }
}

/// Seeded sampler of [`DseInput`]s over the Table I space.
#[derive(Debug)]
pub struct WorkloadSampler {
    strategy: SamplingStrategy,
    manifest: Vec<GemmWorkload>,
}

impl WorkloadSampler {
    /// Creates a sampler with the default mixture strategy.
    pub fn new() -> Self {
        Self::with_strategy(SamplingStrategy::default())
    }

    /// Creates a sampler with an explicit strategy.
    pub fn with_strategy(strategy: SamplingStrategy) -> Self {
        WorkloadSampler {
            strategy,
            manifest: manifest::manifest_105()
                .into_iter()
                .map(|l| l.gemm)
                .collect(),
        }
    }

    /// Draws one DSE input.
    pub fn sample(&self, rng: &mut StdRng) -> DseInput {
        let gemm = match self.strategy {
            SamplingStrategy::Uniform => self.sample_uniform(rng),
            SamplingStrategy::LogUniform => self.sample_log_uniform(rng),
            SamplingStrategy::Mixture {
                uniform,
                log_uniform,
                manifest,
            } => {
                let total = (uniform + log_uniform + manifest).max(1e-9);
                let r: f32 = rng.random_range(0.0..1.0);
                if r < uniform / total {
                    self.sample_uniform(rng)
                } else if r < (uniform + log_uniform) / total {
                    self.sample_log_uniform(rng)
                } else {
                    self.sample_manifest_jitter(rng)
                }
            }
        };
        let dataflow = Dataflow::from_index(rng.random_range(0..3));
        DseInput { gemm, dataflow }
    }

    /// Draws `n` DSE inputs.
    pub fn sample_n(&self, rng: &mut StdRng, n: usize) -> Vec<DseInput> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    fn sample_uniform(&self, rng: &mut StdRng) -> GemmWorkload {
        GemmWorkload::new(
            rng.random_range(1..=TABLE_I_MAX_M),
            rng.random_range(1..=TABLE_I_MAX_N),
            rng.random_range(1..=TABLE_I_MAX_K),
        )
    }

    fn sample_log_uniform(&self, rng: &mut StdRng) -> GemmWorkload {
        let draw = |rng: &mut StdRng, max: u64| -> u64 {
            let lo = 0.0f64;
            let hi = (max as f64).ln();
            let v = rng.random_range(lo..hi).exp().round() as u64;
            v.clamp(1, max)
        };
        GemmWorkload::new(
            draw(rng, TABLE_I_MAX_M),
            draw(rng, TABLE_I_MAX_N),
            draw(rng, TABLE_I_MAX_K),
        )
    }

    fn sample_manifest_jitter(&self, rng: &mut StdRng) -> GemmWorkload {
        let base = self.manifest[rng.random_range(0..self.manifest.len())];
        let jitter = |rng: &mut StdRng, v: u64, max: u64| -> u64 {
            let f: f64 = rng.random_range(0.8..1.25);
            ((v as f64 * f).round() as u64).clamp(1, max)
        };
        GemmWorkload::new(
            jitter(rng, base.m, TABLE_I_MAX_M),
            jitter(rng, base.n, TABLE_I_MAX_N),
            jitter(rng, base.k, TABLE_I_MAX_K),
        )
    }
}

impl Default for WorkloadSampler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_tensor::rng::seeded;

    #[test]
    fn samples_stay_in_table_i_ranges() {
        let s = WorkloadSampler::new();
        let mut r = seeded(1);
        for inp in s.sample_n(&mut r, 2000) {
            assert!(inp.gemm.m >= 1 && inp.gemm.m <= TABLE_I_MAX_M);
            assert!(inp.gemm.n >= 1 && inp.gemm.n <= TABLE_I_MAX_N);
            assert!(inp.gemm.k >= 1 && inp.gemm.k <= TABLE_I_MAX_K);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = WorkloadSampler::new();
        let a = s.sample_n(&mut seeded(42), 50);
        let b = s.sample_n(&mut seeded(42), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn all_dataflows_appear() {
        let s = WorkloadSampler::new();
        let mut r = seeded(3);
        let samples = s.sample_n(&mut r, 300);
        for df in Dataflow::ALL {
            assert!(samples.iter().any(|s| s.dataflow == df), "{df} missing");
        }
    }

    #[test]
    fn log_uniform_skews_small() {
        let s = WorkloadSampler::with_strategy(SamplingStrategy::LogUniform);
        let u = WorkloadSampler::with_strategy(SamplingStrategy::Uniform);
        let mut r = seeded(4);
        let med = |mut v: Vec<u64>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let log_med = med(s.sample_n(&mut r, 1000).iter().map(|x| x.gemm.n).collect());
        let uni_med = med(u.sample_n(&mut r, 1000).iter().map(|x| x.gemm.n).collect());
        assert!(log_med < uni_med / 2, "log {log_med} vs uniform {uni_med}");
    }

    #[test]
    fn features_encode_dataflow_index() {
        let inp = DseInput {
            gemm: GemmWorkload::new(1, 2, 3),
            dataflow: Dataflow::RowStationary,
        };
        assert_eq!(inp.features(), [1.0, 2.0, 3.0, 2.0]);
    }
}
