//! The model zoo: real DNN/LLM architectures lowered to GEMM layers.
//!
//! Two groups mirror the paper's protocol:
//!
//! * [`training_models`] — the pool from which the 105-workload training
//!   manifest ([`crate::manifest`]) is assembled.
//! * [`evaluation_models`] — models **never seen during training**, used
//!   for the model-level deployment comparison (paper Fig. 7): ResNet-50,
//!   Llama2-7B, Llama3-8B, plus BERT-large and ViT-base.
//!
//! Convolutions are lowered with im2col at inference batch 1; transformer
//! layers use a 128-token sequence for encoders and a 256-token prefill
//! for decoder LLMs. Depthwise convolutions (MobileNet) contribute only
//! their pointwise halves, which dominate MACs.

use ai2_maestro::GemmWorkload;

use crate::layer::Layer;
use crate::model::ModelWorkload;

/// AlexNet (227² input, batch 1).
pub fn alexnet() -> ModelWorkload {
    ModelWorkload::new(
        "alexnet",
        vec![
            Layer::conv2d("conv1", 55, 55, 96, 3, 11, 11),
            Layer::conv2d("conv2", 27, 27, 256, 96, 5, 5),
            Layer::conv2d("conv3", 13, 13, 384, 256, 3, 3),
            Layer::conv2d("conv4", 13, 13, 384, 384, 3, 3),
            Layer::conv2d("conv5", 13, 13, 256, 384, 3, 3),
            Layer::linear("fc6", 1, 4096, 9216),
            Layer::linear("fc7", 1, 4096, 4096),
            Layer::linear("fc8", 1, 1000, 4096),
        ],
    )
}

/// VGG-16 (224² input, batch 1).
pub fn vgg16() -> ModelWorkload {
    ModelWorkload::new(
        "vgg16",
        vec![
            Layer::conv2d("conv1_1", 224, 224, 64, 3, 3, 3),
            Layer::conv2d("conv1_2", 224, 224, 64, 64, 3, 3),
            Layer::conv2d("conv2_1", 112, 112, 128, 64, 3, 3),
            Layer::conv2d("conv2_2", 112, 112, 128, 128, 3, 3),
            Layer::conv2d("conv3_1", 56, 56, 256, 128, 3, 3),
            Layer::repeated("conv3_x", GemmWorkload::new(56 * 56, 256, 256 * 9), 2),
            Layer::conv2d("conv4_1", 28, 28, 512, 256, 3, 3),
            Layer::repeated("conv4_x", GemmWorkload::new(28 * 28, 512, 512 * 9), 2),
            Layer::repeated("conv5_x", GemmWorkload::new(14 * 14, 512, 512 * 9), 3),
            Layer::linear("fc6", 1, 4096, 25088),
            Layer::linear("fc7", 1, 4096, 4096),
            Layer::linear("fc8", 1, 1000, 4096),
        ],
    )
}

/// ResNet-18 (224² input, batch 1).
pub fn resnet18() -> ModelWorkload {
    ModelWorkload::new(
        "resnet18",
        vec![
            Layer::conv2d("conv1", 112, 112, 64, 3, 7, 7),
            Layer::repeated("conv2_x", GemmWorkload::new(56 * 56, 64, 64 * 9), 4),
            Layer::conv2d("conv3_1", 28, 28, 128, 64, 3, 3),
            Layer::repeated("conv3_x", GemmWorkload::new(28 * 28, 128, 128 * 9), 3),
            Layer::conv2d("conv4_1", 14, 14, 256, 128, 3, 3),
            Layer::repeated("conv4_x", GemmWorkload::new(14 * 14, 256, 256 * 9), 3),
            Layer::conv2d("conv5_1", 7, 7, 512, 256, 3, 3),
            Layer::repeated("conv5_x", GemmWorkload::new(7 * 7, 512, 512 * 9), 3),
            Layer::linear("fc", 1, 1000, 512),
        ],
    )
}

/// ResNet-34 (224² input, batch 1).
pub fn resnet34() -> ModelWorkload {
    ModelWorkload::new(
        "resnet34",
        vec![
            Layer::conv2d("conv1", 112, 112, 64, 3, 7, 7),
            Layer::repeated("conv2_x", GemmWorkload::new(56 * 56, 64, 64 * 9), 6),
            Layer::conv2d("conv3_1", 28, 28, 128, 64, 3, 3),
            Layer::repeated("conv3_x", GemmWorkload::new(28 * 28, 128, 128 * 9), 7),
            Layer::conv2d("conv4_1", 14, 14, 256, 128, 3, 3),
            Layer::repeated("conv4_x", GemmWorkload::new(14 * 14, 256, 256 * 9), 11),
            Layer::conv2d("conv5_1", 7, 7, 512, 256, 3, 3),
            Layer::repeated("conv5_x", GemmWorkload::new(7 * 7, 512, 512 * 9), 5),
            Layer::linear("fc", 1, 1000, 512),
        ],
    )
}

/// MobileNetV2 pointwise backbone (224² input, batch 1).
pub fn mobilenet_v2() -> ModelWorkload {
    ModelWorkload::new(
        "mobilenet_v2",
        vec![
            Layer::conv2d("conv1", 112, 112, 32, 3, 3, 3),
            Layer::linear("b1.pw", 112 * 112, 16, 32),
            Layer::linear("b2.expand", 112 * 112, 96, 16),
            Layer::linear("b2.project", 56 * 56, 24, 96),
            Layer::repeated("b3.expand", GemmWorkload::new(56 * 56, 144, 24), 2),
            Layer::linear("b3.project", 56 * 56, 24, 144),
            Layer::linear("b4.project", 28 * 28, 32, 144),
            Layer::repeated("b5.expand", GemmWorkload::new(28 * 28, 192, 32), 3),
            Layer::repeated("b5.project", GemmWorkload::new(28 * 28, 32, 192), 2),
            Layer::linear("b6.project", 14 * 14, 64, 192),
            Layer::repeated("b7.expand", GemmWorkload::new(14 * 14, 384, 64), 4),
            Layer::repeated("b7.project", GemmWorkload::new(14 * 14, 64, 384), 3),
            Layer::repeated("b8.project", GemmWorkload::new(14 * 14, 96, 384), 3),
            Layer::repeated("b9.expand", GemmWorkload::new(7 * 7, 576, 96), 3),
            Layer::repeated("b9.project", GemmWorkload::new(7 * 7, 160, 576), 3),
            Layer::linear("b10.project", 7 * 7, 320, 960),
            Layer::linear("head", 7 * 7, 1280, 320),
            Layer::linear("fc", 1, 1000, 1280),
        ],
    )
}

/// SqueezeNet v1.1 (224² input, batch 1).
pub fn squeezenet() -> ModelWorkload {
    let fire = |name: &str, hw: u64, s: u64, e: u64, inc: u64| {
        vec![
            Layer::linear(format!("{name}.squeeze"), hw * hw, s, inc),
            Layer::linear(format!("{name}.expand1"), hw * hw, e, s),
            Layer::conv2d(format!("{name}.expand3"), hw, hw, e, s, 3, 3),
        ]
    };
    let mut layers = vec![Layer::conv2d("conv1", 111, 111, 64, 3, 3, 3)];
    layers.extend(fire("fire2", 55, 16, 64, 64));
    layers.extend(fire("fire4", 27, 32, 128, 128));
    layers.extend(fire("fire6", 13, 48, 192, 256));
    layers.extend(fire("fire8", 13, 64, 256, 384));
    layers.push(Layer::linear("conv10", 13 * 13, 1000, 512));
    ModelWorkload::new("squeezenet", layers)
}

/// EfficientNet-Lite0-style pointwise backbone (224² input, batch 1).
pub fn efficientnet_lite0() -> ModelWorkload {
    ModelWorkload::new(
        "efficientnet_lite0",
        vec![
            Layer::conv2d("stem", 112, 112, 32, 3, 3, 3),
            Layer::linear("mb1.pw", 112 * 112, 16, 32),
            Layer::linear("mb2.expand", 112 * 112, 96, 16),
            Layer::linear("mb2.project", 56 * 56, 24, 96),
            Layer::repeated("mb3.expand", GemmWorkload::new(56 * 56, 144, 24), 2),
            Layer::linear("mb3.project", 28 * 28, 40, 144),
            Layer::repeated("mb4.expand", GemmWorkload::new(28 * 28, 240, 40), 2),
            Layer::linear("mb4.project", 14 * 14, 80, 240),
            Layer::repeated("mb5.expand", GemmWorkload::new(14 * 14, 480, 80), 3),
            Layer::repeated("mb5.project", GemmWorkload::new(14 * 14, 80, 480), 2),
            Layer::linear("mb6.project", 14 * 14, 112, 480),
            Layer::repeated("mb6.expand", GemmWorkload::new(14 * 14, 672, 112), 3),
            Layer::linear("mb7.project", 7 * 7, 192, 672),
            Layer::repeated("mb7.expand", GemmWorkload::new(7 * 7, 1152, 192), 4),
            Layer::repeated("mb7b.project", GemmWorkload::new(7 * 7, 192, 1152), 3),
            Layer::linear("mb8.project", 7 * 7, 320, 1152),
            Layer::linear("head", 7 * 7, 1280, 320),
            Layer::linear("fc", 1, 1000, 1280),
        ],
    )
}

/// One transformer encoder/decoder stack lowered to GEMMs.
fn transformer_stack(
    prefix: &str,
    tokens: u64,
    d_model: u64,
    d_ff: u64,
    blocks: u32,
) -> Vec<Layer> {
    vec![
        Layer::repeated(
            format!("{prefix}.attn.qkv"),
            GemmWorkload::new(tokens, d_model, d_model),
            3 * blocks,
        ),
        Layer::repeated(
            format!("{prefix}.attn.out"),
            GemmWorkload::new(tokens, d_model, d_model),
            blocks,
        ),
        Layer::repeated(
            format!("{prefix}.ffn.up"),
            GemmWorkload::new(tokens, d_ff, d_model),
            blocks,
        ),
        Layer::repeated(
            format!("{prefix}.ffn.down"),
            GemmWorkload::new(tokens, d_model, d_ff),
            blocks,
        ),
    ]
}

/// BERT-base (12 blocks, 768 hidden, 128-token sequence).
pub fn bert_base() -> ModelWorkload {
    let mut layers = transformer_stack("enc", 128, 768, 3072, 12);
    layers.push(Layer::linear("pooler", 1, 768, 768));
    ModelWorkload::new("bert_base", layers)
}

/// GPT-2 small (12 blocks, 768 hidden, 256-token prefill).
pub fn gpt2_small() -> ModelWorkload {
    let mut layers = transformer_stack("dec", 256, 768, 3072, 12);
    layers.push(Layer::linear("lm_head", 1, 50257, 768));
    ModelWorkload::new("gpt2_small", layers)
}

/// T5-small encoder-decoder (512 hidden, 6+6 blocks, 128 tokens).
pub fn t5_small() -> ModelWorkload {
    let mut layers = transformer_stack("enc", 128, 512, 2048, 6);
    layers.extend(transformer_stack("dec", 128, 512, 2048, 6));
    // cross-attention adds one extra projection set per decoder block
    layers.push(Layer::repeated(
        "dec.xattn.kv",
        GemmWorkload::new(128, 512, 512),
        12,
    ));
    ModelWorkload::new("t5_small", layers)
}

/// ViT-small (384 hidden, 12 blocks, 197 tokens).
pub fn vit_small() -> ModelWorkload {
    let mut layers = vec![Layer::linear("patch_embed", 196, 384, 768)];
    layers.extend(transformer_stack("enc", 197, 384, 1536, 12));
    layers.push(Layer::linear("head", 1, 1000, 384));
    ModelWorkload::new("vit_small", layers)
}

/// DLRM-style recommendation MLPs (batch 128).
pub fn dlrm_mlp() -> ModelWorkload {
    ModelWorkload::new(
        "dlrm_mlp",
        vec![
            Layer::linear("bot.0", 128, 512, 13),
            Layer::linear("bot.1", 128, 256, 512),
            Layer::linear("bot.2", 128, 64, 256),
            Layer::linear("top.0", 128, 1024, 479),
            Layer::linear("top.1", 128, 1024, 1024),
            Layer::linear("top.2", 128, 512, 1024),
            Layer::linear("top.3", 128, 1, 512),
        ],
    )
}

/// Two-layer LSTM language model (batch 64, 650 hidden), gates fused.
pub fn lstm_lm() -> ModelWorkload {
    ModelWorkload::new(
        "lstm_lm",
        vec![
            Layer::linear("embed_proj", 64, 650, 650),
            Layer::repeated("lstm.gates", GemmWorkload::new(64, 4 * 650, 2 * 650), 2),
            Layer::linear("decoder", 64, 10000, 650),
        ],
    )
}

/// Inception-v3 (299² input, batch 1) — representative mixed blocks.
pub fn inception_v3() -> ModelWorkload {
    ModelWorkload::new(
        "inception_v3",
        vec![
            Layer::conv2d("conv1", 149, 149, 32, 3, 3, 3),
            Layer::conv2d("conv2", 147, 147, 32, 32, 3, 3),
            Layer::conv2d("conv3", 147, 147, 64, 32, 3, 3),
            Layer::linear("conv4.1x1", 73 * 73, 80, 64),
            Layer::conv2d("conv5", 71, 71, 192, 80, 3, 3),
            Layer::repeated("mixed_a.1x1", GemmWorkload::new(35 * 35, 64, 192), 3),
            Layer::repeated("mixed_a.5x5", GemmWorkload::new(35 * 35, 64, 48 * 25), 3),
            Layer::repeated("mixed_a.3x3dbl", GemmWorkload::new(35 * 35, 96, 64 * 9), 3),
            Layer::repeated("mixed_b.1x1", GemmWorkload::new(17 * 17, 192, 768), 4),
            Layer::repeated("mixed_b.7x1", GemmWorkload::new(17 * 17, 192, 192 * 7), 8),
            Layer::repeated("mixed_c.3x3", GemmWorkload::new(8 * 8, 320, 1280), 2),
            Layer::linear("fc", 1, 1000, 2048),
        ],
    )
}

/// U-Net-lite segmentation backbone (128² input, batch 1).
pub fn unet_lite() -> ModelWorkload {
    ModelWorkload::new(
        "unet_lite",
        vec![
            Layer::conv2d("enc1", 128, 128, 32, 3, 3, 3),
            Layer::conv2d("enc2", 64, 64, 64, 32, 3, 3),
            Layer::conv2d("enc3", 32, 32, 128, 64, 3, 3),
            Layer::conv2d("bottleneck", 16, 16, 256, 128, 3, 3),
            Layer::conv2d("dec3", 32, 32, 128, 256 + 128, 3, 3),
            Layer::conv2d("dec2", 64, 64, 64, 128 + 64, 3, 3),
            Layer::conv2d("dec1", 128, 128, 32, 64 + 32, 3, 3),
            Layer::linear("head", 128 * 128, 2, 32),
        ],
    )
}

/// NCF-style collaborative filtering MLP (batch 256).
pub fn ncf() -> ModelWorkload {
    ModelWorkload::new(
        "ncf",
        vec![
            Layer::linear("mlp.0", 256, 256, 128),
            Layer::linear("mlp.1", 256, 128, 256),
            Layer::linear("mlp.2", 256, 64, 128),
            Layer::linear("predict", 256, 1, 128),
        ],
    )
}

// ---------------------------------------------------------------------------
// Evaluation models (unseen during training — paper Fig. 7)
// ---------------------------------------------------------------------------

/// ResNet-50 (224² input, batch 1) — evaluation model [32].
pub fn resnet50() -> ModelWorkload {
    let bottleneck = |name: &str, hw: u64, w: u64, blocks: u32| {
        vec![
            Layer::repeated(
                format!("{name}.reduce"),
                GemmWorkload::new(hw * hw, w, 4 * w),
                blocks,
            ),
            Layer::repeated(
                format!("{name}.conv3"),
                GemmWorkload::new(hw * hw, w, w * 9),
                blocks,
            ),
            Layer::repeated(
                format!("{name}.expand"),
                GemmWorkload::new(hw * hw, 4 * w, w),
                blocks,
            ),
        ]
    };
    let mut layers = vec![
        Layer::conv2d("conv1", 112, 112, 64, 3, 7, 7),
        Layer::linear("conv2.reduce0", 56 * 56, 64, 64),
    ];
    layers.extend(bottleneck("conv2", 56, 64, 3));
    layers.extend(bottleneck("conv3", 28, 128, 4));
    layers.extend(bottleneck("conv4", 14, 256, 6));
    layers.extend(bottleneck("conv5", 7, 512, 3));
    layers.push(Layer::linear("fc", 1, 1000, 2048));
    ModelWorkload::new("resnet50", layers)
}

/// BERT-large (24 blocks, 1024 hidden, 128 tokens) — evaluation model.
pub fn bert_large() -> ModelWorkload {
    let mut layers = transformer_stack("enc", 128, 1024, 4096, 24);
    layers.push(Layer::linear("pooler", 1, 1024, 1024));
    ModelWorkload::new("bert_large", layers)
}

/// ViT-base (768 hidden, 12 blocks, 197 tokens) — evaluation model.
pub fn vit_base() -> ModelWorkload {
    let mut layers = vec![Layer::linear("patch_embed", 196, 768, 768)];
    layers.extend(transformer_stack("enc", 197, 768, 3072, 12));
    layers.push(Layer::linear("head", 1, 1000, 768));
    ModelWorkload::new("vit_base", layers)
}

/// Llama2-7B (32 blocks, 4096 hidden, 11008 FFN, 256-token prefill) —
/// evaluation model [33].
pub fn llama2_7b() -> ModelWorkload {
    ModelWorkload::new(
        "llama2_7b",
        vec![
            Layer::repeated("attn.qkv", GemmWorkload::new(256, 4096, 4096), 3 * 32),
            Layer::repeated("attn.out", GemmWorkload::new(256, 4096, 4096), 32),
            Layer::repeated("ffn.gate", GemmWorkload::new(256, 11008, 4096), 32),
            Layer::repeated("ffn.up", GemmWorkload::new(256, 11008, 4096), 32),
            Layer::repeated("ffn.down", GemmWorkload::new(256, 4096, 11008), 32),
            Layer::linear("lm_head", 1, 32000, 4096),
        ],
    )
}

/// Llama3-8B (32 blocks, 4096 hidden, 14336 FFN, GQA with 1024-wide KV,
/// 256-token prefill) — evaluation model [34].
pub fn llama3_8b() -> ModelWorkload {
    ModelWorkload::new(
        "llama3_8b",
        vec![
            Layer::repeated("attn.q", GemmWorkload::new(256, 4096, 4096), 32),
            Layer::repeated("attn.kv", GemmWorkload::new(256, 1024, 4096), 2 * 32),
            Layer::repeated("attn.out", GemmWorkload::new(256, 4096, 4096), 32),
            Layer::repeated("ffn.gate", GemmWorkload::new(256, 14336, 4096), 32),
            Layer::repeated("ffn.up", GemmWorkload::new(256, 14336, 4096), 32),
            Layer::repeated("ffn.down", GemmWorkload::new(256, 4096, 14336), 32),
            Layer::linear("lm_head", 1, 128256, 4096),
        ],
    )
}

/// Models contributing layers to the 105-workload training manifest.
pub fn training_models() -> Vec<ModelWorkload> {
    vec![
        alexnet(),
        vgg16(),
        resnet18(),
        resnet34(),
        mobilenet_v2(),
        squeezenet(),
        efficientnet_lite0(),
        inception_v3(),
        unet_lite(),
        bert_base(),
        gpt2_small(),
        t5_small(),
        vit_small(),
        dlrm_mlp(),
        lstm_lm(),
        ncf(),
    ]
}

/// Models reserved for deployment evaluation (never in the training
/// manifest), matching the paper's Fig. 7 protocol.
pub fn evaluation_models() -> Vec<ModelWorkload> {
    vec![
        resnet50(),
        llama2_7b(),
        llama3_8b(),
        bert_large(),
        vit_base(),
    ]
}

/// Every zoo model (training pool then evaluation models) — the lookup
/// universe of name-addressed consumers like the serving layer.
pub fn all_models() -> Vec<ModelWorkload> {
    let mut models = training_models();
    models.extend(evaluation_models());
    models
}

/// Looks a zoo model up by its canonical name (`"resnet50"`,
/// `"llama2_7b"` …), case-insensitively. `None` for unknown names — the
/// serving layer turns that into a protocol error instead of a panic.
pub fn model_by_name(name: &str) -> Option<ModelWorkload> {
    all_models()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn zoo_models_are_nonempty_and_distinctly_named() {
        let mut names = HashSet::new();
        for m in training_models().into_iter().chain(evaluation_models()) {
            assert!(!m.layers.is_empty(), "{} has no layers", m.name);
            assert!(names.insert(m.name.clone()), "duplicate model {}", m.name);
        }
    }

    #[test]
    fn resnet50_macs_in_expected_range() {
        let macs = resnet50().total_macs();
        // ≈ 4.1 GMACs at 224²; the GEMM lowering should land within 25%
        assert!(
            (3_000_000_000..5_500_000_000).contains(&macs),
            "resnet50 macs {macs}"
        );
    }

    #[test]
    fn vgg16_macs_in_expected_range() {
        let macs = vgg16().total_macs();
        // ≈ 15.5 GMACs
        assert!(
            (13_000_000_000..18_000_000_000).contains(&macs),
            "vgg16 macs {macs}"
        );
    }

    #[test]
    fn bert_base_macs_in_expected_range() {
        let macs = bert_base().total_macs();
        // 12 blocks × 128 tokens: ~11 GMACs of projections (excl. attention scores)
        assert!(
            (8_000_000_000..15_000_000_000).contains(&macs),
            "bert macs {macs}"
        );
    }

    #[test]
    fn llama2_prefill_macs_in_expected_range() {
        let macs = llama2_7b().total_macs();
        // ≈ 6.5 G projection params × 256 prefill tokens ≈ 1.7 TMACs
        assert!(
            (1_300_000_000_000..2_200_000_000_000).contains(&macs),
            "llama2 macs {macs}"
        );
    }

    #[test]
    fn model_by_name_finds_every_zoo_model() {
        for m in all_models() {
            let found = model_by_name(&m.name).expect("zoo model must resolve");
            assert_eq!(found, m);
        }
        // case-insensitive, and unknown names answer None
        assert_eq!(model_by_name("ResNet50").unwrap().name, "resnet50");
        assert!(model_by_name("not_a_model").is_none());
    }

    #[test]
    fn evaluation_models_are_disjoint_from_training() {
        let train: HashSet<String> = training_models().into_iter().map(|m| m.name).collect();
        for m in evaluation_models() {
            assert!(!train.contains(&m.name), "{} leaked into training", m.name);
        }
    }

    #[test]
    fn dse_layers_of_every_model_are_in_range() {
        for m in training_models().into_iter().chain(evaluation_models()) {
            for l in m.to_dse_layers() {
                assert!(l.in_table_i_ranges(), "{}::{} out of range", m.name, l.name);
            }
        }
    }
}
