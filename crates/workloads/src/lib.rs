//! DNN / LLM workload definitions for the AIrchitect v2 reproduction.
//!
//! The paper trains on a dataset drawn from **105 real DNN workloads** and
//! evaluates deployment on unseen models (ResNet-50, Llama2-7B,
//! Llama3-8B). This crate supplies both sides:
//!
//! * [`zoo`] — a model zoo of CNNs, encoder transformers and LLMs whose
//!   layers are lowered to GEMMs ([`Layer`] / [`ModelWorkload`]); convs use
//!   im2col lowering, attention/FFN layers are GEMMs natively.
//! * [`manifest`] — the 105-workload training manifest assembled from the
//!   zoo, tiled into the Table I feature ranges.
//! * [`generator`] — randomized workload sampling over the Table I input
//!   space, used to generate the DSE training dataset exactly as the
//!   paper does ("executing ConfuciuX on the randomized input
//!   parameters").
//!
//! Layers whose raw GEMM dimensions exceed the Table I ranges
//! (`M ≤ 256`, `N ≤ 1677`, `K ≤ 1185`) are *tiled*: a GEMM that is too
//! large runs as a sequence of equal in-range sub-GEMMs, the way a
//! compiler would block it onto an accelerator ([`Layer::tiled_to_ranges`]).
//!
//! # Example
//!
//! ```
//! use ai2_workloads::zoo;
//!
//! let resnet = zoo::resnet50();
//! assert!(resnet.total_macs() > 3_000_000_000); // ~4 GMACs at 224²
//! let dse_layers = resnet.to_dse_layers();
//! for layer in &dse_layers {
//!     assert!(layer.gemm.m <= 256 && layer.gemm.n <= 1677 && layer.gemm.k <= 1185);
//! }
//! ```

mod layer;
mod model;

pub mod generator;
pub mod manifest;
pub mod zoo;

pub use layer::{Layer, TABLE_I_MAX_K, TABLE_I_MAX_M, TABLE_I_MAX_N};
pub use model::ModelWorkload;
