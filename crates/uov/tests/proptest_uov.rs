//! Property-based tests for the UOV representation invariants.
//!
//! Written as seeded random sweeps (the `proptest` crate is unavailable
//! offline); each test draws many `(k, c, idx)` combinations from a
//! fixed-seed LCG covering the same ranges as the original strategies.

use ai2_uov::{ConfigCodec, DiscretizationKind, OneHotCodec, RegressionCodec, UovCodec};

const CASES: usize = 128;

/// Tiny standalone LCG so this crate needs no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn frac(&mut self) -> f64 {
        (self.next_u64() % 1_000_000) as f64 / 1_000_000.0
    }
}

fn pick_idx(g: &mut Lcg, c: usize) -> usize {
    ((c - 1) as f64 * g.frac()).round() as usize
}

#[test]
fn uov_roundtrip_is_lossless() {
    let mut g = Lcg(0x0071);
    for _ in 0..CASES {
        let k = g.range(1, 33);
        let c = g.range(2, 128);
        let idx = pick_idx(&mut g, c);
        let codec = UovCodec::new(k, c);
        let v = codec.encode(idx);
        assert_eq!(codec.decode(&v), idx, "k={k} c={c} idx={idx}");
    }
}

#[test]
fn uov_is_zero_above_target_and_positive_below() {
    let mut g = Lcg(0x0072);
    for _ in 0..CASES {
        let k = g.range(2, 17);
        let c = g.range(8, 65);
        let idx = pick_idx(&mut g, c);
        let codec = UovCodec::new(k, c);
        let n = codec.bucket_of(idx);
        let v = codec.encode(idx);
        for (i, &x) in v.iter().enumerate() {
            if i > n {
                assert_eq!(x, 0.0);
            }
            if i < n {
                assert!(x > 0.0);
            }
            assert!((0.0..=1.0).contains(&x));
        }
    }
}

#[test]
fn uov_preserves_ordering() {
    let mut g = Lcg(0x0073);
    for _ in 0..CASES {
        // a larger choice never encodes to an elementwise-smaller UOV
        let k = g.range(2, 17);
        let c = g.range(8, 65);
        let a = pick_idx(&mut g, c);
        let b = pick_idx(&mut g, c);
        let codec = UovCodec::new(k, c);
        let (lo, hi) = (a.min(b), a.max(b));
        let vlo = codec.encode(lo);
        let vhi = codec.encode(hi);
        for (l, h) in vlo.iter().zip(&vhi) {
            assert!(h >= l, "ordering violated: {vlo:?} vs {vhi:?}");
        }
    }
}

#[test]
fn uov_decode_small_noise_stays_within_one_choice() {
    let mut g = Lcg(0x0074);
    for _ in 0..CASES {
        let k = g.range(4, 17);
        let c = g.range(12, 65);
        let idx = pick_idx(&mut g, c);
        let seed = g.range(0, 500);
        let codec = UovCodec::new(k, c);
        let mut v = codec.encode(idx);
        // deterministic ±0.02 perturbation
        for (j, x) in v.iter_mut().enumerate() {
            let s = ((seed + j * 13) % 5) as f32 / 5.0 - 0.4;
            *x = (*x + 0.05 * s).clamp(0.0, 1.0);
        }
        let d = codec.decode(&v);
        // small head noise may move the estimate within the bucket but
        // never to a distant choice
        let tol = (c / k).max(1) + 1;
        assert!(d.abs_diff(idx) <= tol, "decoded {d} from {idx} (tol {tol})");
    }
}

#[test]
fn uniform_and_sid_both_roundtrip() {
    let mut g = Lcg(0x0075);
    for _ in 0..CASES {
        let k = g.range(1, 17);
        let c = g.range(2, 65);
        let idx = pick_idx(&mut g, c);
        for kind in [
            DiscretizationKind::Uniform,
            DiscretizationKind::SpaceIncreasing,
        ] {
            let codec = UovCodec::with_kind(kind, k, c);
            assert_eq!(codec.decode(&codec.encode(idx)), idx);
        }
    }
}

#[test]
fn every_choice_lives_in_its_own_bucket_for_many_k_c_pairs() {
    // the f32 boundary accumulation used to drift for large C, letting
    // the final boundary miss C exactly and the top choices fall outside
    // the last bucket; every index 0..C must encode/decode through its
    // own bucket for both kinds
    use ai2_uov::Discretization;
    let mut g = Lcg(0x0077);
    let mut cases: Vec<(usize, usize)> = (0..CASES)
        .map(|_| {
            let c = g.range(2, 3000);
            let k = g.range(1, c + 1);
            (k, c)
        })
        .collect();
    // pinned stress shapes: many buckets over a huge axis (worst f32
    // accumulation drift), degenerate one-per-choice, single bucket
    cases.extend([(512, 4096), (1000, 1001), (4096, 4096), (1, 4096)]);
    for (k, c) in cases {
        for kind in [
            DiscretizationKind::Uniform,
            DiscretizationKind::SpaceIncreasing,
        ] {
            let d = Discretization::new(kind, k, c);
            assert_eq!(d.num_choices(), c);
            // boundaries end exactly at C and strictly ascend
            let anchors = d.anchors();
            assert_eq!(anchors[0], 0.0, "kind {kind:?} k {k} c {c}");
            assert!(
                anchors.windows(2).all(|w| w[0] < w[1]),
                "anchors not ascending: kind {kind:?} k {k} c {c}"
            );
            let mut prev_bucket = 0usize;
            for i in 0..c {
                let b = d.bucket_of(i);
                assert!(b < d.num_buckets(), "kind {kind:?} k {k} c {c} i {i}");
                assert!(b >= prev_bucket, "buckets not monotone at {i}");
                prev_bucket = b;
                let t = d.coordinate_of(i);
                assert!(
                    t.is_finite() && (0.0..d.num_buckets() as f32).contains(&t),
                    "coordinate {t} out of range: kind {kind:?} k {k} c {c} i {i}"
                );
                assert_eq!(
                    d.index_of_coordinate(t),
                    i,
                    "roundtrip failed: kind {kind:?} k {k} c {c} i {i}"
                );
            }
            // the extremes land in the first and last bucket
            assert_eq!(d.bucket_of(0), 0);
            assert_eq!(d.bucket_of(c - 1), d.num_buckets() - 1);
        }
    }
}

#[test]
fn one_hot_and_regression_roundtrip() {
    let mut g = Lcg(0x0076);
    for _ in 0..CASES {
        let c = g.range(1, 200);
        let idx = pick_idx(&mut g, c.max(2));
        let idx = idx.min(c - 1);
        let oh = OneHotCodec::new(c);
        assert_eq!(oh.decode(&oh.encode(idx)), idx);
        let rg = RegressionCodec::new(c);
        assert_eq!(rg.decode(&rg.encode(idx)), idx);
    }
}
