//! Property-based tests for the UOV representation invariants.

use ai2_uov::{ConfigCodec, DiscretizationKind, OneHotCodec, RegressionCodec, UovCodec};
use proptest::prelude::*;

proptest! {
    #[test]
    fn uov_roundtrip_is_lossless(
        k in 1usize..33,
        c in 2usize..128,
        idx_frac in 0.0f64..1.0,
    ) {
        let codec = UovCodec::new(k, c);
        let idx = ((c - 1) as f64 * idx_frac).round() as usize;
        let v = codec.encode(idx);
        prop_assert_eq!(codec.decode(&v), idx);
    }

    #[test]
    fn uov_is_zero_above_target_and_positive_below(
        k in 2usize..17,
        c in 8usize..65,
        idx_frac in 0.0f64..1.0,
    ) {
        let codec = UovCodec::new(k, c);
        let idx = ((c - 1) as f64 * idx_frac).round() as usize;
        let n = codec.bucket_of(idx);
        let v = codec.encode(idx);
        for (i, &x) in v.iter().enumerate() {
            if i > n {
                prop_assert_eq!(x, 0.0);
            }
            if i < n {
                prop_assert!(x > 0.0);
            }
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn uov_preserves_ordering(
        k in 2usize..17,
        c in 8usize..65,
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        // a larger choice never encodes to an elementwise-smaller UOV
        let codec = UovCodec::new(k, c);
        let a = ((c - 1) as f64 * a_frac).round() as usize;
        let b = ((c - 1) as f64 * b_frac).round() as usize;
        let (lo, hi) = (a.min(b), a.max(b));
        let vlo = codec.encode(lo);
        let vhi = codec.encode(hi);
        for (l, h) in vlo.iter().zip(&vhi) {
            prop_assert!(h >= l, "ordering violated: {:?} vs {:?}", vlo, vhi);
        }
    }

    #[test]
    fn uov_decode_small_noise_stays_within_one_choice(
        k in 4usize..17,
        c in 12usize..65,
        idx_frac in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let codec = UovCodec::new(k, c);
        let idx = ((c - 1) as f64 * idx_frac).round() as usize;
        let mut v = codec.encode(idx);
        // deterministic ±0.02 perturbation
        for (j, x) in v.iter_mut().enumerate() {
            let s = ((seed as usize + j * 13) % 5) as f32 / 5.0 - 0.4;
            *x = (*x + 0.05 * s).clamp(0.0, 1.0);
        }
        let d = codec.decode(&v);
        // small head noise may move the estimate within the bucket but
        // never to a distant choice
        let tol = (c / k).max(1) + 1;
        prop_assert!(
            d.abs_diff(idx) <= tol,
            "decoded {} from {} (tol {})", d, idx, tol
        );
    }

    #[test]
    fn uniform_and_sid_both_roundtrip(
        k in 1usize..17,
        c in 2usize..65,
        idx_frac in 0.0f64..1.0,
    ) {
        let idx = ((c - 1) as f64 * idx_frac).round() as usize;
        for kind in [DiscretizationKind::Uniform, DiscretizationKind::SpaceIncreasing] {
            let codec = UovCodec::with_kind(kind, k, c);
            prop_assert_eq!(codec.decode(&codec.encode(idx)), idx);
        }
    }

    #[test]
    fn one_hot_and_regression_roundtrip(c in 1usize..200, idx_frac in 0.0f64..1.0) {
        let idx = ((c - 1) as f64 * idx_frac).round() as usize;
        let oh = OneHotCodec::new(c);
        prop_assert_eq!(oh.decode(&oh.encode(idx)), idx);
        let rg = RegressionCodec::new(c);
        prop_assert_eq!(rg.decode(&rg.encode(idx)), idx);
    }
}
