//! Unified Ordinal Vectors (UOV) — the paper's output representation that
//! blends classification (which bucket) with regression (where inside the
//! bucket).
//!
//! A discrete design choice with `C` options (e.g. the 64 PE counts of
//! Table I) is embedded into a continuous coordinate, discretized into
//! `K` buckets by [`Discretization`] (space-increasing by default, after
//! the paper's citation [30]), and encoded by [`UovCodec`] following the
//! paper's Algorithm 1:
//!
//! ```text
//! O_i = 1 − exp(−β·(t − r_i))   if t ≥ r_i
//! O_i = 0                        otherwise
//! ```
//!
//! where `t` is the coordinate of the ground-truth choice and `r_i` the
//! bucket anchors. Buckets below the target are non-zero and increase
//! with distance; buckets above are exactly zero; the fractional value at
//! the boundary bucket carries the regression information.
//!
//! [`OneHotCodec`] (pure classification) and [`RegressionCodec`] (pure
//! regression) implement the same [`ConfigCodec`] interface so that the
//! paper's ablations (Figs. 8b and 9 — "a single bucket reverts to
//! regression, many buckets shift toward classification") drop in
//! without touching the model code.
//!
//! # Example
//!
//! ```
//! use ai2_uov::{ConfigCodec, UovCodec};
//!
//! let codec = UovCodec::new(16, 64); // 16 buckets over 64 choices
//! let v = codec.encode(37);
//! assert_eq!(v.len(), 16);
//! assert_eq!(codec.decode(&v), 37); // lossless roundtrip
//! ```

mod codec;
mod discretization;

pub use codec::{ConfigCodec, OneHotCodec, RegressionCodec, UovCodec};
pub use discretization::{Discretization, DiscretizationKind};
