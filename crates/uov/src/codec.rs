//! Output-representation codecs: UOV, one-hot classification, and pure
//! regression, behind one interface.

use serde::{Deserialize, Serialize};

use crate::discretization::{Discretization, DiscretizationKind};

/// A reversible mapping between a discrete design choice (`0..C`) and the
/// vector a network head is trained to produce.
pub trait ConfigCodec {
    /// Length of the encoded vector (the head's output width).
    fn width(&self) -> usize;

    /// Number of discrete choices `C`.
    fn num_choices(&self) -> usize;

    /// Encodes the ground-truth choice `index` as a training target.
    ///
    /// # Panics
    ///
    /// Implementations panic if `index ≥ num_choices()`.
    fn encode(&self, index: usize) -> Vec<f32>;

    /// Decodes a (possibly noisy) prediction back to a choice index.
    ///
    /// # Panics
    ///
    /// Implementations panic if `prediction.len() != width()`.
    fn decode(&self, prediction: &[f32]) -> usize;
}

/// The paper's Unified Ordinal Vector codec (Algorithm 1).
///
/// Encoding happens in the bucket-normalized coordinate `t ∈ [0, K)`
/// provided by [`Discretization`]; `β` controls the sharpness of the
/// exponential `f` in Eq. 2. Decoding is the exact reverse of
/// Algorithm 1, implemented as a least-squares fit of the coordinate:
/// the recovered `t` simultaneously classifies the bucket (its integer
/// part) and regresses the position within it (its fraction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UovCodec {
    disc: Discretization,
    beta: f32,
}

impl UovCodec {
    /// Default sharpness of the ordinal decay.
    pub const DEFAULT_BETA: f32 = 1.5;

    /// UOV codec with `num_buckets` space-increasing buckets over
    /// `num_choices` options.
    pub fn new(num_buckets: usize, num_choices: usize) -> Self {
        Self::with_kind(
            DiscretizationKind::SpaceIncreasing,
            num_buckets,
            num_choices,
        )
    }

    /// UOV codec with an explicit discretization kind.
    pub fn with_kind(kind: DiscretizationKind, num_buckets: usize, num_choices: usize) -> Self {
        UovCodec {
            disc: Discretization::new(kind, num_buckets, num_choices),
            beta: Self::DEFAULT_BETA,
        }
    }

    /// Overrides the decay sharpness `β`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta > 0`.
    pub fn with_beta(mut self, beta: f32) -> Self {
        assert!(beta > 0.0, "UovCodec: beta must be positive");
        self.beta = beta;
        self
    }

    /// The underlying discretization.
    pub fn discretization(&self) -> &Discretization {
        &self.disc
    }

    /// Number of buckets `K` (also the head width).
    pub fn num_buckets(&self) -> usize {
        self.disc.num_buckets()
    }

    /// The bucket index the codec assigns to a ground-truth choice —
    /// the classification label used for contrastive positives (§III-C).
    pub fn bucket_of(&self, index: usize) -> usize {
        self.disc.bucket_of(index)
    }
}

impl ConfigCodec for UovCodec {
    fn width(&self) -> usize {
        self.disc.num_buckets()
    }

    fn num_choices(&self) -> usize {
        self.disc.num_choices()
    }

    fn encode(&self, index: usize) -> Vec<f32> {
        let t = self.disc.coordinate_of(index);
        (0..self.disc.num_buckets())
            .map(|i| {
                let r = i as f32;
                if t >= r {
                    1.0 - (-self.beta * (t - r)).exp()
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn decode(&self, prediction: &[f32]) -> usize {
        assert_eq!(
            prediction.len(),
            self.width(),
            "UovCodec::decode: prediction width {} != {}",
            prediction.len(),
            self.width()
        );
        // Reverse of Algorithm 1 as a least-squares fit: find the
        // coordinate t whose clean encoding best matches the prediction.
        // This jointly performs the classification (which bucket t falls
        // in) and the regression (where inside it) and is robust to
        // noisy head outputs.
        let k = self.disc.num_buckets();
        let residual = |t: f32| -> f32 {
            let mut acc = 0.0f32;
            for (i, &u) in prediction.iter().enumerate() {
                let r = i as f32;
                let o = if t >= r {
                    1.0 - (-self.beta * (t - r)).exp()
                } else {
                    0.0
                };
                let d = u.clamp(0.0, 1.0) - o;
                acc += d * d;
            }
            acc
        };
        // coarse grid then local refinement
        let mut best_t = 0.0f32;
        let mut best_r = f32::INFINITY;
        let coarse = (k * 10).max(10);
        for s in 0..=coarse {
            let t = s as f32 * k as f32 / coarse as f32;
            let r = residual(t);
            if r < best_r {
                best_r = r;
                best_t = t;
            }
        }
        let step = k as f32 / coarse as f32;
        let (lo, hi) = (best_t - step, best_t + step);
        for s in 0..=40 {
            let t = lo + (hi - lo) * s as f32 / 40.0;
            if t < 0.0 {
                continue;
            }
            let r = residual(t);
            if r < best_r {
                best_r = r;
                best_t = t;
            }
        }
        self.disc.index_of_coordinate(best_t)
    }
}

/// Pure classification codec: one-hot targets, argmax decoding — the
/// AIrchitect v1 output head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneHotCodec {
    num_choices: usize,
}

impl OneHotCodec {
    /// One-hot codec over `num_choices` options.
    ///
    /// # Panics
    ///
    /// Panics if `num_choices` is zero.
    pub fn new(num_choices: usize) -> Self {
        assert!(num_choices > 0, "OneHotCodec: zero choices");
        OneHotCodec { num_choices }
    }
}

impl ConfigCodec for OneHotCodec {
    fn width(&self) -> usize {
        self.num_choices
    }

    fn num_choices(&self) -> usize {
        self.num_choices
    }

    fn encode(&self, index: usize) -> Vec<f32> {
        assert!(index < self.num_choices, "OneHotCodec: index out of range");
        let mut v = vec![0.0; self.num_choices];
        v[index] = 1.0;
        v
    }

    fn decode(&self, prediction: &[f32]) -> usize {
        assert_eq!(
            prediction.len(),
            self.num_choices,
            "OneHotCodec: width mismatch"
        );
        let mut best = 0;
        for (i, &p) in prediction.iter().enumerate() {
            if p > prediction[best] {
                best = i;
            }
        }
        best
    }
}

/// Pure regression codec: a single scalar in `[0, 1]`, rounded to the
/// nearest choice on decode — the K = 1 end of the paper's Fig. 8b.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegressionCodec {
    num_choices: usize,
}

impl RegressionCodec {
    /// Regression codec over `num_choices` options.
    ///
    /// # Panics
    ///
    /// Panics if `num_choices` is zero.
    pub fn new(num_choices: usize) -> Self {
        assert!(num_choices > 0, "RegressionCodec: zero choices");
        RegressionCodec { num_choices }
    }
}

impl ConfigCodec for RegressionCodec {
    fn width(&self) -> usize {
        1
    }

    fn num_choices(&self) -> usize {
        self.num_choices
    }

    fn encode(&self, index: usize) -> Vec<f32> {
        assert!(
            index < self.num_choices,
            "RegressionCodec: index out of range"
        );
        if self.num_choices == 1 {
            return vec![0.0];
        }
        vec![index as f32 / (self.num_choices - 1) as f32]
    }

    fn decode(&self, prediction: &[f32]) -> usize {
        assert_eq!(prediction.len(), 1, "RegressionCodec: width mismatch");
        let x = prediction[0].clamp(0.0, 1.0);
        (x * (self.num_choices - 1) as f32).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uov_roundtrip_all_choices_and_bucket_counts() {
        for c in [12usize, 64] {
            for k in [1usize, 4, 8, 16, 32] {
                let codec = UovCodec::new(k, c);
                for i in 0..c {
                    let v = codec.encode(i);
                    assert_eq!(codec.decode(&v), i, "k={k}, c={c}, i={i}");
                }
            }
        }
    }

    #[test]
    fn uov_structure_matches_algorithm_one() {
        let codec = UovCodec::new(8, 64);
        let v = codec.encode(40);
        let n = codec.bucket_of(40);
        // zero above the target bucket
        for (i, &x) in v.iter().enumerate() {
            if i > n {
                assert_eq!(x, 0.0, "bucket {i} above target {n} must be 0");
            }
        }
        // increasing with distance below the target (paper: "monotonically
        // increasing" toward earlier buckets)
        for i in 1..n {
            assert!(
                v[i - 1] > v[i],
                "ordinal values should decay toward the target bucket: {v:?}"
            );
        }
        assert!(v[0] > 0.9, "far-below bucket saturates: {v:?}");
    }

    #[test]
    fn uov_decode_tolerates_noise() {
        let codec = UovCodec::new(16, 64);
        let mut wrong = 0;
        for i in 0..64 {
            let mut v = codec.encode(i);
            // ±0.05 deterministic pseudo-noise
            for (j, x) in v.iter_mut().enumerate() {
                let noise = 0.05 * ((i * 31 + j * 17) % 7_usize) as f32 / 7.0
                    * if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
                *x = (*x + noise).clamp(0.0, 1.0);
            }
            let d = codec.decode(&v);
            if d.abs_diff(i) > 2 {
                wrong += 1;
            }
        }
        assert!(wrong <= 3, "noise broke {wrong} of 64 decodes");
    }

    #[test]
    fn uov_all_zero_prediction_falls_back() {
        let codec = UovCodec::new(8, 64);
        let idx = codec.decode(&[0.0; 8]);
        assert!(idx < 64);
    }

    #[test]
    fn single_bucket_uov_behaves_like_regression() {
        let codec = UovCodec::new(1, 64);
        assert_eq!(codec.width(), 1);
        for i in [0usize, 13, 40, 63] {
            assert_eq!(codec.decode(&codec.encode(i)), i);
        }
    }

    #[test]
    fn one_hot_roundtrip_and_argmax() {
        let c = OneHotCodec::new(5);
        assert_eq!(c.width(), 5);
        for i in 0..5 {
            assert_eq!(c.decode(&c.encode(i)), i);
        }
        assert_eq!(c.decode(&[0.1, 0.9, 0.3, 0.0, 0.2]), 1);
    }

    #[test]
    fn regression_roundtrip() {
        let c = RegressionCodec::new(12);
        assert_eq!(c.width(), 1);
        for i in 0..12 {
            assert_eq!(c.decode(&c.encode(i)), i);
        }
        // out-of-range predictions clamp
        assert_eq!(c.decode(&[2.0]), 11);
        assert_eq!(c.decode(&[-1.0]), 0);
    }

    #[test]
    fn uov_beta_controls_sharpness() {
        let soft = UovCodec::new(8, 64).with_beta(0.5);
        let sharp = UovCodec::new(8, 64).with_beta(4.0);
        let vs = soft.encode(60);
        let vh = sharp.encode(60);
        // sharp codec saturates earlier buckets harder
        assert!(vh[0] > vs[0]);
    }
}
