//! Bucketization of a discrete choice axis.

use serde::{Deserialize, Serialize};

/// How bucket widths grow along the axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DiscretizationKind {
    /// Equal-width buckets.
    Uniform,
    /// Space-Increasing Discretization: bucket `i` has width ∝ `i + 1`,
    /// so early (small-valued, densely favored) choices get fine buckets
    /// and the long tail gets coarse ones — following the paper's
    /// citation [30].
    #[default]
    SpaceIncreasing,
}

/// A partition of the continuous choice coordinate `[0, C)` (where `C` is
/// the number of discrete options) into `K` buckets with anchors at the
/// left edges — the `Λ = {r_0 … r_{K−1}}` of the paper's Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discretization {
    /// Bucket boundaries, `K + 1` ascending values from 0 to `C`.
    boundaries: Vec<f32>,
    num_choices: usize,
}

impl Discretization {
    /// Partitions `num_choices` options into `num_buckets` buckets.
    ///
    /// If `num_buckets ≥ num_choices` the partition degenerates to one
    /// bucket per choice (pure classification), matching the paper's
    /// observation in Fig. 8b.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(kind: DiscretizationKind, num_buckets: usize, num_choices: usize) -> Self {
        assert!(num_buckets > 0, "Discretization: zero buckets");
        assert!(num_choices > 0, "Discretization: zero choices");
        let k = num_buckets.min(num_choices);
        let c = num_choices as f32;
        let mut boundaries = Vec::with_capacity(k + 1);
        match kind {
            DiscretizationKind::Uniform => {
                for i in 0..=k {
                    boundaries.push((num_choices as f64 * i as f64 / k as f64) as f32);
                }
            }
            DiscretizationKind::SpaceIncreasing => {
                // width_i = 1 cell + extra ∝ (i + 1): every bucket holds at
                // least one choice and widths strictly increase. Boundary
                // `i` comes from the closed form in f64 — the previous
                // running f32 accumulation drifted for large `C`, letting
                // the final boundary miss `C` and the top choice fall
                // outside the last bucket.
                let extra = (num_choices - k) as f64;
                let total = (k * (k + 1)) as f64 / 2.0;
                for i in 0..=k {
                    let tri = (i * (i + 1)) as f64 / 2.0;
                    boundaries.push((i as f64 + extra * tri / total) as f32);
                }
            }
        }
        // pin the end point to exactly C, then guard every interior
        // boundary so each bucket keeps at least one whole choice cell —
        // which also keeps the sequence strictly ascending after any
        // f64→f32 rounding
        *boundaries.last_mut().expect("non-empty") = c;
        for (i, b) in boundaries.iter_mut().enumerate().take(k).skip(1) {
            *b = b.clamp(i as f32, (num_choices - (k - i)) as f32);
        }
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries not strictly ascending: {boundaries:?}"
        );
        Discretization {
            boundaries,
            num_choices,
        }
    }

    /// Number of buckets `K`.
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Number of discrete choices `C`.
    pub fn num_choices(&self) -> usize {
        self.num_choices
    }

    /// Bucket anchors `r_i` (left edges), length `K`.
    pub fn anchors(&self) -> &[f32] {
        &self.boundaries[..self.boundaries.len() - 1]
    }

    /// The bucket containing choice `index` (mid-cell coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ num_choices`.
    pub fn bucket_of(&self, index: usize) -> usize {
        assert!(
            index < self.num_choices,
            "bucket_of: index {index} ≥ {} choices",
            self.num_choices
        );
        let x = index as f32 + 0.5;
        match self
            .boundaries
            .windows(2)
            .position(|w| x >= w[0] && x < w[1])
        {
            Some(b) => b,
            None => self.num_buckets() - 1,
        }
    }

    /// Continuous normalized coordinate of choice `index`: the bucket id
    /// plus the fractional position inside the bucket, in `[0, K)`.
    pub fn coordinate_of(&self, index: usize) -> f32 {
        let b = self.bucket_of(index);
        let lo = self.boundaries[b];
        let hi = self.boundaries[b + 1];
        let x = index as f32 + 0.5;
        b as f32 + (x - lo) / (hi - lo)
    }

    /// Inverse of [`Discretization::coordinate_of`]: maps a normalized
    /// coordinate back to the nearest choice index.
    pub fn index_of_coordinate(&self, t: f32) -> usize {
        let k = self.num_buckets();
        let t = t.clamp(0.0, k as f32 - 1e-6);
        let b = (t.floor() as usize).min(k - 1);
        let frac = t - b as f32;
        let lo = self.boundaries[b];
        let hi = self.boundaries[b + 1];
        let x = lo + frac * (hi - lo);
        // choice `i` occupies the cell [i, i+1) with its coordinate at the
        // midpoint, so flooring inverts coordinate_of exactly
        (x.floor() as usize).min(self.num_choices - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_boundaries_are_equal_width() {
        let d = Discretization::new(DiscretizationKind::Uniform, 4, 64);
        assert_eq!(d.num_buckets(), 4);
        assert_eq!(d.anchors(), &[0.0, 16.0, 32.0, 48.0]);
    }

    #[test]
    fn sid_widths_increase() {
        let d = Discretization::new(DiscretizationKind::SpaceIncreasing, 8, 64);
        let b = d.anchors();
        let mut prev_width = 0.0;
        for i in 1..b.len() {
            let width = b[i] - b[i - 1];
            assert!(width > prev_width, "widths not increasing at {i}");
            prev_width = width;
        }
    }

    #[test]
    fn more_buckets_than_choices_degenerates() {
        let d = Discretization::new(DiscretizationKind::SpaceIncreasing, 16, 12);
        assert_eq!(d.num_buckets(), 12);
        // each choice gets its own coordinate/bucket
        for i in 0..12 {
            assert_eq!(d.index_of_coordinate(d.coordinate_of(i)), i);
        }
    }

    #[test]
    fn coordinate_roundtrip_every_choice() {
        for kind in [
            DiscretizationKind::Uniform,
            DiscretizationKind::SpaceIncreasing,
        ] {
            for k in [1usize, 2, 4, 8, 16, 32] {
                let d = Discretization::new(kind, k, 64);
                for i in 0..64 {
                    let t = d.coordinate_of(i);
                    assert_eq!(
                        d.index_of_coordinate(t),
                        i,
                        "roundtrip failed: kind {kind:?}, k {k}, choice {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_of_is_monotone() {
        let d = Discretization::new(DiscretizationKind::SpaceIncreasing, 16, 64);
        let mut prev = 0;
        for i in 0..64 {
            let b = d.bucket_of(i);
            assert!(b >= prev);
            prev = b;
        }
        assert_eq!(d.bucket_of(0), 0);
        assert_eq!(d.bucket_of(63), 15);
    }
}
