//! Property-based correctness of the cycle-level simulator: for random
//! GEMMs and array shapes, the simulated output must equal a reference
//! matrix multiply exactly (integer-valued operands → exact f32).
//!
//! Written as seeded random sweeps (the `proptest` crate is unavailable
//! offline), matching the 64-case budget of the original.

use ai2_systolic::{ArrayConfig, GemmSimulation};

const CASES: usize = 64;

/// Tiny standalone LCG so this crate needs no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

fn reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

#[test]
fn simulated_gemm_is_exact() {
    let mut g = Lcg(0x5751);
    for _ in 0..CASES {
        let m = g.range(1, 12);
        let n = g.range(1, 12);
        let k = g.range(1, 20);
        let rows = g.range(1, 6);
        let cols = g.range(1, 6);
        // integer operands in [-4, 4] keep f32 accumulation exact
        let mut next = || (g.next_u64() % 9) as f32 - 4.0;
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let sim = GemmSimulation::run(&ArrayConfig::new(rows, cols), &a, &b, m, n, k);
        let expected = reference(&a, &b, m, n, k);
        assert_eq!(sim.output(), expected.as_slice());
        assert_eq!(sim.report().macs, (m * n * k) as u64);
        assert!(sim.report().utilization > 0.0 && sim.report().utilization <= 1.0);
    }
}

#[test]
fn cycles_lower_bounded_by_streaming() {
    let mut g = Lcg(0x5752);
    for _ in 0..CASES {
        let m = g.range(1, 10);
        let n = g.range(1, 10);
        let k = g.range(1, 24);
        let pes = g.range(1, 30);
        let cfg = ArrayConfig::squarest(pes);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let sim = GemmSimulation::run(&cfg, &a, &b, m, n, k);
        // each tile needs at least K cycles of streaming
        let tiles = m.div_ceil(cfg.rows) * n.div_ceil(cfg.cols);
        assert!(
            sim.report().total_cycles >= (tiles * k) as u64,
            "cycles {} below streaming bound {}",
            sim.report().total_cycles,
            tiles * k
        );
    }
}
