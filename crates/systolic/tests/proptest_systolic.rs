//! Property-based correctness of the cycle-level simulator: for random
//! GEMMs and array shapes, the simulated output must equal a reference
//! matrix multiply exactly (integer-valued operands → exact f32).

use ai2_systolic::{ArrayConfig, GemmSimulation};
use proptest::prelude::*;

fn reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulated_gemm_is_exact(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..20,
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..10_000,
    ) {
        // integer operands in [-4, 4] keep f32 accumulation exact
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 9) as f32 - 4.0
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let sim = GemmSimulation::run(&ArrayConfig::new(rows, cols), &a, &b, m, n, k);
        let expected = reference(&a, &b, m, n, k);
        prop_assert_eq!(sim.output(), expected.as_slice());
        prop_assert_eq!(sim.report().macs, (m * n * k) as u64);
        prop_assert!(sim.report().utilization > 0.0 && sim.report().utilization <= 1.0);
    }

    #[test]
    fn cycles_lower_bounded_by_streaming(
        m in 1usize..10,
        n in 1usize..10,
        k in 1usize..24,
        pes in 1usize..30,
    ) {
        let cfg = ArrayConfig::squarest(pes);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let sim = GemmSimulation::run(&cfg, &a, &b, m, n, k);
        // each tile needs at least K cycles of streaming
        let tiles = m.div_ceil(cfg.rows) * n.div_ceil(cfg.cols);
        prop_assert!(
            sim.report().total_cycles >= (tiles * k) as u64,
            "cycles {} below streaming bound {}",
            sim.report().total_cycles,
            tiles * k
        );
    }
}
