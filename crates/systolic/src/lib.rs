//! A cycle-level output-stationary systolic-array GEMM simulator, in the
//! spirit of Scale-Sim (Samajdar et al., ISPASS 2020) — the simulator
//! behind the original AIrchitect v1 datasets and a lineage reference of
//! the paper.
//!
//! Where `ai2-maestro` is *analytical* (closed-form latency/energy), this
//! crate actually **simulates**: operands skew into an `R×C` PE grid
//! cycle by cycle, every PE executes one MAC per cycle on the operands
//! flowing through it, and partial sums accumulate in place
//! (output-stationary). The simulator therefore produces
//!
//! * the **numerical GEMM result**, bit-identical to a reference matrix
//!   multiply — catching dataflow wiring bugs that a cost model cannot,
//! * an **exact cycle count**, which validates the analytical model's
//!   compute-side behaviour (see `tests/` and the root
//!   `tests/simulator_vs_analytical.rs`).
//!
//! # Example
//!
//! ```
//! use ai2_systolic::{ArrayConfig, GemmSimulation};
//!
//! let cfg = ArrayConfig::new(4, 4);
//! let a = vec![1.0f32; 6 * 8]; // A: 6×8
//! let b = vec![2.0f32; 8 * 5]; // B: 8×5
//! let sim = GemmSimulation::run(&cfg, &a, &b, 6, 5, 8);
//! assert_eq!(sim.output()[0], 16.0); // Σ_k 1·2 over K = 8
//! assert!(sim.report().total_cycles > 0);
//! ```

mod array;
mod sim;

pub use array::{ArrayConfig, SystolicArray};
pub use sim::{GemmSimulation, SimReport};
