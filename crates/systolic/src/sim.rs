//! Full-GEMM simulation: tiling, skewed operand feeding, drain.

use serde::{Deserialize, Serialize};

use crate::array::{ArrayConfig, SystolicArray};

/// Cycle/work accounting of one simulated GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total cycles including skew fill and drain.
    pub total_cycles: u64,
    /// Cycles spent draining accumulators to the output buffer.
    pub drain_cycles: u64,
    /// Useful MACs executed (must equal `M·N·K`).
    pub macs: u64,
    /// Output tiles processed.
    pub tiles: u64,
    /// `macs / (total_cycles · num_pes)`.
    pub utilization: f64,
}

/// A completed simulation: the report plus the computed output matrix.
#[derive(Debug, Clone)]
pub struct GemmSimulation {
    report: SimReport,
    output: Vec<f32>,
    n: usize,
}

impl GemmSimulation {
    /// Simulates `C[M,N] = A[M,K] × B[K,N]` on the given array,
    /// output-stationary, tiling `M` over rows and `N` over columns.
    ///
    /// # Panics
    ///
    /// Panics if the operand slices don't match the dimensions or any
    /// dimension is zero.
    pub fn run(cfg: &ArrayConfig, a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GemmSimulation: zero dimension");
        assert_eq!(a.len(), m * k, "GemmSimulation: A size");
        assert_eq!(b.len(), k * n, "GemmSimulation: B size");

        let mut arr = SystolicArray::new(*cfg);
        let mut out = vec![0.0f32; m * n];
        let mut total_cycles = 0u64;
        let mut drain_cycles = 0u64;
        let mut tiles = 0u64;

        let mut a_edge: Vec<Option<f32>> = vec![None; cfg.rows];
        let mut b_edge: Vec<Option<f32>> = vec![None; cfg.cols];

        let mut i0 = 0;
        while i0 < m {
            let tr = cfg.rows.min(m - i0);
            let mut j0 = 0;
            while j0 < n {
                let tc = cfg.cols.min(n - j0);
                arr.reset();
                // skewed feed: A[i,k] enters row i at cycle k + i,
                // B[k,j] enters column j at cycle k + j; operands meet at
                // PE (i, j) exactly when index k aligns.
                let span = k + tr.max(tc) + tr + tc; // generous: run to quiescence
                let before = arr.cycles();
                for t in 0..span {
                    for (r, slot) in a_edge.iter_mut().enumerate() {
                        *slot = if r < tr && t >= r && t - r < k {
                            Some(a[(i0 + r) * k + (t - r)])
                        } else {
                            None
                        };
                    }
                    for (c, slot) in b_edge.iter_mut().enumerate() {
                        *slot = if c < tc && t >= c && t - c < k {
                            Some(b[(t - c) * n + (j0 + c)])
                        } else {
                            None
                        };
                    }
                    arr.step(&a_edge, &b_edge);
                    // early exit once every operand has flushed through
                    if t >= k + tr + tc {
                        break;
                    }
                }
                total_cycles += arr.cycles() - before;
                // drain: one cycle per output column group (shift-out)
                drain_cycles += tc as u64;
                for r in 0..tr {
                    for c in 0..tc {
                        out[(i0 + r) * n + (j0 + c)] = arr.accumulator(r, c);
                    }
                }
                tiles += 1;
                j0 += tc;
            }
            i0 += tr;
        }

        let total = total_cycles + drain_cycles;
        let report = SimReport {
            total_cycles: total,
            drain_cycles,
            macs: arr.macs(),
            tiles,
            utilization: arr.macs() as f64 / (total as f64 * cfg.num_pes() as f64),
        };
        GemmSimulation {
            report,
            output: out,
            n,
        }
    }

    /// The exact cycle/work accounting of [`GemmSimulation::run`] for
    /// these dimensions, **without** executing any MACs or touching
    /// operand data.
    ///
    /// The simulator's cycle count is data-independent: each output tile
    /// of shape `tr × tc` streams its operands for exactly
    /// `k + tr + tc + 1` cycles (skew fill, `K` streaming, flush) plus a
    /// `tc`-cycle drain. Folding that per-tile cost over the tile grid in
    /// closed form reproduces `run(..).report()` bit-for-bit (pinned by
    /// `dry_run_matches_full_simulation` below) at `O(1)` cost — which is
    /// what lets the cycle-accurate cost backend sweep full design-space
    /// grids over Table-I-sized GEMMs.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn dry_run(cfg: &ArrayConfig, m: usize, n: usize, k: usize) -> SimReport {
        assert!(m > 0 && n > 0 && k > 0, "GemmSimulation: zero dimension");
        let (rows, cols) = (cfg.rows, cfg.cols);
        // tile-shape histogram: full and ragged extents along each axis
        let (full_m, rag_m) = (m / rows, m % rows);
        let (full_n, rag_n) = (n / cols, n % cols);
        let mut stream_cycles = 0u64;
        let mut drain_cycles = 0u64;
        let mut tiles = 0u64;
        for (tr, count_m) in [(rows, full_m), (rag_m, 1)] {
            if count_m == 0 || tr == 0 {
                continue;
            }
            for (tc, count_n) in [(cols, full_n), (rag_n, 1)] {
                if count_n == 0 || tc == 0 {
                    continue;
                }
                let count = (count_m * count_n) as u64;
                stream_cycles += count * (k + tr + tc + 1) as u64;
                drain_cycles += count * tc as u64;
                tiles += count;
            }
        }
        let total = stream_cycles + drain_cycles;
        let macs = (m * n * k) as u64;
        SimReport {
            total_cycles: total,
            drain_cycles,
            macs,
            tiles,
            utilization: macs as f64 / (total as f64 * cfg.num_pes() as f64),
        }
    }

    /// The accounting report.
    pub fn report(&self) -> SimReport {
        self.report
    }

    /// The computed output matrix, row-major `[M, N]`.
    pub fn output(&self) -> &[f32] {
        &self.output
    }

    /// Output element `(i, j)`.
    pub fn output_at(&self, i: usize, j: usize) -> f32 {
        self.output[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn exact_on_array_sized_tile() {
        let (m, n, k) = (4, 4, 8);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        let sim = GemmSimulation::run(&ArrayConfig::new(4, 4), &a, &b, m, n, k);
        assert_eq!(sim.output(), reference(&a, &b, m, n, k).as_slice());
        assert_eq!(sim.report().macs, (m * n * k) as u64);
    }

    #[test]
    fn exact_with_tiling_over_both_axes() {
        let (m, n, k) = (7, 9, 5);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 13) % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 7) % 9) as f32 - 4.0).collect();
        let sim = GemmSimulation::run(&ArrayConfig::new(3, 4), &a, &b, m, n, k);
        assert_eq!(sim.output(), reference(&a, &b, m, n, k).as_slice());
        assert_eq!(sim.report().tiles, 3 * 3);
    }

    #[test]
    fn cycle_count_scales_with_k() {
        let cfg = ArrayConfig::new(4, 4);
        let run = |k: usize| {
            let a = vec![1.0f32; 4 * k];
            let b = vec![1.0f32; k * 4];
            GemmSimulation::run(&cfg, &a, &b, 4, 4, k)
                .report()
                .total_cycles
        };
        let c16 = run(16);
        let c64 = run(64);
        // streaming K dominates: quadrupling K roughly quadruples cycles
        // minus the fixed skew overhead
        assert!(c64 > c16 * 2, "cycles {c16} → {c64}");
        assert!(c64 < c16 * 5);
    }

    #[test]
    fn utilization_improves_with_full_tiles() {
        let full = GemmSimulation::run(
            &ArrayConfig::new(8, 8),
            &vec![1.0; 8 * 64],
            &vec![1.0; 64 * 8],
            8,
            8,
            64,
        );
        let ragged = GemmSimulation::run(
            &ArrayConfig::new(8, 8),
            &vec![1.0; 3 * 64],
            &vec![1.0; 64 * 3],
            3,
            3,
            64,
        );
        assert!(
            full.report().utilization > ragged.report().utilization,
            "full {} vs ragged {}",
            full.report().utilization,
            ragged.report().utilization
        );
        assert!(full.report().utilization <= 1.0);
    }

    #[test]
    fn dry_run_matches_full_simulation() {
        // the closed-form accounting must reproduce the cycle-stepped
        // simulation exactly — every field, bit-for-bit — across full,
        // ragged and degenerate tilings
        let shapes = [
            (1usize, 1usize, 1usize),
            (4, 4, 8),
            (7, 9, 5),
            (3, 3, 64),
            (8, 8, 64),
            (13, 2, 17),
            (1, 20, 6),
            (20, 1, 6),
            (5, 5, 1),
        ];
        let arrays = [(1usize, 1usize), (2, 2), (3, 4), (4, 3), (8, 8), (2, 7)];
        for &(m, n, k) in &shapes {
            for &(r, c) in &arrays {
                let cfg = ArrayConfig::new(r, c);
                let a = vec![1.0f32; m * k];
                let b = vec![1.0f32; k * n];
                let full = GemmSimulation::run(&cfg, &a, &b, m, n, k).report();
                let dry = GemmSimulation::dry_run(&cfg, m, n, k);
                assert_eq!(
                    dry.total_cycles, full.total_cycles,
                    "{m}x{n}x{k} on {r}x{c}"
                );
                assert_eq!(
                    dry.drain_cycles, full.drain_cycles,
                    "{m}x{n}x{k} on {r}x{c}"
                );
                assert_eq!(dry.macs, full.macs, "{m}x{n}x{k} on {r}x{c}");
                assert_eq!(dry.tiles, full.tiles, "{m}x{n}x{k} on {r}x{c}");
                assert_eq!(
                    dry.utilization.to_bits(),
                    full.utilization.to_bits(),
                    "{m}x{n}x{k} on {r}x{c}"
                );
            }
        }
    }

    #[test]
    fn output_at_indexes_correctly() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // I2
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let sim = GemmSimulation::run(&ArrayConfig::new(2, 2), &a, &b, 2, 2, 2);
        assert_eq!(sim.output_at(0, 1), 6.0);
        assert_eq!(sim.output_at(1, 0), 7.0);
    }
}
