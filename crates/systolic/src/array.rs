//! The PE grid and its cycle-stepping semantics.

use serde::{Deserialize, Serialize};

/// Physical shape of the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// PE rows (output rows mapped here).
    pub rows: usize,
    /// PE columns (output columns mapped here).
    pub cols: usize,
}

impl ArrayConfig {
    /// Creates an array shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "ArrayConfig: zero dimension");
        ArrayConfig { rows, cols }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Squarest array shape for a PE budget (how the DSE grid's flat PE
    /// counts map onto a 2-D array).
    pub fn squarest(num_pes: usize) -> Self {
        assert!(num_pes > 0, "ArrayConfig: zero PEs");
        let mut best = (1usize, num_pes);
        for r in 1..=num_pes {
            if r * r > num_pes {
                break;
            }
            if num_pes.is_multiple_of(r) {
                best = (r, num_pes / r);
            }
        }
        ArrayConfig {
            rows: best.0,
            cols: best.1,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Pe {
    /// Operand of `A` currently held (flows left → right).
    a: f32,
    /// Validity of `a` (distinguishes skew bubbles from data zeros).
    av: bool,
    /// Operand of `B` currently held (flows top → bottom).
    b: f32,
    /// Validity of `b`.
    bv: bool,
    /// Output-stationary accumulator.
    acc: f32,
}

/// The cycle-stepped PE grid for one output tile.
///
/// Output-stationary semantics, as in ShiDianNao [8] and Scale-Sim's
/// `os` mode: PE `(i, j)` owns output element `(i, j)` of the current
/// tile. Each cycle, `A` operands shift one PE to the right, `B`
/// operands one PE down, and every PE multiplies the operands it held at
/// the *start* of the cycle into its accumulator.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    cfg: ArrayConfig,
    pes: Vec<Pe>,
    cycles: u64,
    macs: u64,
}

impl SystolicArray {
    /// Builds an idle array.
    pub fn new(cfg: ArrayConfig) -> Self {
        SystolicArray {
            cfg,
            pes: vec![Pe::default(); cfg.num_pes()],
            cycles: 0,
            macs: 0,
        }
    }

    /// The array shape.
    pub fn config(&self) -> ArrayConfig {
        self.cfg
    }

    /// Cycles elapsed since construction or the last [`SystolicArray::reset`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Useful MACs executed (zero-operand multiplies are not counted).
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Clears accumulators and operand registers for the next tile.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            *pe = Pe::default();
        }
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        r * self.cfg.cols + c
    }

    /// Advances one cycle: every PE macs its held operands, then operands
    /// shift (A right, B down) with the new edge inputs injected at
    /// column 0 / row 0.
    ///
    /// `a_edge[r]` is the `A` operand entering row `r` this cycle;
    /// `b_edge[c]` the `B` operand entering column `c`. `None` is a skew
    /// bubble.
    ///
    /// # Panics
    ///
    /// Panics if edge slices don't match the array shape.
    pub fn step(&mut self, a_edge: &[Option<f32>], b_edge: &[Option<f32>]) {
        assert_eq!(a_edge.len(), self.cfg.rows, "step: a_edge width");
        assert_eq!(b_edge.len(), self.cfg.cols, "step: b_edge width");
        let (rows, cols) = (self.cfg.rows, self.cfg.cols);
        // 1. compute with operands currently in place (bubbles excluded)
        let mut new_macs = 0u64;
        for pe in &mut self.pes {
            if pe.av && pe.bv {
                pe.acc += pe.a * pe.b;
                new_macs += 1;
            }
        }
        self.macs += new_macs;
        // 2. shift A right (process columns from the right edge)
        #[allow(clippy::needless_range_loop)]
        for r in 0..rows {
            for c in (1..cols).rev() {
                let src = self.pes[r * cols + c - 1];
                let dst = &mut self.pes[r * cols + c];
                dst.a = src.a;
                dst.av = src.av;
            }
            let dst = &mut self.pes[r * cols];
            dst.a = a_edge[r].unwrap_or(0.0);
            dst.av = a_edge[r].is_some();
        }
        // 3. shift B down
        #[allow(clippy::needless_range_loop)]
        for c in 0..cols {
            for r in (1..rows).rev() {
                let src = self.pes[(r - 1) * cols + c];
                let dst = &mut self.pes[r * cols + c];
                dst.b = src.b;
                dst.bv = src.bv;
            }
            let dst = &mut self.pes[c];
            dst.b = b_edge[c].unwrap_or(0.0);
            dst.bv = b_edge[c].is_some();
        }
        self.cycles += 1;
    }

    /// Accumulator of PE `(r, c)`.
    pub fn accumulator(&self, r: usize, c: usize) -> f32 {
        self.pes[self.idx(r, c)].acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squarest_factorization() {
        assert_eq!(ArrayConfig::squarest(16), ArrayConfig::new(4, 4));
        assert_eq!(ArrayConfig::squarest(12), ArrayConfig::new(3, 4));
        assert_eq!(ArrayConfig::squarest(7), ArrayConfig::new(1, 7));
        assert_eq!(ArrayConfig::squarest(64).num_pes(), 64);
    }

    #[test]
    fn single_pe_accumulates_dot_product() {
        let mut arr = SystolicArray::new(ArrayConfig::new(1, 1));
        // dot([1,2,3],[4,5,6]) = 32; operands mac one cycle after entry
        for (a, b) in [
            (Some(1.0), Some(4.0)),
            (Some(2.0), Some(5.0)),
            (Some(3.0), Some(6.0)),
            (None, None),
        ] {
            arr.step(&[a], &[b]);
        }
        assert_eq!(arr.accumulator(0, 0), 32.0);
        assert_eq!(arr.macs(), 3);
        assert_eq!(arr.cycles(), 4);
    }

    #[test]
    fn reset_clears_state() {
        let mut arr = SystolicArray::new(ArrayConfig::new(2, 2));
        arr.step(&[Some(1.0), Some(1.0)], &[Some(1.0), Some(1.0)]);
        arr.step(&[Some(1.0), Some(1.0)], &[Some(1.0), Some(1.0)]);
        arr.reset();
        assert_eq!(arr.accumulator(0, 0), 0.0);
        assert_eq!(arr.accumulator(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "a_edge width")]
    fn wrong_edge_width_panics() {
        let mut arr = SystolicArray::new(ArrayConfig::new(2, 2));
        arr.step(&[Some(1.0)], &[Some(1.0), Some(1.0)]);
    }
}
