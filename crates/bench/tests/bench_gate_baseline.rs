//! Pins `bench_gate`'s baseline-handling contract: a stale or
//! unreadable baseline must be refused with exit 2 and a clear
//! "regenerate the baseline" instruction — never a panic backtrace
//! from a missing field. A baseline committed before a result field
//! was added gates nothing, and the fix is operational (regenerate),
//! not a code bug, so the message must say so.

use std::process::Command;

fn gate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
}

/// A complete, current-schema loadgen record.
const VALID: &str = r#"{"requests":64,"deadline_expired":0,"elapsed_s":0.05,"client_rps":1280.0,"p50_us":900.0,"p95_us":2000.0,"p99_us":5000.0,"server_served":64,"server_cache_hits":0,"backend":"analytic","pipeline":null,"shards":2,"kernel":"avx2","model_version":1,"swapped":false,"sheds":0,"connections":8,"open_loop":false,"traced":false,"connect_failures":0}"#;

fn tmp(name: &str, body: Option<&str>) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ai2_bench_gate_baseline_test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    if let Some(body) = body {
        std::fs::write(&path, body).expect("write temp record");
    }
    path
}

#[test]
fn stale_baseline_asks_for_regeneration_not_a_panic() {
    // not a loadgen record at all — the shape of a baseline committed
    // before a required field existed
    let baseline = tmp("stale.json", Some(r#"{"requests": 64}"#));
    let current = tmp("current_for_stale.json", Some(VALID));
    let out = gate()
        .args(["--baseline", baseline.to_str().unwrap()])
        .args(["--current", current.to_str().unwrap()])
        .output()
        .expect("run bench_gate");
    assert_eq!(
        out.status.code(),
        Some(2),
        "a stale baseline is a refused comparison (exit 2), not a crash: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("STALE BASELINE"), "{err}");
    assert!(err.contains("regenerate the baseline"), "{err}");
}

#[test]
fn unreadable_baseline_exits_2_with_the_regenerate_message() {
    let baseline = tmp("does_not_exist.json", None);
    std::fs::remove_file(&baseline).ok();
    let current = tmp("current_for_missing.json", Some(VALID));
    let out = gate()
        .args(["--baseline", baseline.to_str().unwrap()])
        .args(["--current", current.to_str().unwrap()])
        .output()
        .expect("run bench_gate");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("BASELINE UNREADABLE"), "{err}");
    assert!(err.contains("regenerate the baseline"), "{err}");
}

#[test]
fn the_committed_ci_baseline_still_parses() {
    // the gate's own schema must keep reading the baseline this repo
    // ships — if this fails, ci/BENCH_baseline.json needs regenerating
    // alongside whatever field was added
    let repo_baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/BENCH_baseline.json");
    let current = tmp("current_for_repo.json", Some(VALID));
    let out = gate()
        .args(["--baseline", repo_baseline])
        .args(["--current", current.to_str().unwrap()])
        .output()
        .expect("run bench_gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert_ne!(
        out.status.code(),
        Some(2),
        "committed baseline must not be refused as stale/mismatched: {err}"
    );
}

#[test]
fn identical_records_pass_the_gate() {
    let baseline = tmp("same_a.json", Some(VALID));
    let current = tmp("same_b.json", Some(VALID));
    let out = gate()
        .args(["--baseline", baseline.to_str().unwrap()])
        .args(["--current", current.to_str().unwrap()])
        .output()
        .expect("run bench_gate");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}
