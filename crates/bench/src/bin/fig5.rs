//! **Figure 5** — embedding space without vs with contrastive learning.
//!
//! Trains two stage-1 encoders (one with `L_C`, one without) and exports
//! 2-D projections of their embeddings colored by UOV class, plus the
//! alignment/uniformity metrics that quantify what the paper's scatter
//! plots show visually.

use ai2_bench::{default_engine, load_or_generate, write_csv, Sizes};
use airchitect::embedding::{analyze, project_2d};
use airchitect::{Airchitect2, ModelConfig};
use std::sync::Arc;

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);
    let (train, test) = ds.split(0.8, sizes.seed);

    for (with_contrastive, tag) in [(false, "without"), (true, "with")] {
        let mut model =
            Airchitect2::with_engine(&ModelConfig::default(), Arc::clone(&engine), &train);
        let cfg = sizes
            .train_config()
            .with_stage1_losses(with_contrastive, true);
        eprintln!("[fig5] training encoder {tag} contrastive loss…");
        // only stage 1 matters for the embedding; reuse fit for stage 2
        // to keep the decoder usable for sanity checks
        model.fit(&train, &cfg);

        let prep = model.prepare(&test);
        let z = model.embeddings(&prep.features);
        let report = analyze(&z, &prep.contrastive_labels);
        let proj = project_2d(&z);

        let rows: Vec<Vec<String>> = (0..z.rows())
            .map(|i| {
                vec![
                    format!("{:.5}", proj[(i, 0)]),
                    format!("{:.5}", proj[(i, 1)]),
                    prep.contrastive_labels[i].to_string(),
                ]
            })
            .collect();
        write_csv(
            &sizes.out_dir.join(format!("fig5_{tag}_contrastive.csv")),
            "x,y,class",
            &rows,
        );
        println!(
            "Fig 5 ({tag} contrastive): alignment {:.4} (↓ better), uniformity {:.4} (↓ better), {} samples",
            report.alignment, report.uniformity, report.samples
        );
    }
    println!("\npaper reference: contrastive learning yields a visibly more uniform space");
    println!("expected shape: alignment and uniformity both improve in the 'with' row");
}
