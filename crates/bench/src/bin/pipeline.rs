//! One-shot vs staged pipeline benchmark: how much regret does the
//! predict → refine → verify stage graph recover over the pure one-shot
//! predictor, and what does the recovery cost in cycle-accurate
//! (systolic) verification evaluations per query?
//!
//! For a deterministic GEMM mix (the `nth_query` sweep), the binary
//! quick-trains a predictor and answers every query twice through the
//! pipeline executor: once with the built-in `"default"` (one-shot)
//! pipeline and once with `"staged"` (predict → refine(annealing) →
//! verify(systolic) → refine(annealing, systolic) — the final short
//! anneal *on the verifying backend* is what closes the regret the
//! analytic-side refine cannot see). Both answers are scored on the
//! **systolic**
//! engine and compared against that engine's exhaustive *feasible*
//! oracle under the same objective and budget:
//!
//! ```text
//! regret = cost(answer) / cost(oracle feasible best) - 1
//! ```
//!
//! Feasibility makes a raw mean across all queries misleading: a
//! one-shot answer that blows the area budget can undercut the feasible
//! oracle, while the staged pipeline legitimately spends cost to buy
//! feasibility back (the clamp's rank order is feasible-first). So the
//! headline means are **like-for-like**: computed over the queries
//! where both answers are feasible, where the executor's clamp makes
//! staged ≤ one-shot pointwise on the verifying backend. The report
//! also counts feasible answers per flavor — staged must never have
//! fewer (the clamp again).
//!
//! The run fails (exit 1) if either guarantee breaks — that is a
//! pipeline bug, not noise — or, with `--max-regret`, if the staged
//! like-for-like mean regret exceeds the gate. The machine-readable
//! record lands in `results/BENCH_pipeline.json` (summary plus
//! per-query rows, including the per-backend evaluation budget each
//! staged answer spent).
//!
//! ```text
//! pipeline [--queries N]       GEMM queries from the nth_query sweep (default 12)
//!          [--samples N]       training-set size for the quick predictor (default 400)
//!          [--seed N]          dataset/model seed (default 0xA12C)
//!          [--refine-budget N] analytic annealing evaluations per staged query (default 48)
//!          [--verify-k N]      candidates re-scored by the verify stage (default 4)
//!          [--polish-budget N] systolic annealing evaluations after verify (default 32)
//!          [--max-regret X]    fail when staged mean regret exceeds X
//!          [--out DIR]         output directory (default results/)
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use ai2_bench::queries::nth_query;
use ai2_dse::pipeline::{RefineMethod, StageCfg};
use ai2_dse::{
    BackendEngines, BackendId, DseDataset, DseTask, EvalEngine, GenerateConfig, PipelineCfg,
    PipelineQuery, PipelineSet,
};
use ai2_workloads::generator::DseInput;
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, InferenceScratch, ModelConfig};
use serde::Serialize;

struct Args {
    queries: u64,
    samples: usize,
    seed: u64,
    refine_budget: usize,
    verify_k: usize,
    polish_budget: usize,
    max_regret: Option<f64>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: 12,
        samples: 400,
        seed: 0xA12C,
        refine_budget: 48,
        verify_k: 4,
        polish_budget: 32,
        max_regret: None,
        out: PathBuf::from("results"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--queries" => args.queries = value(&mut i).parse().expect("--queries count"),
            "--samples" => args.samples = value(&mut i).parse().expect("--samples count"),
            "--seed" => args.seed = value(&mut i).parse().expect("--seed"),
            "--refine-budget" => {
                args.refine_budget = value(&mut i).parse().expect("--refine-budget count");
            }
            "--verify-k" => args.verify_k = value(&mut i).parse().expect("--verify-k count"),
            "--polish-budget" => {
                args.polish_budget = value(&mut i).parse().expect("--polish-budget count");
            }
            "--max-regret" => {
                args.max_regret = Some(value(&mut i).parse().expect("--max-regret fraction"));
            }
            "--out" => args.out = PathBuf::from(value(&mut i)),
            other => panic!("unknown argument {other:?} (see src/bin/pipeline.rs for usage)"),
        }
        i += 1;
    }
    assert!(args.queries > 0 && args.samples > 0);
    assert!(args.refine_budget > 0 && args.verify_k > 0 && args.polish_budget > 0);
    args
}

/// One query's worth of the comparison, as written to the JSON record.
#[derive(Debug, Serialize)]
struct QueryRow {
    n: u64,
    objective: String,
    /// One-shot answer's regret on the systolic engine, against the
    /// feasible oracle (negative when the answer is infeasible and
    /// undercuts it).
    one_shot_regret: f64,
    /// Staged answer's regret on the systolic engine.
    staged_regret: f64,
    /// Whether the one-shot answer fits the requested area budget.
    one_shot_feasible: bool,
    /// Whether the staged answer fits the requested area budget.
    staged_feasible: bool,
    /// Analytic cost-model evaluations the staged run spent.
    staged_analytic_evals: u64,
    /// Cycle-accurate systolic evaluations the staged run spent (the
    /// verify-cycle budget).
    staged_systolic_evals: u64,
}

/// The `BENCH_pipeline.json` record.
#[derive(Debug, Serialize)]
struct PipelineReport {
    queries: u64,
    samples: usize,
    seed: u64,
    /// The staged pipeline's stage names, in order.
    staged_stages: Vec<String>,
    refine_budget: usize,
    verify_k: usize,
    polish_budget: usize,
    /// Queries whose one-shot answer fits the area budget.
    one_shot_feasible: usize,
    /// Queries whose staged answer fits the area budget (never fewer).
    staged_feasible: usize,
    /// Mean regret over the like-for-like subset (both answers
    /// feasible), where the clamp guarantees staged ≤ one-shot.
    mean_one_shot_regret: f64,
    mean_staged_regret: f64,
    /// Mean cycle-accurate evaluations per staged query.
    mean_systolic_evals_per_query: f64,
    /// The `--max-regret` gate, when one was set.
    max_regret: Option<f64>,
    passed: bool,
    per_query: Vec<QueryRow>,
}

fn main() {
    let args = parse_args();
    let task = DseTask::table_i_default();
    eprintln!(
        "[pipeline] training quick predictor ({} samples, seed {:#x})…",
        args.samples, args.seed
    );
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: args.samples,
            seed: args.seed,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(
        &ModelConfig {
            seed: args.seed,
            ..ModelConfig::tiny()
        },
        Arc::clone(&engine),
        &ds,
    );
    model.fit(&ds, &TrainConfig::quick());
    let engines = BackendEngines::new(engine);

    let set = PipelineSet::with(&[PipelineCfg {
        name: "staged".into(),
        stages: vec![
            StageCfg::Predict { backend: None },
            StageCfg::Refine {
                method: RefineMethod::Annealing,
                budget: args.refine_budget,
                seed: 17,
                backend: None,
            },
            StageCfg::Verify {
                k: args.verify_k,
                backend: BackendId::Systolic,
            },
            // the polish stage: a short anneal *on the verifying
            // backend*, warm-started at the verified best — this is
            // what actually closes systolic regret the analytic-side
            // refine cannot see
            StageCfg::Refine {
                method: RefineMethod::Annealing,
                budget: args.polish_budget,
                seed: 29,
                backend: Some(BackendId::Systolic),
            },
        ],
    }])
    .expect("the staged benchmark pipeline compiles");
    let staged = Arc::clone(set.get(Some("staged")).expect("just registered"));
    let one_shot = Arc::clone(set.default_pipeline());

    // the deterministic GEMM sweep, all queries on the default backend
    // (the pipelines decide where verification happens)
    let mut inputs: Vec<(u64, DseInput, PipelineQuery)> = Vec::new();
    for n in 0..args.queries {
        let req = nth_query(n, false, None, None, None);
        let input = req.query.as_dse_input().expect("nth_query GEMMs are valid");
        inputs.push((
            n,
            input,
            PipelineQuery {
                input,
                objective: req.objective,
                budget: req.budget,
                backend: BackendId::Analytic,
            },
        ));
    }
    let queries: Vec<PipelineQuery> = inputs.iter().map(|&(_, _, q)| q).collect();

    let mut scratch = InferenceScratch::new();
    let mut predict = |batch: &[DseInput]| model.predict_with(batch, &mut scratch);
    eprintln!("[pipeline] answering {} queries twice…", args.queries);
    let os_answers = one_shot.run_batch(&engines, &queries, &mut predict);
    let staged_answers = staged.run_batch(&engines, &queries, &mut predict);

    let sys = engines.get(BackendId::Systolic);
    let mut rows = Vec::with_capacity(inputs.len());
    for (((n, input, q), os), st) in inputs.iter().zip(&os_answers).zip(&staged_answers) {
        let oracle = sys.oracle_with(input, q.objective, q.budget);
        assert!(
            oracle.best_score.is_finite() && oracle.best_score > 0.0,
            "degenerate oracle score for query {n}"
        );
        let regret = |cost: f64| cost / oracle.best_score - 1.0;
        let os_cost = sys.score_unchecked_with(input, os.best.point, q.objective);
        let st_cost = sys.score_unchecked_with(input, st.best.point, q.objective);
        // the executor's never-worse clamp, feasibility first: a staged
        // answer may only cost more than the one-shot point when it
        // trades that cost for feasibility
        let os_feas = sys.is_feasible_under(os.best.point, q.budget);
        let st_feas = sys.is_feasible_under(st.best.point, q.budget);
        assert!(
            !((!st_feas && os_feas) || (st_feas == os_feas && st_cost > os_cost)),
            "query {n}: staged answer is worse than the one-shot point (staged feasible={st_feas} \
             cost={st_cost}, one-shot feasible={os_feas} cost={os_cost}); the executor's \
             never-worse clamp should make this impossible"
        );
        assert!(
            st_feas || !os_feas,
            "query {n}: the staged answer lost feasibility the one-shot point had; the clamp's \
             feasible-first rank order should make this impossible"
        );
        rows.push(QueryRow {
            n: *n,
            objective: format!("{:?}", q.objective).to_lowercase(),
            one_shot_regret: regret(os_cost),
            staged_regret: regret(st_cost),
            one_shot_feasible: os_feas,
            staged_feasible: st_feas,
            staged_analytic_evals: st.backend_evals(BackendId::Analytic),
            staged_systolic_evals: st.backend_evals(BackendId::Systolic),
        });
    }

    let os_feasible = rows.iter().filter(|r| r.one_shot_feasible).count();
    let st_feasible = rows.iter().filter(|r| r.staged_feasible).count();
    // like-for-like: both answers fit the budget, so the clamp makes
    // the comparison pointwise (staged ≤ one-shot on systolic)
    let both: Vec<&QueryRow> = rows
        .iter()
        .filter(|r| r.one_shot_feasible && r.staged_feasible)
        .collect();
    assert!(
        !both.is_empty(),
        "no query produced a feasible one-shot answer — raise --queries (or --samples) so the \
         like-for-like comparison is non-empty"
    );
    let mean = |f: &dyn Fn(&QueryRow) -> f64| -> f64 {
        both.iter().map(|r| f(r)).sum::<f64>() / both.len() as f64
    };
    let mean_os = mean(&|r| r.one_shot_regret);
    let mean_staged = mean(&|r| r.staged_regret);
    let mean_sys_evals = rows
        .iter()
        .map(|r| r.staged_systolic_evals as f64)
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "pipeline: mean regret one-shot {:.4} vs staged {:.4} over {}/{} like-for-like queries | \
         feasible {}→{} | staged spends {:.1} systolic evals/query",
        mean_os,
        mean_staged,
        both.len(),
        args.queries,
        os_feasible,
        st_feasible,
        mean_sys_evals
    );
    assert!(
        mean_staged <= mean_os,
        "staged mean regret {mean_staged:.4} exceeds one-shot {mean_os:.4} on the like-for-like \
         subset; the per-query clamp should make this impossible"
    );

    // per-query never-worse already asserted above (feasibility-aware);
    // the gate here is the absolute quality bar
    let under_gate = args.max_regret.is_none_or(|gate| mean_staged <= gate);
    let passed = under_gate;

    let report = PipelineReport {
        queries: args.queries,
        samples: args.samples,
        seed: args.seed,
        staged_stages: staged.stage_names().iter().map(|s| s.to_string()).collect(),
        refine_budget: args.refine_budget,
        verify_k: args.verify_k,
        polish_budget: args.polish_budget,
        one_shot_feasible: os_feasible,
        staged_feasible: st_feasible,
        mean_one_shot_regret: mean_os,
        mean_staged_regret: mean_staged,
        mean_systolic_evals_per_query: mean_sys_evals,
        max_regret: args.max_regret,
        passed,
        per_query: rows,
    };
    std::fs::create_dir_all(&args.out).expect("create results dir");
    let path = args.out.join("BENCH_pipeline.json");
    let body = serde_json::to_string(&report).expect("serialize pipeline report");
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[pipeline] wrote {}", path.display());

    if !under_gate {
        eprintln!(
            "pipeline: FAIL — staged mean regret {mean_staged:.4} exceeds --max-regret {:.4}",
            args.max_regret.expect("gate checked only when set")
        );
        std::process::exit(1);
    }
    println!("pipeline: PASS");
}
