//! Backend-fidelity report: how well does the analytic cost model agree
//! with the cycle-accurate systolic backend — and how much does an
//! exploration result transfer between them?
//!
//! Sweeps `--workloads` sampled DSE inputs over a `--points` subset of
//! the Table I grid on **both** cost backends and reports, per objective
//! (latency / energy / EDP):
//!
//! * `mean_rho` / `min_rho` — per-workload Spearman rank correlation of
//!   the two backends' scores over the sampled points (how similarly
//!   they *order* the design space, which is what any DSE oracle is
//!   actually used for),
//! * `mean_rho_compute_bound` — the same correlation restricted to the
//!   largest-buffer column, where both backends are compute-dominated
//!   (the full-grid numbers quantify genuine architectural
//!   disagreement: the simulated OS array never spills partial sums, so
//!   a starved L2 hurts it far less than the analytic model's
//!   K-tiling; small layers additionally plateau into ties),
//! * `cross_workload_rho` — rank correlation of the *workloads* by cost
//!   at fixed reference hardware, averaged over three array sizes at
//!   the largest buffer. Workload ordering is the signal every
//!   downstream consumer (oracle labels, predictor targets) depends on
//!   and the regime where the backends must agree — this is what
//!   `--min-rho` gates on,
//! * `top1_agreement` — fraction of workloads where both backends pick
//!   the same best sampled point,
//! * `mean_transfer_regret` — relative regret of deploying the analytic
//!   backend's best point under the systolic backend's scores (the
//!   Apollo-style cross-cost-model transfer gap): 0 = lossless transfer.
//!
//! The report also carries a **quantized-decoder fidelity** section:
//! how well does the int8 checkpoint flavor preserve the f32 decoder's
//! head-output ordering? A quick-trained model (cached dataset) is
//! compared against its own quantized twin on the sampled workloads —
//! Spearman rank correlation of the flattened pe/buf head surfaces
//! plus top-1 agreement of the decoded design points. Same contract as
//! the backend comparison above, one layer down: the flavor is usable
//! exactly when it *orders* designs like the f32 decoder does.
//!
//! A third section measures the **multi-fidelity cascade backend**: the
//! relative regret of deploying the cascade's full-grid argmin under
//! the true systolic scores (per objective), plus the fraction of the
//! grid the cascade escalated to real systolic evaluation per query —
//! the cost/accuracy trade the `"backend":"cascade"` wire option buys.
//!
//! Writes a machine-readable `BENCH_fidelity.json` into `--out` (default
//! `results/`) and prints one `FIDELITY_JSON=path` discovery line, so CI
//! can track the fidelity trajectory. With `--min-rho X` the process
//! exits non-zero if any objective's `cross_workload_rho` falls below
//! `X` — the backend-parity smoke gate. (The full-grid `mean_rho` is
//! reported but not gated: it legitimately sinks in the L2-starvation
//! regime where the two architectures genuinely disagree.) With
//! `--min-quant-rho X` it likewise exits non-zero if either quantized
//! head surface rank-correlates below `X` with its f32 twin — the
//! int8-flavor fidelity gate. With `--max-cascade-regret X` /
//! `--max-escalation X` it exits non-zero when the cascade's mean
//! deployment regret (any objective) or worst per-query escalated
//! fraction exceeds the ceiling — the cascade-parity gate.
//!
//! ```text
//! fidelity [--workloads N]          sampled DSE inputs (default 24)
//!          [--points N]             sampled grid points (default 96)
//!          [--seed N]               workload-sampling seed (default 0xF1DE)
//!          [--out DIR]              output directory (default results/)
//!          [--min-rho X]            fail below this cross-workload rank correlation
//!          [--min-quant-rho X]      fail below this int8-vs-f32 rank correlation
//!          [--max-cascade-regret X] fail above this cascade deployment regret
//!          [--max-escalation X]     fail above this escalated grid fraction
//!          [--quick]                smoke sizes (8 workloads × 48 points)
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use ai2_dse::{
    BackendId, CascadeBackend, CascadeConfig, CostBackend, DesignPoint, DseTask, EvalEngine,
    Objective,
};
use ai2_tensor::rng;
use ai2_tensor::stats::spearman;
use ai2_workloads::generator::{DseInput, WorkloadSampler};
use serde::Serialize;

struct Args {
    workloads: usize,
    points: usize,
    seed: u64,
    out: PathBuf,
    min_rho: Option<f64>,
    min_quant_rho: Option<f64>,
    max_cascade_regret: Option<f64>,
    max_escalation: Option<f64>,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: 24,
        points: 96,
        seed: 0xF1DE,
        out: PathBuf::from("results"),
        min_rho: None,
        min_quant_rho: None,
        max_cascade_regret: None,
        max_escalation: None,
        quick: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--workloads" => args.workloads = value(&mut i).parse().expect("--workloads count"),
            "--points" => args.points = value(&mut i).parse().expect("--points count"),
            "--seed" => args.seed = value(&mut i).parse().expect("--seed number"),
            "--out" => args.out = PathBuf::from(value(&mut i)),
            "--min-rho" => args.min_rho = Some(value(&mut i).parse().expect("--min-rho number")),
            "--min-quant-rho" => {
                args.min_quant_rho = Some(value(&mut i).parse().expect("--min-quant-rho number"));
            }
            "--max-cascade-regret" => {
                args.max_cascade_regret =
                    Some(value(&mut i).parse().expect("--max-cascade-regret number"));
            }
            "--max-escalation" => {
                args.max_escalation = Some(value(&mut i).parse().expect("--max-escalation number"));
            }
            "--quick" => {
                args.workloads = 8;
                args.points = 48;
                args.quick = true;
            }
            other => panic!("unknown argument {other:?} (see src/bin/fidelity.rs for usage)"),
        }
        i += 1;
    }
    assert!(args.workloads > 0 && args.points > 1);
    args
}

/// Per-objective agreement statistics between the two backends.
#[derive(Debug, Serialize)]
struct ObjectiveFidelity {
    objective: String,
    /// Mean per-workload rank correlation over the full sampled grid.
    mean_rho: f64,
    /// Worst per-workload rank correlation over the full sampled grid.
    min_rho: f64,
    /// Mean rank correlation restricted to the largest-buffer column,
    /// where neither backend is starved and both are compute-dominated.
    mean_rho_compute_bound: f64,
    /// Rank correlation of the workloads by cost at fixed reference
    /// hardware (mean over three array sizes at the largest buffer) —
    /// the `--min-rho` gate.
    cross_workload_rho: f64,
    top1_agreement: f64,
    mean_transfer_regret: f64,
}

/// Int8 decoder-flavor fidelity: rank agreement between a trained f32
/// decoder and its own quantized twin on the sampled workloads.
#[derive(Debug, Serialize)]
struct QuantFidelity {
    /// Workloads the head surfaces were compared on.
    workloads: usize,
    /// Spearman rank correlation of the flattened pe-head outputs.
    rho_pe: f64,
    /// Spearman rank correlation of the flattened buf-head outputs.
    rho_buf: f64,
    /// Fraction of workloads where both flavors decode the same point.
    top1_agreement: f64,
}

/// Per-objective deployment regret of the multi-fidelity cascade
/// against the pure systolic truth over the full grid.
#[derive(Debug, Serialize)]
struct CascadeObjective {
    objective: String,
    /// Mean relative regret of deploying the cascade's grid argmin
    /// under true systolic scores (0 = the cascade always finds the
    /// systolic optimum).
    mean_regret: f64,
    /// Worst per-workload regret.
    max_regret: f64,
    /// Fraction of workloads where the cascade's argmin IS the
    /// systolic argmin.
    top1_agreement: f64,
}

/// Multi-fidelity cascade section: accuracy (regret vs pure systolic)
/// against cost (fraction of the grid escalated to real systolic
/// evaluation per query).
#[derive(Debug, Serialize)]
struct CascadeFidelity {
    /// Escalation knobs the cascade ran with.
    top_k: usize,
    disagreement: f64,
    max_escalated: f64,
    /// Full grid size the cascade stages over.
    grid_points: usize,
    /// Mean per-query fraction of the grid escalated to systolic.
    mean_escalated_frac: f64,
    /// Worst per-query escalated fraction (the `--max-escalation`
    /// gate).
    max_escalated_frac: f64,
    /// Mean true systolic evaluations per query.
    systolic_evals_per_query: f64,
    /// Per-objective deployment regret (the `--max-cascade-regret`
    /// gate applies to each `mean_regret`).
    objectives: Vec<CascadeObjective>,
}

/// The full machine-readable report (`BENCH_fidelity.json`).
#[derive(Debug, Serialize)]
struct FidelityReport {
    workloads: usize,
    points: usize,
    seed: u64,
    objectives: Vec<ObjectiveFidelity>,
    cascade: CascadeFidelity,
    quantized_decoder: QuantFidelity,
}

fn main() {
    let args = parse_args();
    let task = DseTask::table_i_default();
    let analytic = EvalEngine::for_backend(task.clone(), BackendId::Analytic);
    let systolic = EvalEngine::for_backend(task, BackendId::Systolic);

    let sampler = WorkloadSampler::new();
    let mut r = rng::seeded(args.seed);
    let inputs: Vec<DseInput> = sampler.sample_n(&mut r, args.workloads);

    // an even stride over the 768-point grid, budget-unchecked: fidelity
    // is a property of the cost surfaces, not of one area budget
    let space = analytic.space();
    let stride = (space.num_points() / args.points).max(1);
    let points: Vec<DesignPoint> = space.iter_points().step_by(stride).collect();
    // the compute-bound comparison column: every PE choice at the
    // largest buffer, where L2 starvation distorts neither backend
    let top_buf = space.num_buf_choices() - 1;
    let compute_points: Vec<DesignPoint> = (0..space.num_pe_choices())
        .map(|pe_idx| DesignPoint {
            pe_idx,
            buf_idx: top_buf,
        })
        .collect();

    eprintln!(
        "[fidelity] {} workloads × {} grid points × 3 objectives on both backends…",
        inputs.len(),
        points.len()
    );

    let mut objectives = Vec::new();
    for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
        let mut rhos = Vec::with_capacity(inputs.len());
        let mut compute_rhos = Vec::with_capacity(inputs.len());
        let mut top1_hits = 0usize;
        let mut regrets = Vec::with_capacity(inputs.len());
        for input in &inputs {
            let score = |engine: &EvalEngine, pts: &[DesignPoint]| -> Vec<f32> {
                pts.iter()
                    .map(|&p| engine.score_unchecked_with(input, p, objective) as f32)
                    .collect()
            };
            let a = score(&analytic, &points);
            let s = score(&systolic, &points);
            rhos.push(spearman(&a, &s) as f64);
            let ac = score(&analytic, &compute_points);
            let sc = score(&systolic, &compute_points);
            compute_rhos.push(spearman(&ac, &sc) as f64);
            let argmin = |v: &[f32]| -> usize {
                let mut best = 0usize;
                for (i, x) in v.iter().enumerate() {
                    if *x < v[best] {
                        best = i;
                    }
                }
                best
            };
            let (ba, bs) = (argmin(&a), argmin(&s));
            if ba == bs {
                top1_hits += 1;
            }
            // deploy the analytic optimum, pay the systolic bill
            let regret = (s[ba] as f64 - s[bs] as f64) / s[bs] as f64;
            regrets.push(regret);
        }
        // cross-workload ordering at fixed reference hardware: small,
        // medium and large arrays at the largest buffer
        let reference_hw =
            [0, space.num_pe_choices() / 2, space.num_pe_choices() - 1].map(|pe_idx| DesignPoint {
                pe_idx,
                buf_idx: top_buf,
            });
        let cross_workload_rho = reference_hw
            .iter()
            .map(|&p| {
                let a: Vec<f32> = inputs
                    .iter()
                    .map(|i| analytic.score_unchecked_with(i, p, objective) as f32)
                    .collect();
                let s: Vec<f32> = inputs
                    .iter()
                    .map(|i| systolic.score_unchecked_with(i, p, objective) as f32)
                    .collect();
                spearman(&a, &s) as f64
            })
            .sum::<f64>()
            / reference_hw.len() as f64;
        let mean_rho = rhos.iter().sum::<f64>() / rhos.len() as f64;
        let min_rho = rhos.iter().copied().fold(f64::INFINITY, f64::min);
        let fidelity = ObjectiveFidelity {
            objective: format!("{objective:?}").to_ascii_lowercase(),
            mean_rho,
            min_rho,
            mean_rho_compute_bound: compute_rhos.iter().sum::<f64>() / compute_rhos.len() as f64,
            cross_workload_rho,
            top1_agreement: top1_hits as f64 / inputs.len() as f64,
            mean_transfer_regret: regrets.iter().sum::<f64>() / regrets.len() as f64,
        };
        println!(
            "fidelity {}: mean_rho {:.3} min_rho {:.3} compute_rho {:.3} cross_workload_rho {:.3} top1 {:.2} transfer_regret {:.3}",
            fidelity.objective,
            fidelity.mean_rho,
            fidelity.min_rho,
            fidelity.mean_rho_compute_bound,
            fidelity.cross_workload_rho,
            fidelity.top1_agreement,
            fidelity.mean_transfer_regret
        );
        objectives.push(fidelity);
    }

    // sanity anchor: the analytic engine through the backend path must
    // still be the bit-identical DseTask oracle (the CI job also runs
    // the engine-consistency property tests; this is the cheap in-binary
    // tripwire)
    let anchor = &inputs[0];
    let direct = DseTask::table_i_default().oracle(anchor);
    let via_backend = analytic.oracle(anchor);
    assert_eq!(
        direct, via_backend,
        "analytic backend diverged from DseTask — bit-identicality broken"
    );

    // -- multi-fidelity cascade ---------------------------------------
    // the cascade must order the grid like the systolic truth at a
    // fraction of the cost: deploy its full-grid argmin, pay the true
    // systolic bill, and count how much of the grid escalated
    let cascade_backend = Arc::new(CascadeBackend::new(
        &DseTask::table_i_default(),
        CascadeConfig::default(),
    ));
    let cascade_engine = EvalEngine::with_backend_threads(
        DseTask::table_i_default(),
        Arc::clone(&cascade_backend) as Arc<dyn CostBackend>,
        0,
    );
    let all_points: Vec<DesignPoint> = space.iter_points().collect();
    eprintln!(
        "[fidelity] cascade: {} workloads × {} grid points vs pure systolic…",
        inputs.len(),
        all_points.len()
    );
    let mut esc_fracs = Vec::with_capacity(inputs.len());
    for input in &inputs {
        // parallel-warm the full systolic grid (the truth reference),
        // then build the cascade's staged grid and read its escalation
        systolic.raw_grid(input);
        let (esc, total) = cascade_backend.escalation(input);
        esc_fracs.push(esc as f64 / total as f64);
    }
    let argmin_f64 = |v: &[f64]| -> usize {
        let mut best = 0usize;
        for (i, x) in v.iter().enumerate() {
            if *x < v[best] {
                best = i;
            }
        }
        best
    };
    let mut cascade_objectives = Vec::new();
    for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
        let mut regrets = Vec::with_capacity(inputs.len());
        let mut top1_hits = 0usize;
        for input in &inputs {
            let grid_scores = |engine: &EvalEngine| -> Vec<f64> {
                all_points
                    .iter()
                    .map(|&p| engine.score_unchecked_with(input, p, objective))
                    .collect()
            };
            let c = grid_scores(&cascade_engine);
            let s = grid_scores(&systolic);
            let (bc, bs) = (argmin_f64(&c), argmin_f64(&s));
            if bc == bs {
                top1_hits += 1;
            }
            regrets.push((s[bc] - s[bs]) / s[bs]);
        }
        let entry = CascadeObjective {
            objective: format!("{objective:?}").to_ascii_lowercase(),
            mean_regret: regrets.iter().sum::<f64>() / regrets.len() as f64,
            max_regret: regrets.iter().copied().fold(0.0, f64::max),
            top1_agreement: top1_hits as f64 / inputs.len() as f64,
        };
        println!(
            "fidelity cascade {}: mean_regret {:.4} max_regret {:.4} top1 {:.2}",
            entry.objective, entry.mean_regret, entry.max_regret, entry.top1_agreement
        );
        cascade_objectives.push(entry);
    }
    let (sys_evals, grids_built) = cascade_backend.eval_counters();
    let cfg = cascade_backend.config();
    let cascade = CascadeFidelity {
        top_k: cfg.top_k,
        disagreement: cfg.disagreement,
        max_escalated: cfg.max_escalated,
        grid_points: all_points.len(),
        mean_escalated_frac: esc_fracs.iter().sum::<f64>() / esc_fracs.len() as f64,
        max_escalated_frac: esc_fracs.iter().copied().fold(0.0, f64::max),
        systolic_evals_per_query: sys_evals as f64 / grids_built.max(1) as f64,
        objectives: cascade_objectives,
    };
    println!(
        "fidelity cascade: mean_escalated {:.3} max_escalated {:.3} sys_evals/query {:.1}",
        cascade.mean_escalated_frac, cascade.max_escalated_frac, cascade.systolic_evals_per_query
    );

    // -- int8 decoder-flavor fidelity ---------------------------------
    // a quick-trained model is enough: the measure is quantization
    // error over a structured decoder surface, not model quality, and
    // the dataset is cached across runs
    let sizes = ai2_bench::Sizes {
        samples: if args.quick { 300 } else { 600 },
        stage1_epochs: if args.quick { 6 } else { 10 },
        stage2_epochs: if args.quick { 8 } else { 12 },
        out_dir: args.out.clone(),
        ..ai2_bench::Sizes::default()
    };
    let model_engine = ai2_bench::default_engine();
    let train = ai2_bench::load_or_generate(&model_engine, &sizes);
    let mut model = ai2_bench::train_v2(&model_engine, &train, &sizes);
    let feats = model.feature_encoder().encode_inputs(&inputs);
    let z = model.embeddings(&feats);
    let (pe_f32, buf_f32) = model.head_outputs(&z);
    let points_f32 = model.decode_embedding_batch(&z);
    model.quantize_decoder();
    let (pe_q, buf_q) = model.head_outputs(&z);
    let points_q = model.decode_embedding_batch(&z);
    let quantized_decoder = QuantFidelity {
        workloads: inputs.len(),
        rho_pe: spearman(pe_f32.as_slice(), pe_q.as_slice()) as f64,
        rho_buf: spearman(buf_f32.as_slice(), buf_q.as_slice()) as f64,
        top1_agreement: points_f32
            .iter()
            .zip(&points_q)
            .filter(|(a, b)| a == b)
            .count() as f64
            / points_f32.len() as f64,
    };
    println!(
        "fidelity quantized-decoder: rho_pe {:.3} rho_buf {:.3} top1 {:.2}",
        quantized_decoder.rho_pe, quantized_decoder.rho_buf, quantized_decoder.top1_agreement
    );

    let report = FidelityReport {
        workloads: inputs.len(),
        points: points.len(),
        seed: args.seed,
        objectives,
        cascade,
        quantized_decoder,
    };
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let path = args.out.join("BENCH_fidelity.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_fidelity.json");
    println!("FIDELITY_JSON={}", path.display());

    if let Some(floor) = args.min_rho {
        for o in &report.objectives {
            if o.cross_workload_rho < floor {
                eprintln!(
                    "[fidelity] FAIL: {} cross_workload_rho {:.3} below the {floor} floor",
                    o.objective, o.cross_workload_rho
                );
                std::process::exit(1);
            }
        }
        eprintln!(
            "[fidelity] all objectives above the {floor} cross-workload rank-correlation floor"
        );
    }
    if let Some(ceiling) = args.max_cascade_regret {
        for o in &report.cascade.objectives {
            if o.mean_regret > ceiling {
                eprintln!(
                    "[fidelity] FAIL: cascade {} mean_regret {:.4} above the {ceiling} ceiling",
                    o.objective, o.mean_regret
                );
                std::process::exit(1);
            }
        }
        eprintln!("[fidelity] cascade regret under the {ceiling} ceiling on every objective");
    }
    if let Some(ceiling) = args.max_escalation {
        let worst = report.cascade.max_escalated_frac;
        if worst > ceiling {
            eprintln!(
                "[fidelity] FAIL: cascade escalated {worst:.3} of the grid, above the {ceiling} ceiling"
            );
            std::process::exit(1);
        }
        eprintln!("[fidelity] cascade escalation under the {ceiling} ceiling on every query");
    }
    if let Some(floor) = args.min_quant_rho {
        let q = &report.quantized_decoder;
        if q.rho_pe < floor || q.rho_buf < floor {
            eprintln!(
                "[fidelity] FAIL: quantized decoder rho_pe {:.3} / rho_buf {:.3} below the {floor} floor",
                q.rho_pe, q.rho_buf
            );
            std::process::exit(1);
        }
        eprintln!(
            "[fidelity] quantized decoder above the {floor} int8-vs-f32 rank-correlation floor"
        );
    }
}
