//! Shape checker for the Chrome `trace_event` JSON the service exports
//! (`serve --trace-out`, the `Trace` admin message, `simtest
//! --trace-out`).
//!
//! Validates every file named on the command line against the subset of
//! the trace-event format the `ai2_obs` exporter emits — the contract
//! `chrome://tracing` and Perfetto actually load:
//!
//! * top level: `{"traceEvents": [...], "otherData": {"dropped": N}}`,
//! * every event an object with string `name` (non-empty), string
//!   `cat`, `ph` of `"X"` (complete span, requires numeric `dur`) or
//!   `"i"` (instant, requires scope `"s"`), numeric `ts`/`pid`/`tid`,
//!   and an `args` object carrying the numeric `span_id`,
//! * events ordered by non-decreasing `ts` (the exporter sorts by
//!   start time; a violation means the export is non-deterministic).
//!
//! Exits 0 when every file passes, 1 with the first violation
//! otherwise — which is what the CI `obs` job asserts about the dumps
//! it captures.
//!
//! ```text
//! trace_check FILE [FILE ...]
//! ```

use serde::Value;

fn field<'a>(obj: &'a Value, key: &str) -> Option<&'a Value> {
    match obj {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn number(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Number(text)) => text.parse().ok(),
        _ => None,
    }
}

fn string(v: Option<&Value>) -> Option<&str> {
    match v {
        Some(Value::String(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// One event's shape; the error says what is wrong and where.
fn check_event(event: &Value, index: usize) -> Result<(), String> {
    let at = |what: &str| format!("event #{index}: {what}");
    if !matches!(event, Value::Object(_)) {
        return Err(at("not an object"));
    }
    match string(field(event, "name")) {
        Some(name) if !name.is_empty() => {}
        _ => return Err(at("missing or empty string \"name\"")),
    }
    if string(field(event, "cat")).is_none() {
        return Err(at("missing string \"cat\""));
    }
    for key in ["ts", "pid", "tid"] {
        if number(field(event, key)).is_none() {
            return Err(at(&format!("missing numeric {key:?}")));
        }
    }
    match field(event, "args") {
        Some(args @ Value::Object(_)) => {
            if number(field(args, "span_id")).is_none() {
                return Err(at("args without numeric \"span_id\""));
            }
        }
        _ => return Err(at("missing \"args\" object")),
    }
    match string(field(event, "ph")) {
        Some("X") => {
            if number(field(event, "dur")).is_none() {
                return Err(at("complete span (ph \"X\") without numeric \"dur\""));
            }
        }
        Some("i") => {
            if string(field(event, "s")).is_none() {
                return Err(at("instant (ph \"i\") without scope \"s\""));
            }
        }
        Some(other) => return Err(at(&format!("unexpected ph {other:?}"))),
        None => return Err(at("missing string \"ph\"")),
    }
    Ok(())
}

fn check_file(path: &str) -> Result<(usize, u64), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let root: Value = serde_json::from_str(&body).map_err(|e| format!("{path}: not JSON: {e}"))?;
    let Some(Value::Array(events)) = field(&root, "traceEvents") else {
        return Err(format!("{path}: no \"traceEvents\" array"));
    };
    let dropped = number(field(&root, "otherData").and_then(|d| field(d, "dropped")))
        .ok_or_else(|| format!("{path}: no \"otherData\".\"dropped\" count"))?
        as u64;
    let mut last_ts = f64::NEG_INFINITY;
    for (i, event) in events.iter().enumerate() {
        check_event(event, i).map_err(|e| format!("{path}: {e}"))?;
        let ts = number(field(event, "ts")).expect("checked above");
        if ts < last_ts {
            return Err(format!(
                "{path}: event #{i} goes back in time (ts {ts} after {last_ts}) — \
                 the export must be sorted by start time"
            ));
        }
        last_ts = ts;
    }
    Ok((events.len(), dropped))
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    assert!(!files.is_empty(), "usage: trace_check FILE [FILE ...]");
    for path in &files {
        match check_file(path) {
            Ok((events, dropped)) => {
                println!("trace_check: {path} ok ({events} events, {dropped} dropped)");
            }
            Err(e) => {
                eprintln!("trace_check: FAIL — {e}");
                std::process::exit(1);
            }
        }
    }
}
