//! **Figure 7** — model-level deployment on unseen DNNs/LLMs.
//!
//! Each DSE technique recommends per-layer hardware; deployment Method 1
//! (paper §III-E) picks the single configuration minimising model-level
//! latency. Results are normalized to AIrchitect v2 (= 1.0), as in the
//! paper; bars above 1.0 mean slower than v2. The paper reports v2
//! winning consistently, with ~1.7× average gains and VAESA+BO closest.

use ai2_bench::{
    default_engine, load_or_generate, print_table, train_gandse, train_v1, train_v2, train_vaesa,
    write_csv, Sizes,
};
use ai2_dse::{DesignPoint, EvalEngine};
use ai2_workloads::generator::DseInput;
use ai2_workloads::zoo;
use airchitect::deploy::{method1, model_latency, Deployment};
use airchitect::predictor::PredictFn;

fn deploy_with(
    engine: &EvalEngine,
    layers: &[ai2_workloads::Layer],
    method: &dyn PredictFn,
) -> Deployment {
    let rec = |input: &DseInput| -> DesignPoint { method.predict_points(&[*input])[0] };
    method1(engine, layers, &rec)
}

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);
    let (train, _) = ds.split(0.8, sizes.seed);

    let v1 = train_v1(&engine, &train, &sizes);
    let gan = train_gandse(&engine, &train, &sizes);
    let vae = train_vaesa(&engine, &train, &sizes);
    let v2 = train_v2(&engine, &train, &sizes);
    let v2p = v2.predictor();

    let models = zoo::evaluation_models();
    let mut csv = Vec::new();
    let mut summary: Vec<(String, String)> = Vec::new();
    let mut geo: std::collections::HashMap<&str, f64> = Default::default();

    println!("\nFig 7 — model-level latency normalized to AIrchitect v2 (lower is better)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "model", "v1", "GANDSE", "VAESA+BO", "v2", "oracle-ref"
    );
    for m in &models {
        let layers = m.to_dse_layers();
        let d_v1 = deploy_with(&engine, &layers, &v1);
        let d_gan = deploy_with(&engine, &layers, &gan);
        let d_vae = deploy_with(&engine, &layers, &vae);
        let d_v2 = deploy_with(&engine, &layers, &v2p);
        // oracle reference: best single config over all candidates the
        // oracle recommends per layer
        let oracle_rec = |input: &DseInput| -> DesignPoint { engine.oracle(input).best_point };
        let d_oracle = method1(&engine, &layers, &oracle_rec);

        let base = d_v2.latency;
        let norm = |d: &Deployment| d.latency / base;
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.3}",
            m.name,
            norm(&d_v1),
            norm(&d_gan),
            norm(&d_vae),
            1.0,
            norm(&d_oracle)
        );
        for (name, d) in [
            ("v1", &d_v1),
            ("gandse", &d_gan),
            ("vaesa", &d_vae),
            ("v2", &d_v2),
            ("oracle", &d_oracle),
        ] {
            *geo.entry(name).or_insert(0.0) += norm(d).ln();
            csv.push(vec![
                m.name.clone(),
                name.to_string(),
                format!("{:.6}", norm(d)),
                format!("{:.1}", d.latency),
                engine.space().config(d.point).to_string(),
            ]);
        }
        // sanity: the chosen config's absolute latency
        let _ = model_latency(&engine, &layers, d_v2.point);
    }

    println!();
    for name in ["v1", "gandse", "vaesa", "oracle"] {
        let g = (geo[name] / models.len() as f64).exp();
        summary.push((format!("geomean {name} / v2"), format!("{g:.3}")));
    }
    print_table("Fig 7 summary", ("ratio", "value"), &summary);
    println!("\npaper reference: v2 fastest everywhere; ~1.7x average advantage; VAESA+BO closest");
    write_csv(
        &sizes.out_dir.join("fig7_deployment.csv"),
        "model,method,normalized_latency,latency_cycles,config",
        &csv,
    );
}
