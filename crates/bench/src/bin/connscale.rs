//! Connection-scale benchmark: how each front end holds `N`
//! mostly-idle connections.
//!
//! For each front end (`threads`, then `event`) the benchmark spawns a
//! real `serve` process (its own fd limit, its own `/proc` thread
//! count), opens `N` idle connections against it, and measures
//!
//! * **resident threads** — read from `/proc/<pid>/status` once the
//!   connection count settles. The thread-per-connection front end grows
//!   O(N); the event front end stays at O(event-loop threads) no matter
//!   how many connections are parked.
//! * **active p50/p95** — a small closed-loop request mix driven over a
//!   handful of the open connections while the rest idle, so the number
//!   reflects service under connection pressure, not an empty server.
//!
//! The threaded front end is capped (default 1000): ten thousand OS
//! threads is the failure mode this benchmark documents, not a
//! configuration worth measuring. Results land in
//! `results/BENCH_connscale.json` ([`ConnscaleResult`]).
//!
//! ```text
//! connscale [--serve-bin PATH]   serve binary (default target/release/serve)
//!           [--conns CSV]        connection counts (default 1000,5000,10000)
//!           [--threaded-cap N]   cap for the threads front end (default 1000)
//!           [--event-threads N]  event-loop threads (default 2)
//!           [--requests N]       active requests per measurement (default 64)
//!           [--json PATH]        artifact path (default results/BENCH_connscale.json)
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ai2_bench::queries::nth_query;
use ai2_bench::{ConnscaleResult, ConnscaleRow};
use ai2_serve::protocol::{decode_line, encode_line};
use ai2_serve::{Request, Response};
use ai2_tensor::stats::percentile;

struct Args {
    serve_bin: String,
    conns: Vec<usize>,
    threaded_cap: usize,
    event_threads: usize,
    requests: usize,
    json: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        serve_bin: "target/release/serve".to_string(),
        conns: vec![1000, 5000, 10000],
        threaded_cap: 1000,
        event_threads: 2,
        requests: 64,
        json: "results/BENCH_connscale.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--serve-bin" => args.serve_bin = value(&mut i),
            "--conns" => {
                args.conns = value(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--conns takes counts"))
                    .collect();
            }
            "--threaded-cap" => {
                args.threaded_cap = value(&mut i).parse().expect("--threaded-cap count");
            }
            "--event-threads" => {
                args.event_threads = value(&mut i).parse().expect("--event-threads count");
            }
            "--requests" => args.requests = value(&mut i).parse().expect("--requests count"),
            "--json" => args.json = value(&mut i),
            other => panic!("unknown argument {other:?} (see src/bin/connscale.rs for usage)"),
        }
        i += 1;
    }
    assert!(!args.conns.is_empty() && args.requests > 0);
    args
}

/// A spawned `serve` process plus its discovered address.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(args: &Args, frontend: &str, checkpoint: &str) -> Server {
        let mut child = Command::new(&args.serve_bin)
            .args([
                "--checkpoint",
                checkpoint,
                "--frontend",
                frontend,
                "--event-threads",
                &args.event_threads.to_string(),
                "--shards",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", args.serve_bin));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before SERVE_ADDR")
                .expect("serve stdout");
            if let Some(addr) = line.strip_prefix("SERVE_ADDR=") {
                break addr.to_string();
            }
        };
        Server { child, addr }
    }

    /// `Threads:` from `/proc/<pid>/status`.
    fn threads(&self) -> u64 {
        let status = std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))
            .expect("read server /proc status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line")
            .trim()
            .parse()
            .expect("thread count")
    }

    /// Waits for the thread count to stop moving (the threaded front
    /// end spawns one handler per accepted connection; the event one
    /// does nothing, which settles immediately).
    fn settled_threads(&self) -> u64 {
        let mut last = self.threads();
        loop {
            std::thread::sleep(Duration::from_millis(200));
            let now = self.threads();
            if now == last {
                return now;
            }
            last = now;
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One framed connection of the active mix.
struct ActiveConn {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    // a flood of connects can outrun the accept loop's backlog —
    // retry briefly instead of failing the whole run
    let mut delay = Duration::from_millis(1);
    for attempt in 0.. {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if attempt >= 20 => return Err(e),
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
        }
    }
    unreachable!()
}

/// Opens `n` idle connections and proves the server still answers.
fn open_idle(addr: &str, n: usize) -> Vec<TcpStream> {
    let conns: Vec<TcpStream> = (0..n)
        .map(|i| connect(addr).unwrap_or_else(|e| panic!("idle connection {i}/{n} failed: {e}")))
        .collect();
    conns
}

/// Runs the closed-loop active mix over `k` fresh connections while the
/// idle ones stay parked. Returns latencies in microseconds.
fn active_mix(addr: &str, requests: usize, k: usize) -> Vec<f64> {
    let mut active: Vec<ActiveConn> = (0..k)
        .map(|_| {
            let stream = connect(addr).expect("active connection");
            stream.set_nodelay(true).ok();
            ActiveConn {
                reader: BufReader::new(stream.try_clone().expect("clone stream")),
                stream,
            }
        })
        .collect();
    let mut lats = Vec::with_capacity(requests);
    for n in 0..requests {
        let conn = &mut active[n % k];
        let req = nth_query(n as u64, false, None, None, None);
        let line = encode_line(&Request::Recommend(req));
        let sent = Instant::now();
        conn.stream.write_all(line.as_bytes()).expect("write");
        conn.stream.write_all(b"\n").expect("write");
        let mut resp = String::new();
        conn.reader.read_line(&mut resp).expect("read");
        let resp: Response = decode_line(&resp).expect("decode");
        assert!(
            matches!(resp, Response::Recommendation(_)),
            "active mix answered {resp:?}"
        );
        lats.push(sent.elapsed().as_secs_f64() * 1e6);
    }
    lats
}

fn main() {
    let args = parse_args();
    // the client side holds every idle socket — it needs the headroom
    // just as much as the server does
    let fd_limit = mini_poll::raise_nofile_limit(1 << 20);
    let fd_budget = (fd_limit.saturating_sub(128)) as usize;

    // one quick-trained checkpoint shared by every server spawn
    let dir = std::env::temp_dir().join(format!("ai2_connscale_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let ckpt_path = dir.join("connscale.json");
    {
        use std::sync::Arc;
        let task = ai2_dse::DseTask::table_i_default();
        let ds = ai2_dse::DseDataset::generate(
            &task,
            &ai2_dse::GenerateConfig {
                num_samples: 300,
                seed: 0xC0,
                threads: 0,
                ..ai2_dse::GenerateConfig::default()
            },
        );
        let engine = ai2_dse::EvalEngine::shared(task);
        let mut model = airchitect::Airchitect2::with_engine(
            &airchitect::ModelConfig::default(),
            Arc::clone(&engine),
            &ds,
        );
        model.fit(&ds, &airchitect::train::TrainConfig::quick());
        model
            .checkpoint()
            .with_version(1)
            .save(&ckpt_path)
            .expect("save checkpoint");
    }
    let ckpt = ckpt_path.to_string_lossy().into_owned();

    let mut rows: Vec<ConnscaleRow> = Vec::new();
    for frontend in ["threads", "event"] {
        for &want in &args.conns {
            let mut n = want;
            if frontend == "threads" && n > args.threaded_cap {
                eprintln!(
                    "[connscale] threads front end capped at {}",
                    args.threaded_cap
                );
                continue;
            }
            if n > fd_budget {
                eprintln!(
                    "[connscale] clamping {n} connections to the fd budget {fd_budget} \
                     (soft limit {fd_limit})"
                );
                n = fd_budget;
            }
            let server = Server::spawn(&args, frontend, &ckpt);
            let baseline = server.settled_threads();
            eprintln!(
                "[connscale] {frontend}: opening {n} idle connections against {} \
                 (baseline {baseline} threads)",
                server.addr
            );
            let idle = open_idle(&server.addr, n);
            let resident = server.settled_threads();
            let lats = active_mix(&server.addr, args.requests, 8);
            let (p50, p95) = (percentile(&lats, 50.0), percentile(&lats, 95.0));
            eprintln!(
                "[connscale] {frontend} conns={n}: resident {resident} threads \
                 (baseline {baseline}), active p50 {p50:.0}µs p95 {p95:.0}µs"
            );
            rows.push(ConnscaleRow {
                frontend: frontend.to_string(),
                connections: n as u64,
                baseline_threads: baseline,
                resident_threads: resident,
                p50_us: p50,
                p95_us: p95,
            });
            drop(idle);
            drop(server);
        }
    }

    // the claim under test, asserted: the event front end's resident
    // thread count must not grow with the connection count
    let event_rows: Vec<&ConnscaleRow> = rows.iter().filter(|r| r.frontend == "event").collect();
    if let (Some(first), Some(last)) = (event_rows.first(), event_rows.last()) {
        assert!(
            last.resident_threads <= first.resident_threads + 2,
            "event front end grew threads with connections: {} at {} conns vs {} at {} conns",
            last.resident_threads,
            last.connections,
            first.resident_threads,
            first.connections
        );
    }

    let result = ConnscaleResult {
        event_threads: args.event_threads as u64,
        threaded_cap: args.threaded_cap as u64,
        rows,
    };
    if let Some(parent) = std::path::Path::new(&args.json).parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    let body = serde_json::to_string(&result).expect("serialize connscale result");
    std::fs::write(&args.json, body).expect("write artifact");
    println!("connscale: wrote {}", args.json);
}
