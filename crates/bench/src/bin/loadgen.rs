//! Load generator for the `ai2_serve` TCP endpoint.
//!
//! The default mode is **closed-loop**: `--concurrency` worker threads,
//! each with its own connection, fire a deterministic mix of GEMM and
//! (optionally) whole-model queries across all three objectives until
//! `--requests` responses have arrived, then print client-side
//! throughput and p50/p95/p99 latency plus the server's own `stats`
//! line.
//!
//! Two adversarial modes exercise the event front end's connection
//! handling:
//!
//! * `--open-loop` floods: every worker writes its whole share of
//!   requests before reading a single response, so queue depth on the
//!   server is bounded only by its admission policy. Under a shed
//!   policy (`serve --shed-high-water N`) the refused requests come
//!   back as `"shedding"` errors — counted, not failed — and
//!   `--min-sheds N` turns the count into an assertion.
//! * `--slow-loris` dribbles every request line a few bytes at a time
//!   with pauses in between: a front end that ties a thread (or a
//!   shard) to a half-written line collapses here, one that buffers
//!   per-connection does not.
//!
//! With `--refresh`, the run additionally performs a **live checkpoint
//! swap under load**: once a quarter of the requests have completed, a
//! side thread sends an admin `swap` (re-publishing `--swap-checkpoint`
//! at a bumped version) while the workers keep hammering the server
//! (the swap itself takes a while — checkpoint load + validation — so
//! the early trigger maximises the traffic crossing it). The run
//! fails unless the swap is acknowledged, the post-run stats report the
//! bumped version, and — as always — every response is a well-formed
//! recommendation (a swap must drop zero requests).
//!
//! Exits non-zero if any response is malformed or an unexpected error —
//! which is what the CI smoke test asserts.
//!
//! ```text
//! loadgen --addr 127.0.0.1:PORT [--requests N]     total requests (default 64)
//!         [--concurrency C]                        worker connections (default 8)
//!         [--connections N]                        alias for --concurrency, the
//!                                                  connection-scale spelling
//!         [--open-loop]                            flood: write everything, then
//!                                                  read everything
//!         [--slow-loris]                           dribble request bytes slowly
//!         [--min-sheds N]                          fail unless the server shed at
//!                                                  least N requests
//!         [--models]                               include whole-model queries
//!         [--deadline-ms N]                        per-request deadline
//!         [--backend NAME]                         cost backend on every query
//!                                                  ("analytic" / "systolic")
//!         [--pipeline NAME]                        recommendation pipeline on
//!                                                  every GEMM query (a name the
//!                                                  server has registered, e.g.
//!                                                  "staged"; model queries stay
//!                                                  on "default")
//!         [--refresh]                              swap the checkpoint mid-run
//!         [--swap-checkpoint PATH]                 server-side checkpoint path
//!                                                  the swap publishes
//!         [--json PATH]                            write a machine-readable
//!                                                  BENCH_*.json result file
//!         [--trace]                                enable server-side tracing
//!                                                  before the run (the overhead
//!                                                  gate's traced leg)
//!         [--trace-dump PATH]                      after the run, have the server
//!                                                  write its Chrome trace JSON to
//!                                                  PATH (server-side; implies the
//!                                                  capture stays enabled)
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ai2_bench::LoadgenResult;
use ai2_serve::protocol::{decode_line, encode_line};
use ai2_serve::{AdminRequest, Recommendation, Request, Response, TcpClient};
use ai2_tensor::stats::percentile;

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    open_loop: bool,
    slow_loris: bool,
    min_sheds: u64,
    models: bool,
    deadline_ms: Option<u64>,
    backend: Option<String>,
    pipeline: Option<String>,
    refresh: bool,
    swap_checkpoint: Option<String>,
    json: Option<String>,
    trace: bool,
    trace_dump: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        requests: 64,
        concurrency: 8,
        open_loop: false,
        slow_loris: false,
        min_sheds: 0,
        models: false,
        deadline_ms: None,
        backend: None,
        pipeline: None,
        refresh: false,
        swap_checkpoint: None,
        json: None,
        trace: false,
        trace_dump: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--requests" => args.requests = value(&mut i).parse().expect("--requests count"),
            "--concurrency" => {
                args.concurrency = value(&mut i).parse().expect("--concurrency count");
            }
            "--connections" => {
                args.concurrency = value(&mut i).parse().expect("--connections count");
            }
            "--open-loop" => args.open_loop = true,
            "--slow-loris" => args.slow_loris = true,
            "--min-sheds" => args.min_sheds = value(&mut i).parse().expect("--min-sheds count"),
            "--models" => args.models = true,
            "--deadline-ms" => {
                args.deadline_ms = Some(value(&mut i).parse().expect("--deadline-ms"))
            }
            "--backend" => args.backend = Some(value(&mut i)),
            "--pipeline" => args.pipeline = Some(value(&mut i)),
            "--refresh" => args.refresh = true,
            "--swap-checkpoint" => args.swap_checkpoint = Some(value(&mut i)),
            "--json" => args.json = Some(value(&mut i)),
            "--trace" => args.trace = true,
            "--trace-dump" => args.trace_dump = Some(value(&mut i)),
            other => panic!("unknown argument {other:?} (see src/bin/loadgen.rs for usage)"),
        }
        i += 1;
    }
    assert!(!args.addr.is_empty(), "--addr HOST:PORT is required");
    assert!(args.requests > 0 && args.concurrency > 0);
    if args.refresh {
        assert!(
            args.swap_checkpoint.is_some(),
            "--refresh needs --swap-checkpoint PATH (a server-side checkpoint file)"
        );
        assert!(
            !args.open_loop && !args.slow_loris,
            "--refresh is a closed-loop assertion; it does not compose with the flood modes"
        );
    }
    args
}

use ai2_bench::queries::nth_query;

/// What one response turned out to be.
enum Outcome {
    /// A well-formed recommendation (client latency in microseconds
    /// when the mode measures per-request latency).
    Ok(Option<f64>),
    /// Expired client-side (only legal with `--deadline-ms`).
    Expired,
    /// Refused inline by the server's shed admission policy.
    Shed,
    /// Anything else — the run fails.
    Fail(String),
}

fn classify(resp: &Response, deadline_set: bool, latency_us: Option<f64>) -> Outcome {
    match resp {
        Response::Recommendation(Recommendation {
            num_pes,
            l2_bytes,
            cost,
            layers,
            ..
        }) => {
            if *num_pes == 0 || *l2_bytes == 0 || !cost.is_finite() || *cost <= 0.0 || *layers == 0
            {
                return Outcome::Fail(format!("degenerate recommendation {resp:?}"));
            }
            Outcome::Ok(latency_us)
        }
        Response::Error { message, .. } if message.contains("shedding") => Outcome::Shed,
        Response::Error { message, .. } if deadline_set && message.contains("deadline") => {
            Outcome::Expired
        }
        other => Outcome::Fail(format!("unexpected response {other:?}")),
    }
}

/// Shared tallies every worker folds its outcomes into.
struct Tally {
    latencies: Mutex<Vec<f64>>,
    ok: AtomicU64,
    expired: AtomicU64,
    sheds: AtomicU64,
    failures: Mutex<Vec<String>>,
    /// Worker connections that never reached the server. Kept apart
    /// from `failures`: a connect that sent no request is not a
    /// request failure and must not dilute the request-level
    /// percentiles or fail the run outright (the surviving workers
    /// still drain the whole request budget in closed-loop mode).
    connect_failures: AtomicU64,
    completed: AtomicU64,
}

impl Tally {
    fn new() -> Tally {
        Tally {
            latencies: Mutex::new(Vec::new()),
            ok: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
            connect_failures: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// A worker whose TCP connect never reached the server: counted on
    /// its own, no latency sample, no request completion.
    fn record_connect_failure(&self, e: &std::io::Error) {
        eprintln!("[loadgen] worker connect failed: {e}");
        self.connect_failures.fetch_add(1, Ordering::Relaxed);
    }

    fn record(&self, outcome: Outcome) {
        match outcome {
            Outcome::Ok(lat) => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                if let Some(us) = lat {
                    self.latencies.lock().unwrap().push(us);
                }
            }
            Outcome::Expired => {
                self.expired.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Shed => {
                self.sheds.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Fail(msg) => self.failures.lock().unwrap().push(msg),
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// A raw NDJSON connection the flood modes drive directly (the
/// request/response lockstep of [`TcpClient::send`] is exactly what
/// open-loop and slow-loris must *not* do).
struct RawConn {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl RawConn {
    fn connect(addr: &str) -> std::io::Result<RawConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(RawConn {
            reader: BufReader::new(stream.try_clone()?),
            stream,
        })
    }

    /// Writes one encoded request line. With `dribble`, the bytes go
    /// out a few at a time with pauses — the slow-loris shape.
    fn write_line(&mut self, line: &str, dribble: bool) -> std::io::Result<()> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        if dribble {
            for chunk in bytes.chunks(7) {
                self.stream.write_all(chunk)?;
                self.stream.flush()?;
                std::thread::sleep(Duration::from_micros(300));
            }
        } else {
            self.stream.write_all(&bytes)?;
        }
        Ok(())
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        decode_line(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// One worker's request ids: `worker`, `worker + C`, `worker + 2C`, …
fn worker_share(worker: usize, concurrency: usize, requests: usize) -> Vec<u64> {
    (worker..requests)
        .step_by(concurrency)
        .map(|n| n as u64)
        .collect()
}

/// Waits until `trigger_at` requests completed, then swaps the
/// checkpoint under load. Returns the acknowledged version.
fn swap_mid_run(
    addr: &str,
    path: &str,
    completed: &AtomicU64,
    trigger_at: u64,
    deadline: Duration,
) -> Result<u64, String> {
    let started = Instant::now();
    while completed.load(Ordering::Relaxed) < trigger_at {
        if started.elapsed() > deadline {
            return Err(format!(
                "workers never reached the {trigger_at}-request mark for the swap"
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut admin = TcpClient::connect(addr).map_err(|e| format!("swap connect: {e}"))?;
    let resp = admin
        .send(&Request::Admin(AdminRequest::Swap {
            id: u64::MAX,
            path: path.to_string(),
            bump: Some(true),
        }))
        .map_err(|e| format!("swap transport: {e}"))?;
    match resp {
        Response::Admin(ack) if ack.op == "swap" => {
            eprintln!(
                "[loadgen] swap ok mid-run → model v{} (completed {} requests before the ack)",
                ack.model_version,
                completed.load(Ordering::Relaxed)
            );
            Ok(ack.model_version)
        }
        other => Err(format!("swap rejected: {other:?}")),
    }
}

/// The closed-loop worker: one request in flight per connection,
/// per-request latency measured. With `--slow-loris` the request bytes
/// dribble out, which is the whole point — the *other* connections'
/// latency must not care.
fn closed_loop_worker(args: &Args, next: &AtomicU64, tally: &Tally) {
    let mut conn = match RawConn::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            tally.record_connect_failure(&e);
            return;
        }
    };
    loop {
        let n = next.fetch_add(1, Ordering::Relaxed);
        if n >= args.requests as u64 {
            return;
        }
        let req = nth_query(
            n,
            args.models,
            args.deadline_ms,
            args.backend.as_deref(),
            args.pipeline.as_deref(),
        );
        let line = encode_line(&Request::Recommend(req));
        let sent = Instant::now();
        let outcome = conn
            .write_line(&line, args.slow_loris)
            .and_then(|()| conn.read_response());
        match outcome {
            Ok(resp) => tally.record(classify(
                &resp,
                args.deadline_ms.is_some(),
                Some(sent.elapsed().as_secs_f64() * 1e6),
            )),
            Err(e) => tally.record(Outcome::Fail(format!("transport: {e}"))),
        }
    }
}

/// The open-loop worker: its whole share goes out before anything is
/// read back, so the server's queue — not this client's lockstep — is
/// what absorbs the load.
fn open_loop_worker(args: &Args, worker: usize, tally: &Tally) {
    let mut conn = match RawConn::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            tally.record_connect_failure(&e);
            return;
        }
    };
    let share = worker_share(worker, args.concurrency, args.requests);
    for &n in &share {
        let req = nth_query(
            n,
            args.models,
            args.deadline_ms,
            args.backend.as_deref(),
            args.pipeline.as_deref(),
        );
        let line = encode_line(&Request::Recommend(req));
        if let Err(e) = conn.write_line(&line, args.slow_loris) {
            tally
                .failures
                .lock()
                .unwrap()
                .push(format!("flood write: {e}"));
            return;
        }
    }
    if let Err(e) = conn.stream.flush() {
        tally
            .failures
            .lock()
            .unwrap()
            .push(format!("flood flush: {e}"));
        return;
    }
    for _ in &share {
        match conn.read_response() {
            // open-loop latency is queueing, not service time — no
            // per-request numbers
            Ok(resp) => tally.record(classify(&resp, args.deadline_ms.is_some(), None)),
            Err(e) => {
                tally.record(Outcome::Fail(format!("transport: {e}")));
                return;
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let tracing = args.trace || args.trace_dump.is_some();
    if tracing {
        // enable server-side tracing before the first worker fires so
        // the whole run is captured (and the whole run pays the
        // recording cost — this is the overhead gate's traced leg)
        let resp = TcpClient::connect(&args.addr)
            .and_then(|mut c| {
                c.send(&Request::Admin(AdminRequest::Trace {
                    id: u64::MAX,
                    enable: Some(true),
                    path: None,
                }))
            })
            .unwrap_or_else(|e| panic!("--trace enable failed: {e}"));
        match resp {
            Response::Admin(ack) if ack.op == "trace" => eprintln!("[loadgen] tracing enabled"),
            other => panic!("--trace enable rejected: {other:?}"),
        }
    }
    let next = AtomicU64::new(0);
    let tally = Tally::new();
    let swapped_version: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));

    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..args.concurrency {
            let next = &next;
            let tally = &tally;
            let args = &args;
            scope.spawn(move || {
                if args.open_loop {
                    open_loop_worker(args, worker, tally);
                } else {
                    closed_loop_worker(args, next, tally);
                }
            });
        }
        if args.refresh {
            // the swap rides alongside the workers: requests before it
            // are answered by the old replica, requests after by the
            // new one, and none may fail either way
            let path = args.swap_checkpoint.clone().expect("checked in parse_args");
            let addr = args.addr.clone();
            let completed = &tally.completed;
            let failures = &tally.failures;
            let swapped_version = Arc::clone(&swapped_version);
            // fire at the quarter mark: the swap (checkpoint load +
            // validation) takes a while, so an early trigger maximises
            // the traffic that actually crosses it
            let trigger_at = (args.requests as u64) / 4;
            scope.spawn(move || {
                match swap_mid_run(
                    &addr,
                    &path,
                    completed,
                    trigger_at,
                    Duration::from_secs(120),
                ) {
                    Ok(version) => *swapped_version.lock().unwrap() = Some(version),
                    Err(e) => failures.lock().unwrap().push(e),
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let failures = tally.failures.lock().unwrap();
    if !failures.is_empty() {
        eprintln!("[loadgen] {} FAILURES:", failures.len());
        for f in failures.iter().take(10) {
            eprintln!("[loadgen]   {f}");
        }
        std::process::exit(1);
    }
    let connect_failures = tally.connect_failures.load(Ordering::Relaxed);
    if connect_failures > 0 {
        eprintln!(
            "[loadgen] {connect_failures} of {} worker connection(s) never reached the server",
            args.concurrency
        );
        if connect_failures as usize >= args.concurrency {
            eprintln!("[loadgen] no worker connected — nothing was measured");
            std::process::exit(1);
        }
    }

    let ok = tally.ok.load(Ordering::Relaxed);
    let sheds = tally.sheds.load(Ordering::Relaxed);
    let lats = tally.latencies.lock().unwrap();
    let (p50, p95, p99) = if lats.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            percentile(&lats, 50.0),
            percentile(&lats, 95.0),
            percentile(&lats, 99.0),
        )
    };
    println!(
        "loadgen: {} ok ({} deadline-expired, {} shed) in {:.3}s → {:.1} req/s over {} conns{} | client latency p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs",
        ok,
        tally.expired.load(Ordering::Relaxed),
        sheds,
        elapsed,
        ok as f64 / elapsed,
        args.concurrency,
        if args.open_loop { " (open loop)" } else { "" },
        p50,
        p95,
        p99,
    );

    // the server's own view (`None` percentiles print as 0: the server
    // is cold only when every request expired client-side)
    let server = match TcpClient::connect(&args.addr)
        .and_then(|mut c| c.send(&Request::Admin(AdminRequest::Stats { id: 0 })))
    {
        Ok(Response::Stats(s)) => {
            println!(
                "server stats: served {} (cache hits {}, sheds {}) | model v{}{} | {:.1} req/s | p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs | engine {}h/{}m | kernel {}{}",
                s.served,
                s.cache_hits,
                s.sheds,
                s.model_version,
                if s.frozen { " FROZEN" } else { "" },
                s.throughput_rps,
                s.p50_us.unwrap_or(0.0),
                s.p95_us.unwrap_or(0.0),
                s.p99_us.unwrap_or(0.0),
                s.engine_point_hits,
                s.engine_point_misses,
                s.kernel,
                if s.quantized_shards > 0 {
                    format!(" ({} int8 shard{})", s.quantized_shards, if s.quantized_shards == 1 { "" } else { "s" })
                } else {
                    String::new()
                },
            );
            s
        }
        other => {
            eprintln!("[loadgen] stats endpoint failed: {other:?}");
            std::process::exit(1);
        }
    };

    if args.min_sheds > 0 && sheds < args.min_sheds {
        eprintln!(
            "[loadgen] expected at least {} sheds under this load, observed {sheds} \
             (server counted {})",
            args.min_sheds, server.sheds
        );
        std::process::exit(1);
    }
    if sheds > server.sheds {
        eprintln!(
            "[loadgen] client saw {sheds} shed responses but the server only counted {}",
            server.sheds
        );
        std::process::exit(1);
    }

    let swapped_version = *swapped_version.lock().unwrap();
    if args.refresh {
        // the swap must have landed and the server must still be on (or
        // past) the acknowledged version
        let Some(acked) = swapped_version else {
            eprintln!("[loadgen] --refresh run finished without a swap acknowledgement");
            std::process::exit(1);
        };
        if server.model_version < acked {
            eprintln!(
                "[loadgen] stats report model v{} but the swap acknowledged v{acked}",
                server.model_version
            );
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.trace_dump {
        let resp = TcpClient::connect(&args.addr)
            .and_then(|mut c| {
                c.send(&Request::Admin(AdminRequest::Trace {
                    id: u64::MAX,
                    enable: None,
                    path: Some(path.clone()),
                }))
            })
            .unwrap_or_else(|e| panic!("--trace-dump failed: {e}"));
        match resp {
            Response::Admin(ack) if ack.op == "trace" => {
                eprintln!("[loadgen] server wrote trace {path}");
            }
            other => panic!("--trace-dump rejected: {other:?}"),
        }
    }

    if let Some(path) = &args.json {
        let result = LoadgenResult {
            requests: ok,
            deadline_expired: tally.expired.load(Ordering::Relaxed),
            elapsed_s: elapsed,
            client_rps: ok as f64 / elapsed,
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            server_served: server.served,
            server_cache_hits: server.cache_hits,
            backend: args
                .backend
                .clone()
                .unwrap_or_else(|| "analytic".to_string()),
            pipeline: args.pipeline.clone(),
            shards: server.shards,
            kernel: if server.quantized_shards > 0 {
                "quantized".to_string()
            } else {
                server.kernel.clone()
            },
            model_version: server.model_version,
            swapped: swapped_version.is_some(),
            sheds: Some(sheds),
            connections: Some(args.concurrency as u64),
            open_loop: Some(args.open_loop),
            traced: Some(tracing),
            connect_failures: Some(connect_failures),
        };
        let body = serde_json::to_string(&result).expect("serialize loadgen result");
        std::fs::write(path, body).expect("write --json result file");
        eprintln!("[loadgen] wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_failures_stay_out_of_request_accounting() {
        // a worker whose TCP connect never reached the server sent no
        // request: it must not pollute the request-failure list (which
        // fails the whole run), the latency samples (which feed
        // p50/p95), or the completion counter (which gates the swap
        // trigger)
        let tally = Tally::new();
        tally.record(Outcome::Ok(Some(120.0)));
        tally.record(Outcome::Ok(Some(80.0)));
        let refused = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        tally.record_connect_failure(&refused);
        assert_eq!(tally.connect_failures.load(Ordering::Relaxed), 1);
        assert!(
            tally.failures.lock().unwrap().is_empty(),
            "a connect failure is not a request failure"
        );
        assert_eq!(tally.latencies.lock().unwrap().len(), 2);
        assert_eq!(tally.ok.load(Ordering::Relaxed), 2);
        assert_eq!(tally.completed.load(Ordering::Relaxed), 2);
        // request-level failures still land in the failure list
        tally.record(Outcome::Fail("transport: broken pipe".into()));
        assert_eq!(tally.failures.lock().unwrap().len(), 1);
        assert_eq!(tally.connect_failures.load(Ordering::Relaxed), 1);
    }
}
