//! Closed-loop load generator for the `ai2_serve` TCP endpoint.
//!
//! Spawns `--concurrency` worker threads, each with its own connection,
//! firing a deterministic mix of GEMM and (optionally) whole-model
//! queries across all three objectives until `--requests` responses have
//! arrived. Prints client-side throughput and p50/p95/p99 latency, then
//! the server's own `stats` line.
//!
//! With `--refresh`, the run additionally performs a **live checkpoint
//! swap under load**: once a quarter of the requests have completed, a
//! side thread sends an admin `swap` (re-publishing `--swap-checkpoint`
//! at a bumped version) while the workers keep hammering the server
//! (the swap itself takes a while — checkpoint load + validation — so
//! the early trigger maximises the traffic crossing it). The run
//! fails unless the swap is acknowledged, the post-run stats report the
//! bumped version, and — as always — every response is a well-formed
//! recommendation (a swap must drop zero requests).
//!
//! Exits non-zero if any response is malformed or an unexpected error —
//! which is what the CI smoke test asserts.
//!
//! ```text
//! loadgen --addr 127.0.0.1:PORT [--requests N]     total requests (default 64)
//!         [--concurrency C]                        worker connections (default 8)
//!         [--models]                               include whole-model queries
//!         [--deadline-ms N]                        per-request deadline
//!         [--backend NAME]                         cost backend on every query
//!                                                  ("analytic" / "systolic")
//!         [--pipeline NAME]                        recommendation pipeline on
//!                                                  every GEMM query (a name the
//!                                                  server has registered, e.g.
//!                                                  "staged"; model queries stay
//!                                                  on "default")
//!         [--refresh]                              swap the checkpoint mid-run
//!         [--swap-checkpoint PATH]                 server-side checkpoint path
//!                                                  the swap publishes
//!         [--json PATH]                            write a machine-readable
//!                                                  BENCH_*.json result file
//!         [--trace]                                enable server-side tracing
//!                                                  before the run (the overhead
//!                                                  gate's traced leg)
//!         [--trace-dump PATH]                      after the run, have the server
//!                                                  write its Chrome trace JSON to
//!                                                  PATH (server-side; implies the
//!                                                  capture stays enabled)
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ai2_bench::LoadgenResult;
use ai2_serve::{Recommendation, Request, Response, TcpClient};
use ai2_tensor::stats::percentile;

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    models: bool,
    deadline_ms: Option<u64>,
    backend: Option<String>,
    pipeline: Option<String>,
    refresh: bool,
    swap_checkpoint: Option<String>,
    json: Option<String>,
    trace: bool,
    trace_dump: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        requests: 64,
        concurrency: 8,
        models: false,
        deadline_ms: None,
        backend: None,
        pipeline: None,
        refresh: false,
        swap_checkpoint: None,
        json: None,
        trace: false,
        trace_dump: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--requests" => args.requests = value(&mut i).parse().expect("--requests count"),
            "--concurrency" => {
                args.concurrency = value(&mut i).parse().expect("--concurrency count");
            }
            "--models" => args.models = true,
            "--deadline-ms" => {
                args.deadline_ms = Some(value(&mut i).parse().expect("--deadline-ms"))
            }
            "--backend" => args.backend = Some(value(&mut i)),
            "--pipeline" => args.pipeline = Some(value(&mut i)),
            "--refresh" => args.refresh = true,
            "--swap-checkpoint" => args.swap_checkpoint = Some(value(&mut i)),
            "--json" => args.json = Some(value(&mut i)),
            "--trace" => args.trace = true,
            "--trace-dump" => args.trace_dump = Some(value(&mut i)),
            other => panic!("unknown argument {other:?} (see src/bin/loadgen.rs for usage)"),
        }
        i += 1;
    }
    assert!(!args.addr.is_empty(), "--addr HOST:PORT is required");
    assert!(args.requests > 0 && args.concurrency > 0);
    if args.refresh {
        assert!(
            args.swap_checkpoint.is_some(),
            "--refresh needs --swap-checkpoint PATH (a server-side checkpoint file)"
        );
    }
    args
}

use ai2_bench::queries::nth_query;

fn check(resp: &Response, deadline_set: bool) -> Result<Option<f64>, String> {
    match resp {
        Response::Recommendation(Recommendation {
            num_pes,
            l2_bytes,
            cost,
            layers,
            ..
        }) => {
            if *num_pes == 0 || *l2_bytes == 0 || !cost.is_finite() || *cost <= 0.0 || *layers == 0
            {
                return Err(format!("degenerate recommendation {resp:?}"));
            }
            Ok(Some(*cost))
        }
        Response::Error { message, .. } if deadline_set && message.contains("deadline") => Ok(None),
        other => Err(format!("unexpected response {other:?}")),
    }
}

/// Waits until `trigger_at` requests completed, then swaps the
/// checkpoint under load. Returns the acknowledged version.
fn swap_mid_run(
    addr: &str,
    path: &str,
    completed: &AtomicU64,
    trigger_at: u64,
    deadline: Duration,
) -> Result<u64, String> {
    let started = Instant::now();
    while completed.load(Ordering::Relaxed) < trigger_at {
        if started.elapsed() > deadline {
            return Err(format!(
                "workers never reached the {trigger_at}-request mark for the swap"
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut admin = TcpClient::connect(addr).map_err(|e| format!("swap connect: {e}"))?;
    let resp = admin
        .send(&Request::Swap {
            id: u64::MAX,
            path: path.to_string(),
            bump: Some(true),
        })
        .map_err(|e| format!("swap transport: {e}"))?;
    match resp {
        Response::Admin(ack) if ack.op == "swap" => {
            eprintln!(
                "[loadgen] swap ok mid-run → model v{} (completed {} requests before the ack)",
                ack.model_version,
                completed.load(Ordering::Relaxed)
            );
            Ok(ack.model_version)
        }
        other => Err(format!("swap rejected: {other:?}")),
    }
}

fn main() {
    let args = parse_args();
    let tracing = args.trace || args.trace_dump.is_some();
    if tracing {
        // enable server-side tracing before the first worker fires so
        // the whole run is captured (and the whole run pays the
        // recording cost — this is the overhead gate's traced leg)
        let resp = TcpClient::connect(&args.addr)
            .and_then(|mut c| {
                c.send(&Request::Trace {
                    id: u64::MAX,
                    enable: Some(true),
                    path: None,
                })
            })
            .unwrap_or_else(|e| panic!("--trace enable failed: {e}"));
        match resp {
            Response::Admin(ack) if ack.op == "trace" => eprintln!("[loadgen] tracing enabled"),
            other => panic!("--trace enable rejected: {other:?}"),
        }
    }
    let next = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let expired = Arc::new(AtomicU64::new(0));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let swapped_version: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.concurrency {
            let next = Arc::clone(&next);
            let completed = Arc::clone(&completed);
            let latencies = Arc::clone(&latencies);
            let expired = Arc::clone(&expired);
            let failures = Arc::clone(&failures);
            let args = &args;
            scope.spawn(move || {
                let mut client = match TcpClient::connect(&args.addr) {
                    Ok(c) => c,
                    Err(e) => {
                        failures.lock().unwrap().push(format!("connect: {e}"));
                        return;
                    }
                };
                loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= args.requests as u64 {
                        return;
                    }
                    let req = nth_query(
                        n,
                        args.models,
                        args.deadline_ms,
                        args.backend.as_deref(),
                        args.pipeline.as_deref(),
                    );
                    let sent = Instant::now();
                    match client.send(&Request::Recommend(req)) {
                        Ok(resp) => match check(&resp, args.deadline_ms.is_some()) {
                            Ok(Some(_)) => latencies
                                .lock()
                                .unwrap()
                                .push(sent.elapsed().as_secs_f64() * 1e6),
                            Ok(None) => {
                                expired.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(msg) => failures.lock().unwrap().push(msg),
                        },
                        Err(e) => failures.lock().unwrap().push(format!("transport: {e}")),
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        if args.refresh {
            // the swap rides alongside the workers: requests before it
            // are answered by the old replica, requests after by the
            // new one, and none may fail either way
            let path = args.swap_checkpoint.clone().expect("checked in parse_args");
            let addr = args.addr.clone();
            let completed = Arc::clone(&completed);
            let failures = Arc::clone(&failures);
            let swapped_version = Arc::clone(&swapped_version);
            // fire at the quarter mark: the swap (checkpoint load +
            // validation) takes a while, so an early trigger maximises
            // the traffic that actually crosses it
            let trigger_at = (args.requests as u64) / 4;
            scope.spawn(move || {
                match swap_mid_run(
                    &addr,
                    &path,
                    &completed,
                    trigger_at,
                    Duration::from_secs(120),
                ) {
                    Ok(version) => *swapped_version.lock().unwrap() = Some(version),
                    Err(e) => failures.lock().unwrap().push(e),
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let failures = failures.lock().unwrap();
    if !failures.is_empty() {
        eprintln!("[loadgen] {} FAILURES:", failures.len());
        for f in failures.iter().take(10) {
            eprintln!("[loadgen]   {f}");
        }
        std::process::exit(1);
    }

    let lats = latencies.lock().unwrap();
    let (p50, p95, p99) = if lats.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            percentile(&lats, 50.0),
            percentile(&lats, 95.0),
            percentile(&lats, 99.0),
        )
    };
    println!(
        "loadgen: {} ok ({} deadline-expired) in {:.3}s → {:.1} req/s | client latency p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs",
        lats.len(),
        expired.load(Ordering::Relaxed),
        elapsed,
        lats.len() as f64 / elapsed,
        p50,
        p95,
        p99,
    );

    // the server's own view (`None` percentiles print as 0: the server
    // is cold only when every request expired client-side)
    let server = match TcpClient::connect(&args.addr)
        .and_then(|mut c| c.send(&Request::Stats { id: 0 }))
    {
        Ok(Response::Stats(s)) => {
            println!(
                "server stats: served {} (cache hits {}) | model v{}{} | {:.1} req/s | p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs | engine {}h/{}m | kernel {}{}",
                s.served,
                s.cache_hits,
                s.model_version,
                if s.frozen { " FROZEN" } else { "" },
                s.throughput_rps,
                s.p50_us.unwrap_or(0.0),
                s.p95_us.unwrap_or(0.0),
                s.p99_us.unwrap_or(0.0),
                s.engine_point_hits,
                s.engine_point_misses,
                s.kernel,
                if s.quantized_shards > 0 {
                    format!(" ({} int8 shard{})", s.quantized_shards, if s.quantized_shards == 1 { "" } else { "s" })
                } else {
                    String::new()
                },
            );
            s
        }
        other => {
            eprintln!("[loadgen] stats endpoint failed: {other:?}");
            std::process::exit(1);
        }
    };

    let swapped_version = *swapped_version.lock().unwrap();
    if args.refresh {
        // the swap must have landed and the server must still be on (or
        // past) the acknowledged version
        let Some(acked) = swapped_version else {
            eprintln!("[loadgen] --refresh run finished without a swap acknowledgement");
            std::process::exit(1);
        };
        if server.model_version < acked {
            eprintln!(
                "[loadgen] stats report model v{} but the swap acknowledged v{acked}",
                server.model_version
            );
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.trace_dump {
        let resp = TcpClient::connect(&args.addr)
            .and_then(|mut c| {
                c.send(&Request::Trace {
                    id: u64::MAX,
                    enable: None,
                    path: Some(path.clone()),
                })
            })
            .unwrap_or_else(|e| panic!("--trace-dump failed: {e}"));
        match resp {
            Response::Admin(ack) if ack.op == "trace" => {
                eprintln!("[loadgen] server wrote trace {path}");
            }
            other => panic!("--trace-dump rejected: {other:?}"),
        }
    }

    if let Some(path) = &args.json {
        let result = LoadgenResult {
            requests: lats.len() as u64,
            deadline_expired: expired.load(Ordering::Relaxed),
            elapsed_s: elapsed,
            client_rps: lats.len() as f64 / elapsed,
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            server_served: server.served,
            server_cache_hits: server.cache_hits,
            backend: args
                .backend
                .clone()
                .unwrap_or_else(|| "analytic".to_string()),
            pipeline: args.pipeline.clone(),
            shards: server.shards,
            kernel: if server.quantized_shards > 0 {
                "quantized".to_string()
            } else {
                server.kernel.clone()
            },
            model_version: server.model_version,
            swapped: swapped_version.is_some(),
            traced: Some(tracing),
        };
        let body = serde_json::to_string(&result).expect("serialize loadgen result");
        std::fs::write(path, body).expect("write --json result file");
        eprintln!("[loadgen] wrote {path}");
    }
}
