//! **Table III** — comparison with learning-based techniques.
//!
//! Paper values (prediction accuracy, %): GANDSE 84.39,
//! AIrchitect v1 77.60, AIrchitect v2 91.17. VAESA+BO appears in the
//! baselines of §IV-A; its accuracy is reported here as well for
//! completeness (it is a search hybrid, scored on the same test split
//! with its BO budget).

use ai2_bench::{
    default_engine, load_or_generate, print_table, train_gandse, train_v1, train_v2, train_vaesa,
    write_csv, Sizes,
};
use airchitect::predictor::{evaluate_of, PredictFn};

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);
    let (train, test) = ds.split(0.8, sizes.seed);

    // VAESA's per-input BO is expensive; score it on a capped subset.
    let vaesa_test = if test.len() > 400 {
        ai2_dse::DseDataset {
            backend: test.backend,
            samples: test.samples[..400].to_vec(),
        }
    } else {
        test.clone()
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut record = |name: &str, method: &dyn PredictFn, subset: &ai2_dse::DseDataset| {
        // one forward pass per method: all metrics from a single report
        let rep = evaluate_of(method, &engine, subset);
        let (acc, ratio) = (rep.bucket_accuracy, rep.latency_ratio);
        println!("[table3] {name}: accuracy {acc:.2}%, latency ratio {ratio:.3}");
        rows.push((name.to_string(), format!("{acc:.2}")));
        csv.push(vec![
            name.to_string(),
            format!("{acc:.4}"),
            format!("{ratio:.4}"),
        ]);
    };

    let v1 = train_v1(&engine, &train, &sizes);
    record("AIrchitect v1 (MLP)", &v1, &test);

    let gan = train_gandse(&engine, &train, &sizes);
    record("GANDSE (cGAN)", &gan, &test);

    let vae = train_vaesa(&engine, &train, &sizes);
    record("VAESA + BO", &vae, &vaesa_test);

    let v2 = train_v2(&engine, &train, &sizes);
    let p = v2.predictor();
    record("AIrchitect v2 (ours)", &p, &test);

    print_table(
        "Table III — learning-based DSE comparison",
        ("method", "accuracy (%)"),
        &rows,
    );
    println!("\npaper reference: v1 77.60, GANDSE 84.39, v2 91.17");
    write_csv(
        &sizes.out_dir.join("table3.csv"),
        "method,bucket_accuracy,latency_ratio",
        &csv,
    );
}
