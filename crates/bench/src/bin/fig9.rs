//! **Figure 9** — effect of the UOV representation on prediction
//! accuracy and model size, for *both* AIrchitect v1 and v2.
//!
//! The paper's point: UOV is not specific to v2 — swapping the
//! classification head of either model for UOV heads improves accuracy
//! while shrinking the model.

use ai2_baselines::{AirchitectV1, V1Config};
use ai2_bench::{default_engine, load_or_generate, write_csv, Sizes};
use airchitect::predictor::bucket_accuracy_of;
use airchitect::{Airchitect2, HeadKind, ModelConfig};
use std::sync::Arc;

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);
    let (train, test) = ds.split(0.8, sizes.seed);

    let heads = [
        (HeadKind::Classification, "classification"),
        (HeadKind::Uov { k: 16 }, "uov"),
    ];

    let mut csv = Vec::new();
    println!("\nFig 9 — classification vs UOV heads (accuracy %, model size)");
    println!(
        "{:<14} {:<16} {:>12} {:>12} {:>10}",
        "model", "head", "accuracy", "size", "size ratio"
    );

    // --- AIrchitect v1 variants
    let mut v1_sizes = Vec::new();
    for (head, tag) in heads {
        let cfg = V1Config {
            head,
            epochs: sizes.baseline_epochs,
            ..V1Config::default()
        };
        let mut v1 = AirchitectV1::with_engine(&cfg, Arc::clone(&engine), &train);
        eprintln!("[fig9] training v1/{tag}…");
        v1.fit(&train);
        let acc = bucket_accuracy_of(&v1, &engine, &test);
        v1_sizes.push((tag, acc, v1.model_size()));
    }
    let v1_base = v1_sizes[0].2 as f64;
    for (tag, acc, size) in &v1_sizes {
        println!(
            "{:<14} {:<16} {:>11.2}% {:>12} {:>10.3}",
            "v1",
            tag,
            acc,
            size,
            *size as f64 / v1_base
        );
        csv.push(vec![
            "v1".into(),
            tag.to_string(),
            format!("{acc:.4}"),
            size.to_string(),
            format!("{:.4}", *size as f64 / v1_base),
        ]);
    }

    // --- AIrchitect v2 variants
    let mut v2_sizes = Vec::new();
    for (head, tag) in heads {
        let cfg_model = ModelConfig {
            head,
            ..ModelConfig::default()
        };
        let mut v2 = Airchitect2::with_engine(&cfg_model, Arc::clone(&engine), &train);
        eprintln!("[fig9] training v2/{tag}…");
        v2.fit(&train, &sizes.train_config());
        let p = v2.predictor();
        let acc = bucket_accuracy_of(&p, &engine, &test);
        v2_sizes.push((tag, acc, v2.model_size()));
    }
    let v2_base = v2_sizes[0].2 as f64;
    for (tag, acc, size) in &v2_sizes {
        println!(
            "{:<14} {:<16} {:>11.2}% {:>12} {:>10.3}",
            "v2",
            tag,
            acc,
            size,
            *size as f64 / v2_base
        );
        csv.push(vec![
            "v2".into(),
            tag.to_string(),
            format!("{acc:.4}"),
            size.to_string(),
            format!("{:.4}", *size as f64 / v2_base),
        ]);
    }

    println!("\npaper reference: UOV improves accuracy AND shrinks both models");
    write_csv(
        &sizes.out_dir.join("fig9_uov_vs_classification.csv"),
        "model,head,bucket_accuracy,model_size,normalized_size",
        &csv,
    );
}
