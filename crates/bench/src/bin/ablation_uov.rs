//! **Extension ablation** (DESIGN.md §9): two UOV design choices the
//! paper fixes without sweeping —
//!
//! * the monotone decay function's sharpness `β` in Algorithm 1,
//! * space-increasing vs uniform discretization of the choice axis.
//!
//! Both are evaluated on decode robustness (exact roundtrip plus decode
//! accuracy under head-style noise), independent of any trained model,
//! so this runs in seconds.

use ai2_bench::{print_table, write_csv, Sizes};
use ai2_tensor::rng;
use ai2_uov::{ConfigCodec, DiscretizationKind, UovCodec};
use rand::Rng;

/// Decode accuracy (%) under additive uniform noise of amplitude `amp`.
fn noisy_accuracy(codec: &UovCodec, choices: usize, amp: f32, seed: u64) -> f64 {
    let mut r = rng::seeded(seed);
    let mut hits = 0usize;
    let trials = 4;
    for idx in 0..choices {
        for t in 0..trials {
            let mut v = codec.encode(idx);
            for x in v.iter_mut() {
                *x = (*x + r.random_range(-amp..amp)).clamp(0.0, 1.0);
            }
            let d = codec.decode(&v);
            // bucket-level hit, mirroring the experiment metric
            if codec.bucket_of(d) == codec.bucket_of(idx) {
                hits += 1;
            }
            let _ = t;
        }
    }
    100.0 * hits as f64 / (choices * trials) as f64
}

fn main() {
    let sizes = Sizes::from_args();
    let choices = 64;
    let k = 16;

    // --- β sweep
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for beta in [0.5f32, 1.0, 1.5, 2.0, 4.0, 8.0] {
        let codec = UovCodec::new(k, choices).with_beta(beta);
        // exact roundtrip must hold at every β
        let exact = (0..choices).all(|i| codec.decode(&codec.encode(i)) == i);
        let acc_low = noisy_accuracy(&codec, choices, 0.05, 1);
        let acc_high = noisy_accuracy(&codec, choices, 0.15, 2);
        rows.push((
            format!("β = {beta}"),
            format!("{acc_low:.1}% / {acc_high:.1}%"),
        ));
        csv.push(vec![
            beta.to_string(),
            exact.to_string(),
            format!("{acc_low:.2}"),
            format!("{acc_high:.2}"),
        ]);
        assert!(exact, "β = {beta} broke the lossless roundtrip");
    }
    print_table(
        "UOV ablation — decay sharpness β (noise 0.05 / 0.15)",
        ("variant", "bucket-decode acc"),
        &rows,
    );
    write_csv(
        &sizes.out_dir.join("ablation_uov_beta.csv"),
        "beta,exact_roundtrip,acc_noise005,acc_noise015",
        &csv,
    );

    // --- discretization kind
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (kind, name) in [
        (
            DiscretizationKind::SpaceIncreasing,
            "space-increasing (paper)",
        ),
        (DiscretizationKind::Uniform, "uniform"),
    ] {
        let codec = UovCodec::with_kind(kind, k, choices);
        let acc_low = noisy_accuracy(&codec, choices, 0.05, 3);
        let acc_high = noisy_accuracy(&codec, choices, 0.15, 4);
        // SID gives small choices finer buckets: check head resolution
        let head_bucket_width = (0..choices)
            .take_while(|&i| codec.bucket_of(i) == 0)
            .count();
        rows.push((
            name.to_string(),
            format!("{acc_low:.1}% / {acc_high:.1}% (head width {head_bucket_width})"),
        ));
        csv.push(vec![
            name.to_string(),
            format!("{acc_low:.2}"),
            format!("{acc_high:.2}"),
            head_bucket_width.to_string(),
        ]);
    }
    print_table(
        "UOV ablation — discretization kind",
        ("variant", "bucket-decode acc"),
        &rows,
    );
    write_csv(
        &sizes.out_dir.join("ablation_uov_discretization.csv"),
        "kind,acc_noise005,acc_noise015,head_bucket_width",
        &csv,
    );
    println!("\ninterpretation: SID trades tail resolution for head resolution,");
    println!("matching the long-tailed label distribution of Fig. 3b");
}
