//! **Figure 8(a)** — Bayesian-optimization search in the contrastive
//! embedding space vs the VAE latent space, on Llama2-7B layers.
//!
//! For each unique (tiled) Llama2-7B layer, BO probes a latent point,
//! decodes it to a hardware configuration (stage-2 decoder for the
//! contrastive space, VAE decoder for VAESA), and scores it with the
//! cost model. The series is the best-so-far latency (normalized to the
//! oracle optimum), averaged over layers — the paper shows the
//! contrastive space converging faster and lower.

use ai2_bench::{default_engine, load_or_generate, train_v2, train_vaesa, write_csv, Sizes};
use ai2_dse::search::bo::BoMinimizer;
use ai2_maestro::Dataflow;
use ai2_workloads::generator::DseInput;
use ai2_workloads::zoo;

fn main() {
    let sizes = Sizes::from_args();
    let budget = 150usize.min(sizes.samples); // BO queries per layer
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);
    let (train, _) = ds.split(0.8, sizes.seed);

    let v2 = train_v2(&engine, &train, &sizes);
    let vae = train_vaesa(&engine, &train, &sizes);

    // bounds of the contrastive embedding box from the training set
    let prep = v2.prepare(&train);
    let z = v2.embeddings(&prep.features);
    let d = z.cols();
    let mut bounds = Vec::with_capacity(d);
    for j in 0..d {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for i in 0..z.rows() {
            lo = lo.min(z[(i, j)]);
            hi = hi.max(z[(i, j)]);
        }
        let pad = 0.1 * (hi - lo).max(1e-3);
        bounds.push(((lo - pad) as f64, (hi + pad) as f64));
    }

    let layers = zoo::llama2_7b().to_dse_layers();
    let mut contrastive_acc = vec![0.0f64; budget];
    let mut vae_acc = vec![0.0f64; budget];
    let mut layer_count = 0usize;

    for (li, layer) in layers.iter().enumerate() {
        let input = DseInput {
            gemm: layer.gemm,
            dataflow: Dataflow::WeightStationary,
        };
        let oracle = engine.oracle(&input).best_score;

        // --- BO over the contrastive embedding
        let bo = BoMinimizer::new(bounds.clone(), 1000 + li as u64);
        let trace_c = bo.minimize(
            |zq| {
                let zf: Vec<f32> = zq.iter().map(|&v| v as f32).collect();
                let p = v2.decode_embedding(&zf);
                match engine.score(&input, p) {
                    Some(s) => s.max(1.0).ln(),
                    None => (engine.score_unchecked(&input, p) * 10.0).max(1.0).ln(),
                }
            },
            budget,
        );
        // --- BO over the VAE latent
        let (_, trace_v) = vae.search(&input, budget, 2000 + li as u64);

        for i in 0..budget {
            contrastive_acc[i] += (trace_c.best_trace[i].exp() / oracle).ln();
            vae_acc[i] += (trace_v.best_trace[i].exp() / oracle).ln();
        }
        layer_count += 1;
        eprintln!(
            "[fig8a] layer {} done ({}/{})",
            layer.name,
            li + 1,
            layers.len()
        );
    }

    let rows: Vec<Vec<String>> = (0..budget)
        .map(|i| {
            let c = (contrastive_acc[i] / layer_count as f64).exp();
            let v = (vae_acc[i] / layer_count as f64).exp();
            vec![i.to_string(), format!("{c:.5}"), format!("{v:.5}")]
        })
        .collect();
    write_csv(
        &sizes.out_dir.join("fig8a_bo_convergence.csv"),
        "samples,contrastive_bo,vaesa_bo",
        &rows,
    );

    println!(
        "\nFig 8a — BO convergence on Llama2-7B (normalized latency vs oracle, lower is better)"
    );
    for &i in &[0usize, budget / 8, budget / 4, budget / 2, budget - 1] {
        let c = (contrastive_acc[i] / layer_count as f64).exp();
        let v = (vae_acc[i] / layer_count as f64).exp();
        println!(
            "  after {:>4} samples: contrastive {c:.3}   vaesa {v:.3}",
            i + 1
        );
    }
    let final_c = (contrastive_acc[budget - 1] / layer_count as f64).exp();
    let final_v = (vae_acc[budget - 1] / layer_count as f64).exp();
    println!("\npaper reference: contrastive+BO converges faster and lower than VAESA+BO");
    println!(
        "reproduced: final contrastive {final_c:.3} vs vaesa {final_v:.3} ({})",
        if final_c <= final_v {
            "matches"
        } else {
            "DIVERGES"
        }
    );
}
