//! **Table II** — stage-1 loss ablation.
//!
//! Paper values (prediction accuracy, %):
//!
//! | L_C | L_perf | accuracy |
//! |-----|--------|----------|
//! |     |        | 79.43    |
//! |     | ✓      | 81.27    |
//! | ✓   |        | 89.97    |
//! | ✓   | ✓      | 91.17    |
//!
//! The reproduction trains four encoders that differ only in the stage-1
//! objective and reports bucket-level accuracy on the held-out split.

use ai2_bench::{default_engine, load_or_generate, print_table, write_csv, Sizes};
use airchitect::{Airchitect2, ModelConfig};
use std::sync::Arc;

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);
    let (train, test) = ds.split(0.8, sizes.seed);

    let variants = [
        (false, false, "L2 only (neither)"),
        (false, true, "L_perf only"),
        (true, false, "L_C only"),
        (true, true, "L_C + L_perf (paper)"),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (contrastive, perf, label) in variants {
        let mut model =
            Airchitect2::with_engine(&ModelConfig::default(), Arc::clone(&engine), &train);
        let cfg = sizes.train_config().with_stage1_losses(contrastive, perf);
        eprintln!("[table2] training variant: {label}");
        model.fit(&train, &cfg);
        let rep = model.predictor().evaluate(&test);
        let (acc, exact, ratio) = (rep.bucket_accuracy, rep.exact_accuracy, rep.latency_ratio);
        rows.push((label.to_string(), format!("{acc:.2}")));
        csv.push(vec![
            contrastive.to_string(),
            perf.to_string(),
            format!("{acc:.4}"),
            format!("{exact:.4}"),
            format!("{ratio:.4}"),
        ]);
    }

    print_table(
        "Table II — AIrchitect v2 stage-1 ablations",
        ("stage-1 objective", "accuracy (%)"),
        &rows,
    );
    println!("\npaper reference: 79.43 / 81.27 / 89.97 / 91.17");
    write_csv(
        &sizes.out_dir.join("table2.csv"),
        "contrastive,perf,bucket_accuracy,exact_accuracy,latency_ratio",
        &csv,
    );
}
