//! CI perf-regression gate over `loadgen --json` result files.
//!
//! Compares a fresh `BENCH_loadgen*.json` against a committed baseline
//! and fails (exit 1) when the p95 client latency regressed by more
//! than the allowed fraction. The gate **keys on configuration, not
//! just numbers**: the two records must describe the same backend,
//! shard count, inference kernel and recommendation pipeline,
//! otherwise the comparison is refused (exit 2) — a 4-shard systolic
//! run "regressing" against a 1-shard analytic baseline is a
//! configuration mismatch, not a perf signal, an AVX2 run "improving"
//! on a scalar baseline is the dispatcher picking a different code
//! path, not a code change, and a staged predict→refine→verify run
//! "regressing" against a one-shot baseline is the pipeline doing
//! strictly more work per query by design. A missing `pipeline` field
//! (records written before pipelines existed) matches `"default"`.
//!
//! ```text
//! bench_gate --baseline ci/BENCH_baseline.json
//!            --current  BENCH_loadgen.json
//!            [--max-p95-regress 0.25]   allowed fractional p95 growth
//!            [--json-out PATH]          write the comparison record
//!                                       (results/BENCH_obs.json in CI)
//! ```
//!
//! The `traced` field is deliberately **not** part of the configuration
//! key: the tracing self-overhead gate *is* a traced run gated against
//! an untraced baseline of the same backend/shards/kernel
//! (`--max-p95-regress 0.05` in the CI `obs` job).
//!
//! Throughput and model version are reported for context but not
//! gated: rps is noisy on shared CI runners, and the model version
//! legitimately moves (every refresh publishes a new one).

use ai2_bench::LoadgenResult;
use serde::Serialize;

struct Args {
    baseline: String,
    current: String,
    max_p95_regress: f64,
    json_out: Option<String>,
}

/// The machine-readable comparison record `--json-out` writes (the
/// `BENCH_obs.json` artifact of the CI tracing-overhead gate).
#[derive(Debug, Serialize)]
struct GateReport {
    baseline_p95_us: f64,
    current_p95_us: f64,
    /// Fractional p95 growth, `current/baseline - 1` (negative =
    /// faster).
    p95_regress: f64,
    /// The allowed fraction the gate enforced.
    max_p95_regress: f64,
    passed: bool,
    backend: String,
    shards: usize,
    kernel: String,
    pipeline: String,
    baseline_traced: Option<bool>,
    current_traced: Option<bool>,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: String::new(),
        current: String::new(),
        max_p95_regress: 0.25,
        json_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--baseline" => args.baseline = value(&mut i),
            "--current" => args.current = value(&mut i),
            "--max-p95-regress" => {
                args.max_p95_regress = value(&mut i).parse().expect("--max-p95-regress fraction");
            }
            "--json-out" => args.json_out = Some(value(&mut i)),
            other => panic!("unknown argument {other:?} (see src/bin/bench_gate.rs for usage)"),
        }
        i += 1;
    }
    assert!(!args.baseline.is_empty(), "--baseline PATH is required");
    assert!(!args.current.is_empty(), "--current PATH is required");
    assert!(
        args.max_p95_regress > 0.0,
        "--max-p95-regress must be positive"
    );
    args
}

fn load(path: &str) -> LoadgenResult {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!(
            "bench_gate: BASELINE UNREADABLE — cannot read {path:?}: {e}; regenerate the \
             baseline for this configuration (see ci/README.md)"
        );
        std::process::exit(2);
    });
    serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!(
            "bench_gate: STALE BASELINE — {path:?} does not parse as a loadgen result ({e}); \
             a committed record written before a result field was added gates nothing — \
             regenerate the baseline for this configuration (see ci/README.md)"
        );
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    let baseline = load(&args.baseline);
    let current = load(&args.current);

    // -- configuration key: refuse apples-vs-oranges comparisons ------
    // `pipeline` is normalized: a record with no pipeline field (or an
    // explicit null) ran the server's built-in "default"
    let norm = |r: &LoadgenResult| r.pipeline.clone().unwrap_or_else(|| "default".to_string());
    let (baseline_pipeline, current_pipeline) = (norm(&baseline), norm(&current));
    if baseline.backend != current.backend
        || baseline.shards != current.shards
        || baseline.kernel != current.kernel
        || baseline_pipeline != current_pipeline
    {
        eprintln!(
            "bench_gate: CONFIGURATION MISMATCH — baseline ran backend={} shards={} kernel={} \
             pipeline={}, current ran backend={} shards={} kernel={} pipeline={}; regenerate \
             the baseline for this configuration (force a kernel with \
             AI2_KERNEL=scalar|sse2|avx2)",
            baseline.backend,
            baseline.shards,
            baseline.kernel,
            baseline_pipeline,
            current.backend,
            current.shards,
            current.kernel,
            current_pipeline
        );
        std::process::exit(2);
    }

    println!(
        "bench_gate: config backend={} shards={} kernel={} pipeline={} | model v{} → v{}",
        current.backend,
        current.shards,
        current.kernel,
        current_pipeline,
        baseline.model_version,
        current.model_version
    );
    println!(
        "bench_gate: p95 {:.0}µs (baseline) vs {:.0}µs (current) | rps {:.1} vs {:.1}",
        baseline.p95_us, current.p95_us, baseline.client_rps, current.client_rps
    );

    if !(baseline.p95_us.is_finite() && baseline.p95_us > 0.0) {
        println!(
            "bench_gate: baseline p95 is degenerate ({}); nothing to gate against — PASS",
            baseline.p95_us
        );
        return;
    }
    if !(current.p95_us.is_finite() && current.p95_us > 0.0) {
        eprintln!(
            "bench_gate: current p95 is degenerate ({}); the run answered nothing",
            current.p95_us
        );
        std::process::exit(1);
    }

    let regress = current.p95_us / baseline.p95_us - 1.0;
    let passed = regress <= args.max_p95_regress;
    if let Some(path) = &args.json_out {
        let report = GateReport {
            baseline_p95_us: baseline.p95_us,
            current_p95_us: current.p95_us,
            p95_regress: regress,
            max_p95_regress: args.max_p95_regress,
            passed,
            backend: current.backend.clone(),
            shards: current.shards,
            kernel: current.kernel.clone(),
            pipeline: current_pipeline.clone(),
            baseline_traced: baseline.traced,
            current_traced: current.traced,
        };
        let body = serde_json::to_string(&report).expect("serialize gate report");
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("bench_gate: wrote {path}");
    }

    if !passed {
        eprintln!(
            "bench_gate: FAIL — p95 {:.0}µs exceeds baseline {:.0}µs by more than {:.0}% \
             (limit {:.0}µs)",
            current.p95_us,
            baseline.p95_us,
            args.max_p95_regress * 100.0,
            baseline.p95_us * (1.0 + args.max_p95_regress)
        );
        eprintln!(
            "bench_gate: if this is a hardware change rather than a code regression, \
             regenerate the baseline on the gating machine (see ci/README.md)"
        );
        std::process::exit(1);
    }
    println!(
        "bench_gate: PASS — p95 within {:.0}% of baseline ({:+.1}%)",
        args.max_p95_regress * 100.0,
        regress * 100.0
    );
}
