//! **Figure 8(b)** — impact of the number of UOV buckets `K` on accuracy
//! and model size.
//!
//! The paper sweeps K and finds accuracy saturating beyond 16 buckets
//! while model size keeps growing — 16 is the chosen trade-off. K = 1
//! reverts to regression; large K approaches classification.

use ai2_bench::{default_engine, load_or_generate, print_table, write_csv, Sizes};
use airchitect::{Airchitect2, HeadKind, ModelConfig};
use std::sync::Arc;

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);
    let (train, test) = ds.split(0.8, sizes.seed);

    let ks = [1usize, 4, 8, 16, 32];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &k in &ks {
        let cfg_model = ModelConfig {
            head: if k == 1 {
                HeadKind::Regression
            } else {
                HeadKind::Uov { k }
            },
            ..ModelConfig::default()
        };
        let mut model = Airchitect2::with_engine(&cfg_model, Arc::clone(&engine), &train);
        eprintln!("[fig8b] training with K = {k}…");
        model.fit(&train, &sizes.train_config());
        let rep = model.predictor().evaluate(&test);
        let acc = rep.bucket_accuracy;
        let size = model.model_size();
        rows.push((format!("K = {k}"), format!("{acc:.2}% / {size} params")));
        csv.push(vec![
            k.to_string(),
            format!("{acc:.4}"),
            size.to_string(),
            format!("{:.4}", rep.latency_ratio),
        ]);
    }

    print_table(
        "Fig 8b — UOV bucket-count sweep",
        ("buckets", "accuracy / size"),
        &rows,
    );
    println!("\npaper reference: accuracy saturates beyond K = 16; size keeps growing");
    write_csv(
        &sizes.out_dir.join("fig8b_bucket_sweep.csv"),
        "k,bucket_accuracy,model_size,latency_ratio",
        &csv,
    );
}
