//! **Figure 4** — complexity of the problem space: input features
//! (PCA-projected, xy-plane) against the *output* configuration plotted
//! into UOV buckets (z-axis). The jagged, non-separable structure is the
//! paper's argument for a sophisticated model architecture.

use ai2_bench::{default_engine, load_or_generate, write_csv, Sizes};
use ai2_tensor::linalg::Pca;
use ai2_tensor::{stats, Tensor};
use ai2_uov::UovCodec;

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);

    let feats: Vec<Tensor> = ds
        .samples
        .iter()
        .map(|s| {
            Tensor::from_slice(&[
                (s.m as f32).ln(),
                (s.n as f32).ln(),
                (s.k as f32).ln(),
                s.dataflow as f32,
            ])
        })
        .collect();
    let x = Tensor::stack_rows(&feats);
    let std = stats::Standardizer::fit(&x);
    let proj = Pca::fit(&std.transform(&x), 2).transform(&std.transform(&x));

    let pe_bucketizer = UovCodec::new(16, engine.space().num_pe_choices());
    let buckets: Vec<usize> = ds
        .samples
        .iter()
        .map(|s| pe_bucketizer.bucket_of(s.optimal.pe_idx))
        .collect();

    let rows: Vec<Vec<String>> = (0..ds.len())
        .map(|i| {
            vec![
                format!("{:.5}", proj[(i, 0)]),
                format!("{:.5}", proj[(i, 1)]),
                buckets[i].to_string(),
            ]
        })
        .collect();
    write_csv(
        &sizes.out_dir.join("fig4_complexity.csv"),
        "pca0,pca1,uov_bucket",
        &rows,
    );

    // bucket occupancy summary (how scattered outputs are across inputs)
    let mut occupancy = vec![0usize; 16];
    for &b in &buckets {
        occupancy[b] += 1;
    }
    println!("Fig 4 — output buckets over the PCA'd input plane");
    println!("  bucket occupancy (0..15): {occupancy:?}");
    let nonzero = occupancy.iter().filter(|&&c| c > 0).count();
    println!("  buckets in use: {nonzero}/16");
    println!("\npaper reference: irregular, non-trivially scattered output buckets");
}
