//! **Figure 3** — the two DSE-dataset pathologies that motivate the
//! paper:
//!
//! * **(a)** non-uniform, non-convex performance landscape: PCA of the
//!   input features (x, y) against normalized optimal latency (z),
//! * **(b)** long-tailed distribution of samples over optimal design
//!   points (log scale).

use ai2_bench::{default_engine, load_or_generate, write_csv, Sizes};
use ai2_dse::stats::LabelHistogram;
use ai2_tensor::linalg::Pca;
use ai2_tensor::{stats, Tensor};

fn main() {
    let sizes = Sizes::from_args();
    let engine = default_engine();
    let ds = load_or_generate(&engine, &sizes);

    // --- (a) landscape: PCA of standardized input features vs latency
    let feats: Vec<Tensor> = ds
        .samples
        .iter()
        .map(|s| {
            Tensor::from_slice(&[
                (s.m as f32).ln(),
                (s.n as f32).ln(),
                (s.k as f32).ln(),
                s.dataflow as f32,
            ])
        })
        .collect();
    let x = Tensor::stack_rows(&feats);
    let std = stats::Standardizer::fit(&x);
    let xz = std.transform(&x);
    let pca = Pca::fit(&xz, 2);
    let proj = pca.transform(&xz);
    let lat: Vec<f32> = ds.samples.iter().map(|s| s.best_score as f32).collect();
    let lat_norm = stats::minmax_normalize(&lat.iter().map(|l| l.ln()).collect::<Vec<_>>());

    let rows: Vec<Vec<String>> = (0..ds.len())
        .map(|i| {
            vec![
                format!("{:.5}", proj[(i, 0)]),
                format!("{:.5}", proj[(i, 1)]),
                format!("{:.5}", lat_norm[i]),
            ]
        })
        .collect();
    write_csv(
        &sizes.out_dir.join("fig3a_landscape.csv"),
        "pca0,pca1,norm_latency",
        &rows,
    );

    // quantify non-uniformity: latency spread among feature-space
    // neighbours vs global spread
    let (mean_l, std_l) = stats::mean_std(&lat_norm);
    println!(
        "Fig 3a — landscape: {} points, normalized latency mean {mean_l:.3} std {std_l:.3}",
        ds.len()
    );
    println!(
        "         explained variance of 2 PCs: {:?}",
        pca.explained_variance()
    );

    // --- (b) long-tail histogram
    let hist = LabelHistogram::from_dataset(&ds);
    let counts = hist.sorted_counts();
    let rows: Vec<Vec<String>> = counts
        .iter()
        .enumerate()
        .map(|(rank, c)| vec![rank.to_string(), c.to_string()])
        .collect();
    write_csv(
        &sizes.out_dir.join("fig3b_longtail.csv"),
        "rank,count",
        &rows,
    );

    println!("\nFig 3b — label distribution over optimal design points");
    println!("  distinct optima      : {}", hist.num_distinct());
    println!(
        "  head-10 coverage     : {:.1}%",
        100.0 * hist.head_coverage(10)
    );
    println!("  imbalance (max/min)  : {:.0}x", hist.imbalance_factor());
    println!(
        "  entropy              : {:.2} bits (uniform would be {:.2})",
        hist.entropy_bits(),
        (hist.num_distinct() as f64).log2()
    );
    println!(
        "  top counts (log-scale series): {:?}",
        &counts[..counts.len().min(15)]
    );
    println!("\npaper reference: markedly long-tailed — a few design points dominate");
}
