//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the AIrchitect v2 paper.
//!
//! Each binary (`table2`, `table3`, `fig3` … `fig9`) prints the same rows
//! or series the paper reports and writes CSV files under `results/`.
//! All binaries accept:
//!
//! * `--samples N` — dataset size (default 6000; the paper used 100 K),
//! * `--full` — the paper's full schedule (100 K samples, 500 + 100
//!   epochs); hours of CPU time,
//! * `--quick` — smoke-test sizes for CI,
//! * `--out DIR` — output directory (default `results/`).
//!
//! Datasets are cached as JSON per (size, seed) so consecutive binaries
//! reuse the same corpus.

pub mod plot;
pub mod queries;

use serde::{Deserialize, Serialize};

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ai2_baselines::{AirchitectV1, Gandse, GandseConfig, V1Config, Vaesa, VaesaConfig};
use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig};
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelConfig};

/// The machine-readable result record the `loadgen` binary writes with
/// `--json` and the `bench_gate` binary reads back — the CI perf
/// trajectory artifact.
///
/// Besides the latency numbers, the record carries the **configuration
/// the numbers were measured under** (backend, shard count, kernel,
/// model version): a regression gate that compares a 4-shard systolic
/// run against a 1-shard analytic baseline — or an AVX2 run against a
/// scalar baseline — would report noise, not regressions, so the
/// `bench_gate` binary refuses mismatched configurations instead of
/// comparing their numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenResult {
    /// Successfully answered requests.
    pub requests: u64,
    /// Requests that expired client-side (only with `--deadline-ms`).
    pub deadline_expired: u64,
    /// Wall-clock of the whole run, seconds.
    pub elapsed_s: f64,
    /// Client-observed requests per second.
    pub client_rps: f64,
    /// Client-observed median latency, microseconds.
    pub p50_us: f64,
    /// Client-observed 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// Client-observed 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// The server's own served counter after the run.
    pub server_served: u64,
    /// The server's response-cache hits after the run.
    pub server_cache_hits: u64,
    /// Cost backend every query requested (`"analytic"` when none was
    /// passed — the server default).
    pub backend: String,
    /// Recommendation pipeline every GEMM query selected (`--pipeline`).
    /// `None` — including on records written before pipelines existed —
    /// means the server's built-in `"default"` and is matched as such.
    /// Part of the configuration identity `bench_gate` refuses to mix:
    /// a staged predict → refine → verify run does strictly more work
    /// per query than a one-shot run, so comparing across pipelines
    /// reports workload differences, not regressions.
    pub pipeline: Option<String>,
    /// Worker shards the server ran.
    pub shards: usize,
    /// Inference kernel the numbers were measured under: the server's
    /// active SIMD level (`"scalar"` / `"sse2"` / `"avx2"`), or
    /// `"quantized"` when any shard served the int8 decoder flavor.
    /// Baselines written before kernel dispatch existed need
    /// regenerating — their numbers were all-scalar and are not
    /// comparable to a dispatched build's.
    pub kernel: String,
    /// Model lineage version live when the run finished.
    pub model_version: u64,
    /// Whether this run performed a live checkpoint swap mid-load
    /// (`--refresh`).
    pub swapped: bool,
    /// Requests the server refused inline under its shed admission
    /// policy (`ServeConfig::overload`); the client counts the
    /// `"shedding"` error responses. `None` on records written before
    /// admission control existed.
    pub sheds: Option<u64>,
    /// Connections the run held open (`--connections`, defaulting to
    /// `--concurrency`). `None` on records written before the
    /// connection-scale modes existed.
    pub connections: Option<u64>,
    /// Whether the run fired open-loop (`--open-loop`: every request
    /// written before any response is read). Open-loop latency numbers
    /// measure queueing, not service time — `bench_gate` must not
    /// compare them against closed-loop baselines. `None` means closed
    /// loop (records predate the flag).
    pub open_loop: Option<bool>,
    /// Whether server-side tracing was enabled for the run
    /// (`--trace`). `None` on records written before the field existed.
    /// Deliberately **not** part of the configuration identity
    /// `bench_gate` matches on: comparing a traced run against an
    /// untraced baseline is exactly the tracing-overhead gate.
    pub traced: Option<bool>,
    /// Worker connection attempts that never reached the server (TCP
    /// connect refused/timed out). Counted apart from request failures:
    /// a connect that never sent a request must not dilute the
    /// request-level latency percentiles or failure counts. `None` on
    /// records written before the split existed.
    pub connect_failures: Option<u64>,
}

/// One measured point of the `connscale` benchmark: a front end holding
/// `connections` mostly-idle connections while a small closed-loop mix
/// stays active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnscaleRow {
    /// `"threads"` or `"event"`.
    pub frontend: String,
    /// Open connections held during the measurement (idle + active).
    pub connections: u64,
    /// Server process threads before any connection was opened.
    pub baseline_threads: u64,
    /// Server process threads with every connection open — the claim
    /// under test: O(connections) for the threaded front end,
    /// O(event-loop threads) for the event front end.
    pub resident_threads: u64,
    /// Closed-loop median latency of the active mix, microseconds.
    pub p50_us: f64,
    /// Closed-loop 95th-percentile latency of the active mix,
    /// microseconds.
    pub p95_us: f64,
}

/// The `BENCH_connscale.json` artifact the `connscale` binary writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnscaleResult {
    /// Event-loop threads the event front end ran.
    pub event_threads: u64,
    /// Connection counts the threaded front end was capped to (thread
    ///-per-connection at five figures is the failure mode, not a
    /// measurement).
    pub threaded_cap: u64,
    /// All measured points.
    pub rows: Vec<ConnscaleRow>,
}

/// Experiment sizing parsed from the command line.
#[derive(Debug, Clone)]
pub struct Sizes {
    /// Dataset size.
    pub samples: usize,
    /// Stage-1 epochs for AIrchitect v2.
    pub stage1_epochs: usize,
    /// Stage-2 epochs for AIrchitect v2.
    pub stage2_epochs: usize,
    /// Epochs for single-stage baselines.
    pub baseline_epochs: usize,
    /// Output directory.
    pub out_dir: PathBuf,
    /// Dataset / split seed.
    pub seed: u64,
}

impl Default for Sizes {
    fn default() -> Self {
        Sizes {
            samples: 6000,
            stage1_epochs: 60,
            stage2_epochs: 80,
            baseline_epochs: 60,
            out_dir: PathBuf::from("results"),
            seed: 0xA12C,
        }
    }
}

impl Sizes {
    /// Parses `--samples`, `--full`, `--quick`, `--out`, `--seed` from
    /// `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Sizes {
        let mut s = Sizes::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    s.samples = 100_000;
                    s.stage1_epochs = 500;
                    s.stage2_epochs = 100;
                    s.baseline_epochs = 300;
                }
                "--quick" => {
                    s.samples = 800;
                    s.stage1_epochs = 12;
                    s.stage2_epochs = 16;
                    s.baseline_epochs = 12;
                }
                "--samples" => {
                    i += 1;
                    s.samples = args[i].parse().expect("--samples takes a number");
                }
                "--seed" => {
                    i += 1;
                    s.seed = args[i].parse().expect("--seed takes a number");
                }
                "--out" => {
                    i += 1;
                    s.out_dir = PathBuf::from(&args[i]);
                }
                other => panic!(
                    "unknown argument {other:?} (expected --samples N | --full | --quick | --out DIR | --seed N)"
                ),
            }
            i += 1;
        }
        s
    }

    /// The v2 training configuration at this size.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            stage1_epochs: self.stage1_epochs,
            stage2_epochs: self.stage2_epochs,
            ..TrainConfig::default()
        }
    }

    /// The v1 baseline configuration at this size.
    pub fn v1_config(&self) -> V1Config {
        V1Config {
            epochs: self.baseline_epochs,
            ..V1Config::default()
        }
    }

    /// The GANDSE baseline configuration at this size.
    pub fn gandse_config(&self) -> GandseConfig {
        GandseConfig {
            epochs: self.baseline_epochs,
            ..GandseConfig::default()
        }
    }

    /// The VAESA baseline configuration at this size.
    pub fn vaesa_config(&self) -> VaesaConfig {
        VaesaConfig {
            epochs: self.baseline_epochs,
            ..VaesaConfig::default()
        }
    }
}

/// The default DSE task of every experiment (Table I space, latency
/// objective, edge budget).
pub fn default_task() -> DseTask {
    DseTask::table_i_default()
}

/// One shared [`EvalEngine`] over the default task: every binary builds
/// exactly one and routes all dataset generation, training metrics,
/// deployment and figure sweeps through it, so identical cost queries
/// across those stages are answered from cache.
pub fn default_engine() -> Arc<EvalEngine> {
    EvalEngine::shared(default_task())
}

/// Generates (or loads a cached copy of) the experiment dataset through
/// the shared engine.
pub fn load_or_generate(engine: &EvalEngine, sizes: &Sizes) -> DseDataset {
    fs::create_dir_all(&sizes.out_dir).expect("create results dir");
    let cache = sizes
        .out_dir
        .join(format!("dataset_{}_{:x}.json", sizes.samples, sizes.seed));
    if let Ok(ds) = DseDataset::load(&cache) {
        if ds.len() == sizes.samples {
            eprintln!("[harness] reusing cached dataset {}", cache.display());
            return ds;
        }
    }
    eprintln!(
        "[harness] generating {} samples (oracle labels over the 768-point grid)…",
        sizes.samples
    );
    let ds = DseDataset::generate_with(
        engine,
        &GenerateConfig {
            num_samples: sizes.samples,
            seed: sizes.seed,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    ds.save(&cache).expect("cache dataset");
    ds
}

/// Trains AIrchitect v2 with the standard config at the given sizes.
pub fn train_v2(engine: &Arc<EvalEngine>, train: &DseDataset, sizes: &Sizes) -> Airchitect2 {
    let mut model = Airchitect2::with_engine(&ModelConfig::default(), Arc::clone(engine), train);
    let cfg = sizes.train_config();
    eprintln!(
        "[harness] training AIrchitect v2 ({} + {} epochs on {} samples)…",
        cfg.stage1_epochs,
        cfg.stage2_epochs,
        train.len()
    );
    model.fit(train, &cfg);
    model
}

/// Trains the AIrchitect v1 baseline.
pub fn train_v1(engine: &Arc<EvalEngine>, train: &DseDataset, sizes: &Sizes) -> AirchitectV1 {
    let mut v1 = AirchitectV1::with_engine(&sizes.v1_config(), Arc::clone(engine), train);
    eprintln!("[harness] training AIrchitect v1…");
    v1.fit(train);
    v1
}

/// Trains the GANDSE baseline.
pub fn train_gandse(engine: &Arc<EvalEngine>, train: &DseDataset, sizes: &Sizes) -> Gandse {
    let mut gan = Gandse::with_engine(&sizes.gandse_config(), Arc::clone(engine), train);
    eprintln!("[harness] training GANDSE…");
    gan.fit(train);
    gan
}

/// Trains the VAESA baseline.
pub fn train_vaesa(engine: &Arc<EvalEngine>, train: &DseDataset, sizes: &Sizes) -> Vaesa {
    let mut vae = Vaesa::with_engine(&sizes.vaesa_config(), Arc::clone(engine), train);
    eprintln!("[harness] training VAESA…");
    vae.fit(train);
    vae
}

/// Writes a CSV file with a header row.
///
/// # Panics
///
/// Panics if the file cannot be written (experiment binaries want loud
/// failures).
pub fn write_csv(path: &Path, header: &str, rows: &[Vec<String>]) {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create csv dir");
    }
    let mut out = String::new();
    writeln!(out, "{header}").expect("write header");
    for row in rows {
        writeln!(out, "{}", row.join(",")).expect("write row");
    }
    fs::write(path, out).expect("write csv");
    eprintln!("[harness] wrote {}", path.display());
}

/// Renders an aligned two-column table to stdout.
pub fn print_table(title: &str, header: (&str, &str), rows: &[(String, String)]) {
    println!("\n{title}");
    println!("{:<28} {:>14}", header.0, header.1);
    println!("{}", "-".repeat(44));
    for (a, b) in rows {
        println!("{a:<28} {b:>14}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_are_sane() {
        let s = Sizes::default();
        assert!(s.samples >= 1000);
        assert!(s.stage1_epochs > 0 && s.stage2_epochs > 0);
    }

    #[test]
    fn csv_writer_produces_parseable_output() {
        let dir = std::env::temp_dir().join("ai2_bench_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            "a,b",
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let body = fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.starts_with("a,b"));
        fs::remove_file(path).ok();
    }

    #[test]
    fn dataset_cache_roundtrip() {
        let engine = default_engine();
        let sizes = Sizes {
            samples: 20,
            out_dir: std::env::temp_dir().join("ai2_bench_cache_test"),
            ..Sizes::default()
        };
        let a = load_or_generate(&engine, &sizes);
        let b = load_or_generate(&engine, &sizes); // from cache
        assert_eq!(a, b);
        fs::remove_dir_all(&sizes.out_dir).ok();
    }
}
