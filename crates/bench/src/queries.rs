//! Deterministic query builders shared by the closed-loop load
//! generator (`loadgen`) and the deterministic simulation harness
//! (`ai2_simtest`).
//!
//! One function, one contract: query `n` is always the same request —
//! same GEMM dimensions, same dataflow, same objective — no matter who
//! builds it or when. The loadgen walks `n` sequentially to sweep the
//! space; the simulation harness draws `n` from a seeded RNG over a
//! small universe so canonical repeats (cache hits, cross-swap
//! re-asks) are guaranteed.

use ai2_serve::{Query, RecommendRequest};

/// Zoo models the `--models` mix cycles through.
pub const ZOO_MIX: [&str; 4] = ["resnet18", "resnet50", "bert_base", "mobilenet_v2"];

/// Deterministic query mix: GEMM dims sweep the Table I ranges across
/// all three objectives; every fourth query (starting with the second)
/// is a zoo model when `models` is on — so a two-request smoke run
/// covers one GEMM and one whole-model query.
pub fn nth_query(
    n: u64,
    models: bool,
    deadline_ms: Option<u64>,
    backend: Option<&str>,
    pipeline: Option<&str>,
) -> RecommendRequest {
    const OBJECTIVES: [ai2_dse::Objective; 3] = [
        ai2_dse::Objective::Latency,
        ai2_dse::Objective::Energy,
        ai2_dse::Objective::Edp,
    ];
    const DATAFLOWS: [&str; 3] = ["ws", "os", "rs"];
    let query = if models && n % 4 == 1 {
        Query::Model {
            name: ZOO_MIX[(n / 4) as usize % ZOO_MIX.len()].to_string(),
        }
    } else {
        Query::Gemm {
            m: 1 + (n * 37) % 256,
            n: 1 + (n * 131) % 1677,
            k: 1 + (n * 89) % 1185,
            dataflow: DATAFLOWS[n as usize % 3].to_string(),
        }
    };
    // staged pipelines apply to GEMM queries only; a model query keeps
    // its default pipeline so `--pipeline` mixes stay servable
    let pipeline = match &query {
        Query::Gemm { .. } => pipeline.map(str::to_string),
        Query::Model { .. } => None,
    };
    RecommendRequest {
        id: n,
        query,
        objective: OBJECTIVES[(n / 2) as usize % 3],
        budget: ai2_dse::Budget::Edge,
        deadline_ms,
        backend: backend.map(str::to_string),
        pipeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_query_is_a_pure_function_of_n() {
        for n in 0..64 {
            let a = nth_query(n, true, Some(5), Some("systolic"), Some("staged"));
            let b = nth_query(n, true, Some(5), Some("systolic"), Some("staged"));
            assert_eq!(a, b, "query {n} must be deterministic");
            assert_eq!(a.id, n);
            // pipelines ride on GEMM queries only
            match &a.query {
                Query::Gemm { .. } => assert_eq!(a.pipeline.as_deref(), Some("staged")),
                Query::Model { .. } => assert_eq!(a.pipeline, None),
            }
        }
    }

    #[test]
    fn the_mix_covers_models_objectives_and_dataflows() {
        let reqs: Vec<RecommendRequest> = (0..24)
            .map(|n| nth_query(n, true, None, None, None))
            .collect();
        let model_names: Vec<&str> = reqs
            .iter()
            .filter_map(|r| match &r.query {
                Query::Model { name } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert!(
            ZOO_MIX.iter().all(|z| model_names.contains(z)),
            "24 queries must cycle through the whole zoo mix: {model_names:?}"
        );
        for objective in [
            ai2_dse::Objective::Latency,
            ai2_dse::Objective::Energy,
            ai2_dse::Objective::Edp,
        ] {
            assert!(reqs.iter().any(|r| r.objective == objective));
        }
        // all dims are ≥ 1 (a zero dim would be rejected server-side)
        for r in &reqs {
            if let Query::Gemm { m, n, k, .. } = &r.query {
                assert!(*m >= 1 && *n >= 1 && *k >= 1);
            }
        }
        // without the models flag everything is a GEMM
        assert!((0..24)
            .map(|n| nth_query(n, false, None, None, None))
            .all(|r| matches!(r.query, Query::Gemm { .. })));
    }
}
