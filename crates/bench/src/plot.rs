//! Minimal ASCII rendering for experiment binaries: the paper's figures
//! as terminal sketches, so `cargo run --bin figX` shows the shape
//! without leaving the shell.

/// Renders a log-scale bar chart of descending counts (Fig. 3b style).
pub fn ascii_log_bars(counts: &[usize], max_rows: usize) -> String {
    let mut out = String::new();
    let max = counts.first().copied().unwrap_or(1).max(1) as f64;
    for (i, &c) in counts.iter().take(max_rows).enumerate() {
        let frac = ((c.max(1) as f64).ln() / max.ln()).max(0.0);
        let width = (frac * 50.0).round() as usize;
        out.push_str(&format!("{i:>4} | {:<50} {c}\n", "█".repeat(width)));
    }
    if counts.len() > max_rows {
        out.push_str(&format!("     … {} more labels\n", counts.len() - max_rows));
    }
    out
}

/// Renders an x/y series as a sparkline (best-so-far traces, Fig. 8a
/// style). Values are min-max normalised; `levels` characters code the
/// height.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi - lo < 1e-12 {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return ' ';
            }
            let t = (v - lo) / (hi - lo);
            LEVELS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Renders a 2-D scatter as a character grid (Fig. 4/5 style); `label`
/// maps each point to a glyph class (0..36 → '0'..'9a'..'z').
pub fn ascii_scatter(
    xs: &[f32],
    ys: &[f32],
    labels: &[u32],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(xs.len(), ys.len());
    assert_eq!(xs.len(), labels.len());
    let glyph = |l: u32| -> char {
        let l = (l % 36) as u8;
        if l < 10 {
            (b'0' + l) as char
        } else {
            (b'a' + l - 10) as char
        }
    };
    let (mut xlo, mut xhi, mut ylo, mut yhi) = (f32::MAX, f32::MIN, f32::MAX, f32::MIN);
    for (&x, &y) in xs.iter().zip(ys) {
        xlo = xlo.min(x);
        xhi = xhi.max(x);
        ylo = ylo.min(y);
        yhi = yhi.max(y);
    }
    let mut grid = vec![vec![' '; width]; height];
    for ((&x, &y), &l) in xs.iter().zip(ys).zip(labels) {
        let cx = (((x - xlo) / (xhi - xlo).max(1e-9)) * (width - 1) as f32).round() as usize;
        let cy = (((y - ylo) / (yhi - ylo).max(1e-9)) * (height - 1) as f32).round() as usize;
        grid[height - 1 - cy][cx] = glyph(l);
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_render_and_truncate() {
        let s = ascii_log_bars(&[100, 10, 1, 1, 1], 3);
        assert!(s.contains("100"));
        assert!(s.contains("… 2 more"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn sparkline_monotone_series() {
        let s = sparkline(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_constant_is_flat() {
        assert_eq!(sparkline(&[3.0, 3.0, 3.0]), "▁▁▁");
    }

    #[test]
    fn scatter_places_extremes() {
        let s = ascii_scatter(&[0.0, 1.0], &[0.0, 1.0], &[0, 1], 10, 5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains('1')); // top-right
        assert!(lines[4].contains('0')); // bottom-left
    }
}
