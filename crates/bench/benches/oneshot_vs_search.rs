//! Criterion bench: the paper's headline motivation (Fig. 1) — one-shot
//! learned inference vs iterative search-based DSE. AIrchitect v2
//! answers in one forward pass; ConfuciuX/GAMMA/BO burn hundreds of cost
//! model queries per workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_dse::search::{bo::BoSearcher, ConfuciuxSearcher, GammaSearcher, RandomSearcher, Searcher};
use ai2_dse::{DseDataset, DseTask, EvalEngine, GenerateConfig};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelConfig};

fn bench_oneshot_vs_search(c: &mut Criterion) {
    let engine = EvalEngine::shared(DseTask::table_i_default());
    let ds = DseDataset::generate_with(
        &engine,
        &GenerateConfig {
            num_samples: 400,
            seed: 5,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let mut model =
        Airchitect2::with_engine(&ModelConfig::default(), std::sync::Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    let input = DseInput {
        gemm: GemmWorkload::new(48, 400, 300),
        dataflow: Dataflow::OutputStationary,
    };

    // Searchers get a fresh, cache-less engine per iteration: this bench
    // measures the *search cost* of the paper's Fig. 1 comparison (every
    // cost-model query actually computed), not cache-replay time. The
    // memoization payoff is measured separately in benches/eval_engine.rs.
    let cold = || EvalEngine::with_threads(DseTask::table_i_default(), 1).with_grid_capacity(0);

    let mut group = c.benchmark_group("dse_per_workload");
    group.bench_function("airchitect_v2_oneshot", |b| {
        b.iter(|| black_box(model.predict(black_box(&[input]))))
    });
    group.bench_function("random_200evals", |b| {
        b.iter(|| black_box(RandomSearcher::new(1).search(&cold(), input, 200)))
    });
    group.bench_function("gamma_ga_200evals", |b| {
        b.iter(|| black_box(GammaSearcher::new(1).search(&cold(), input, 200)))
    });
    group.bench_function("confuciux_200evals", |b| {
        b.iter(|| black_box(ConfuciuxSearcher::new(1).search(&cold(), input, 200)))
    });
    group.bench_function("bayesian_opt_60evals", |b| {
        b.iter(|| black_box(BoSearcher::new(1).search(&cold(), input, 60)))
    });
    group.finish();
}

criterion_group!(benches, bench_oneshot_vs_search);
criterion_main!(benches);
