//! Criterion bench: the two cost backends side by side behind one
//! [`EvalEngine`] interface.
//!
//! * `point/{analytic,systolic}` — single raw-cost evaluations through a
//!   warm engine (the serving hot path per backend).
//! * `oracle_cold/{analytic,systolic}` — a full 768-point grid label on
//!   a fresh engine: what one dataset-generation sample costs per
//!   backend. The systolic backend's closed-form schedule accounting is
//!   what keeps this in the same order of magnitude as the analytic
//!   sweep instead of minutes of cycle stepping.
//! * `oracle_warm/{analytic,systolic}` — the same query answered from
//!   each engine's own oracle cache (caches are per-engine, so each
//!   backend pays its own cold sweep exactly once).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_dse::{BackendId, DesignPoint, DseTask, EvalEngine};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;

fn engines() -> [(&'static str, EvalEngine); 2] {
    [
        (
            "analytic",
            EvalEngine::for_backend(DseTask::table_i_default(), BackendId::Analytic),
        ),
        (
            "systolic",
            EvalEngine::for_backend(DseTask::table_i_default(), BackendId::Systolic),
        ),
    ]
}

fn bench_backend_parity(c: &mut Criterion) {
    let input = DseInput {
        gemm: GemmWorkload::new(96, 800, 400),
        dataflow: Dataflow::OutputStationary,
    };
    let point = DesignPoint {
        pe_idx: 20,
        buf_idx: 6,
    };

    let mut group = c.benchmark_group("point");
    for (name, engine) in engines() {
        engine.score_unchecked(&input, point); // warm the grid cell
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.score_unchecked(black_box(&input), point)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("oracle_cold");
    for (name, id) in [
        ("analytic", BackendId::Analytic),
        ("systolic", BackendId::Systolic),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let engine = EvalEngine::for_backend(DseTask::table_i_default(), id);
                black_box(engine.oracle(black_box(&input)))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("oracle_warm");
    for (name, engine) in engines() {
        engine.oracle(&input); // prime each backend's own cache
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.oracle(black_box(&input))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backend_parity);
criterion_main!(benches);
