//! Self-timed kernel microbenchmarks: scalar vs the best detected SIMD
//! level vs the int8 quantized path, over serving-relevant GEMM shapes.
//!
//! Unlike the other benches this one bypasses the vendored criterion
//! shim entirely: it needs per-iteration samples to report p50/p95 and
//! a machine-readable artifact, so it times each case itself (same
//! `AI2_BENCH_BUDGET_MS` / `AI2_BENCH_MIN_ITERS` knobs) and writes
//! `results/BENCH_kernels.json` — the record the CI `kernel-parity`
//! job uploads and the "SIMD is actually ≥ 2× on this machine" claim
//! is checked against.
//!
//! Cases:
//!
//! * `gemm_nt/<m>x<k>x<n>/<kernel>` — the serving hot path's GEMM
//!   (row-major × transposed weights) at micro-batch shapes, per
//!   kernel level the machine supports,
//! * `matvec/<m>x<k>/<kernel>` — the batch-of-one decode,
//! * `gemm_nt_i8/<m>x<k>x<n>` — the same contraction over the int8
//!   decoder flavor's per-row dot products (kernel-dispatched
//!   `dot_i8`).
//!
//! With `AI2_KERNELS_MIN_SPEEDUP=X` the process exits non-zero when
//! the worst per-shape p95 speedup of the best SIMD level over scalar
//! falls below `X` — skipped (with a note) when the machine has no
//! SIMD level above scalar, where the ratio is 1.0 by construction.

use std::time::Instant;

use ai2_tensor::kernel::{self, Kernel};
use ai2_tensor::rng;
use ai2_tensor::stats::percentile;

/// Serving micro-batch GEMM shapes `(m, k, n)`: batch-of-8 through
/// batch-of-64 rows against decoder-sized weight panels.
const GEMM_SHAPES: [(usize, usize, usize); 3] = [(8, 64, 64), (32, 128, 128), (64, 256, 256)];

/// Batch-of-one decode shapes `(m, k)`.
const MATVEC_SHAPES: [(usize, usize); 2] = [(64, 64), (256, 256)];

struct Case {
    name: String,
    iters: usize,
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
}

fn budget_ms() -> u64 {
    std::env::var("AI2_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn min_iters() -> usize {
    std::env::var("AI2_BENCH_MIN_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Times `f` until the budget runs out (but at least `min_iters`
/// samples) and reports per-iteration percentiles.
fn time_case(name: String, mut f: impl FnMut()) -> Case {
    // one untimed warmup pass settles caches and page faults
    f();
    let budget = std::time::Duration::from_millis(budget_ms());
    let floor = min_iters();
    let mut samples = Vec::new();
    let started = Instant::now();
    while samples.len() < floor || started.elapsed() < budget {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        if samples.len() >= 1_000_000 {
            break;
        }
    }
    let case = Case {
        p50_us: percentile(&samples, 50.0),
        p95_us: percentile(&samples, 95.0),
        mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
        iters: samples.len(),
        name,
    };
    println!(
        "kernels/{:<28} mean {:>9.2}µs p50 {:>9.2}µs p95 {:>9.2}µs ({} iters)",
        case.name, case.mean_us, case.p50_us, case.p95_us, case.iters
    );
    case
}

fn available_kernels() -> Vec<Kernel> {
    Kernel::ALL
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

fn main() {
    let best = kernel::best_available();
    let mut r = rng::seeded(0x5EED_C0DE);
    let mut cases: Vec<Case> = Vec::new();

    for &(m, k, n) in &GEMM_SHAPES {
        let a = rng::rand_uniform(&mut r, &[m, k], -1.0, 1.0);
        let b = rng::rand_uniform(&mut r, &[n, k], -1.0, 1.0);
        let mut out = vec![0.0f32; m * n];
        // cross-kernel sanity: every level must compute the same GEMM
        let mut reference = vec![0.0f32; m * n];
        kernel::gemm_nt(
            Kernel::Scalar,
            a.as_slice(),
            b.as_slice(),
            &mut reference,
            m,
            k,
            n,
        );
        for kn in available_kernels() {
            // the kernels accumulate (out += a·bᵀ), so every call
            // starts from zeros — both in the sanity check and in the
            // timed body, exactly as the layers consume them
            out.fill(0.0);
            kernel::gemm_nt(kn, a.as_slice(), b.as_slice(), &mut out, m, k, n);
            let max_diff = out
                .iter()
                .zip(&reference)
                .map(|(x, y)| (x - y).abs() as f64)
                .fold(0.0, f64::max);
            assert!(
                max_diff <= 1e-3,
                "{kn:?} disagrees with scalar by {max_diff:e} on {m}x{k}x{n}"
            );
            cases.push(time_case(
                format!("gemm_nt/{m}x{k}x{n}/{}", kn.name()),
                || {
                    out.fill(0.0);
                    kernel::gemm_nt(kn, a.as_slice(), b.as_slice(), &mut out, m, k, n);
                    std::hint::black_box(&out);
                },
            ));
        }

        // the int8 decoder flavor's contraction: per-row dot_i8 + scale,
        // exactly how the quantized linear layer consumes the blob
        let qa: Vec<i8> = a.as_slice().iter().map(|x| (x * 127.0) as i8).collect();
        let qb: Vec<i8> = b.as_slice().iter().map(|x| (x * 127.0) as i8).collect();
        let scale = 1.0f32 / (127.0 * 127.0);
        cases.push(time_case(format!("gemm_nt_i8/{m}x{k}x{n}"), || {
            for i in 0..m {
                for j in 0..n {
                    out[i * n + j] =
                        kernel::dot_i8(best, &qa[i * k..(i + 1) * k], &qb[j * k..(j + 1) * k])
                            as f32
                            * scale;
                }
            }
            std::hint::black_box(&out);
        }));
    }

    for &(m, k) in &MATVEC_SHAPES {
        let a = rng::rand_uniform(&mut r, &[m, k], -1.0, 1.0);
        let v = rng::rand_uniform(&mut r, &[1, k], -1.0, 1.0);
        let mut out = vec![0.0f32; m];
        for kn in available_kernels() {
            cases.push(time_case(format!("matvec/{m}x{k}/{}", kn.name()), || {
                out.fill(0.0);
                kernel::matvec(kn, a.as_slice(), v.as_slice(), &mut out, m, k);
                std::hint::black_box(&out);
            }));
        }
    }

    // -- p95 speedup of the best SIMD level over scalar, per shape ----
    let p95 = |name: &str| cases.iter().find(|c| c.name == name).map(|c| c.p95_us);
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for &(m, k, n) in &GEMM_SHAPES {
        let scalar = p95(&format!("gemm_nt/{m}x{k}x{n}/scalar"));
        let simd = p95(&format!("gemm_nt/{m}x{k}x{n}/{}", best.name()));
        if let (Some(s), Some(b)) = (scalar, simd) {
            speedups.push((format!("gemm_nt/{m}x{k}x{n}"), s / b));
        }
    }
    let min_speedup = speedups
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    for (shape, s) in &speedups {
        println!(
            "kernels: {shape} p95 speedup {}/scalar = {s:.2}x",
            best.name()
        );
    }

    let entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "{{\"name\":\"{}\",\"iters\":{},\"mean_us\":{:.3},\"p50_us\":{:.3},\"p95_us\":{:.3}}}",
                c.name, c.iters, c.mean_us, c.p50_us, c.p95_us
            )
        })
        .collect();
    let speedup_rows: Vec<String> = speedups
        .iter()
        .map(|(shape, s)| format!("\"{shape}\":{s:.3}"))
        .collect();
    let body = format!(
        "{{\"best_kernel\":\"{}\",\"gemm_p95_speedup\":{{{}}},\"min_gemm_p95_speedup\":{:.3},\"cases\":[{}]}}",
        best.name(),
        speedup_rows.join(","),
        min_speedup,
        entries.join(",")
    );
    // cargo bench runs with the package as CWD — anchor the artifact
    // to the workspace-root results/ dir the CI job uploads from
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let path = out.join("BENCH_kernels.json");
    std::fs::write(&path, body).expect("write BENCH_kernels.json");
    println!("KERNELS_JSON={}", path.display());

    if let Some(floor) = std::env::var("AI2_KERNELS_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if best == Kernel::Scalar {
            eprintln!(
                "[kernels] no SIMD level above scalar on this machine — speedup floor skipped"
            );
        } else if min_speedup < floor {
            eprintln!(
                "[kernels] FAIL: min gemm p95 speedup {min_speedup:.2}x below the {floor}x floor"
            );
            std::process::exit(1);
        } else {
            eprintln!("[kernels] min gemm p95 speedup {min_speedup:.2}x ≥ {floor}x floor");
        }
    }
}
