//! Criterion bench: the [`EvalEngine`] memoization payoff.
//!
//! * `oracle/cold_sweep` vs `oracle/warm_cache` — the full 768-point grid
//!   label vs the same query answered from the oracle cache. The warm
//!   path must be ≥ 2× faster (in practice it is orders of magnitude).
//! * `search/direct_task_equivalent_cold` vs `search/engine_warm` — a
//!   GAMMA search run scored point-by-point with nothing shared between
//!   runs (the pre-engine cost profile) vs one whose grid cache already
//!   holds the workload, the hot path of every search-vs-learning figure.
//! * `deployment/model_latency_batch_*` — fan-out of candidate
//!   configurations over the shared pool, cold vs warm.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_dse::search::{GammaSearcher, Searcher};
use ai2_dse::{DseTask, EvalEngine};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;
use ai2_workloads::zoo;

fn bench_eval_engine(c: &mut Criterion) {
    let input = DseInput {
        gemm: GemmWorkload::new(96, 800, 400),
        dataflow: Dataflow::OutputStationary,
    };

    let mut group = c.benchmark_group("oracle");
    group.bench_function("direct_dse_task", |b| {
        let task = DseTask::table_i_default();
        b.iter(|| black_box(task.oracle(black_box(&input))))
    });
    group.bench_function("cold_sweep", |b| {
        // a fresh engine per iteration: full grid sweep every time
        b.iter(|| {
            let engine = EvalEngine::with_threads(DseTask::table_i_default(), 1);
            black_box(engine.oracle(black_box(&input)))
        })
    });
    group.bench_function("warm_cache", |b| {
        let engine = EvalEngine::table_i_default();
        engine.oracle(&input); // prime
        b.iter(|| black_box(engine.oracle(black_box(&input))))
    });
    group.finish();

    let mut group = c.benchmark_group("search");
    group.bench_function("direct_task_equivalent_cold", |b| {
        // fresh uncached engine per run ≈ the pre-engine cost profile
        // (every query recomputed, nothing shared between runs)
        b.iter(|| {
            let engine =
                EvalEngine::with_threads(DseTask::table_i_default(), 1).with_grid_capacity(0);
            black_box(GammaSearcher::new(1).search(&engine, input, 200))
        })
    });
    group.bench_function("engine_warm", |b| {
        let engine = EvalEngine::table_i_default();
        GammaSearcher::new(1).search(&engine, input, 200); // prime
        b.iter(|| black_box(GammaSearcher::new(1).search(&engine, input, 200)))
    });
    group.finish();

    let mut group = c.benchmark_group("deployment");
    let engine = EvalEngine::table_i_default();
    let layers = zoo::resnet18().to_dse_layers();
    let points: Vec<_> = engine.space().iter_points().step_by(48).collect();
    group.bench_function("model_latency_batch_cold", |b| {
        b.iter(|| {
            let fresh = EvalEngine::table_i_default();
            black_box(fresh.model_latency_batch(&layers, &points))
        })
    });
    group.bench_function("model_latency_batch_warm", |b| {
        engine.model_latency_batch(&layers, &points); // prime
        b.iter(|| black_box(engine.model_latency_batch(&layers, &points)))
    });
    group.finish();
}

criterion_group!(benches, bench_eval_engine);
criterion_main!(benches);
