//! Criterion bench: the cost of a live model swap.
//!
//! * `swap/publish_validate_adopt` — one full in-process swap: validate
//!   the candidate checkpoint, publish it through the registry, and
//!   force a shard to adopt it by answering one cold query. This is the
//!   end-to-end latency an operator's `swap` admin line pays.
//! * `swap/serve_across_swaps` — a burst of 16 pipelined queries with a
//!   swap published in the middle: what steady-state traffic costs
//!   while the fleet is rolling replicas. Compare against the
//!   swap-free burst to read the swap overhead (one checkpoint restore
//!   per shard, amortised over the batch).
//! * `swap/burst16_no_swap` — the same burst without any swap, the
//!   control measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
use ai2_serve::{Query, RecommendRequest, RecommendService, Response, ServeConfig};
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelCheckpoint, ModelConfig};

fn trained_checkpoint() -> (Arc<EvalEngine>, ModelCheckpoint) {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 120,
            seed: 0xF1E5,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    (engine, model.checkpoint().with_version(1))
}

fn gemm(id: u64, m: u64) -> RecommendRequest {
    RecommendRequest {
        id,
        query: Query::Gemm {
            m,
            n: 1 + (id * 131) % 900,
            k: 1 + (id * 89) % 700,
            dataflow: ["ws", "os", "rs"][id as usize % 3].into(),
        },
        objective: [Objective::Latency, Objective::Energy, Objective::Edp][id as usize % 3],
        budget: Budget::Edge,
        deadline_ms: None,
        backend: None,
        pipeline: None,
    }
}

fn bench_refresh_swap(c: &mut Criterion) {
    let (engine, ckpt) = trained_checkpoint();

    let mut group = c.benchmark_group("swap");

    {
        let service = RecommendService::start(
            ServeConfig {
                shards: 1,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            Arc::clone(&engine),
            ckpt.clone(),
        );
        let client = service.client();
        let version = AtomicU64::new(2);
        let salt = AtomicU64::new(1);
        group.bench_function("publish_validate_adopt", |b| {
            b.iter(|| {
                let v = version.fetch_add(1, Ordering::Relaxed);
                service
                    .swap_checkpoint(ckpt.clone().with_version(v), false)
                    .expect("publish");
                // a cold query forces the shard through the rebuild path
                let s = salt.fetch_add(1, Ordering::Relaxed);
                let resp = client.recommend(gemm(s, 1 + s % 256));
                assert!(matches!(resp, Response::Recommendation(_)));
                black_box(resp)
            });
        });
        service.shutdown();
    }

    for (name, swap_every_iter) in [("burst16_no_swap", false), ("serve_across_swaps", true)] {
        let service = RecommendService::start(
            ServeConfig {
                shards: 2,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            Arc::clone(&engine),
            ckpt.clone(),
        );
        let client = service.client();
        let version = AtomicU64::new(2);
        let salt = AtomicU64::new(1_000_000);
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = salt.fetch_add(16, Ordering::Relaxed);
                let pending: Vec<_> = (0..8u64)
                    .map(|i| client.submit(gemm(s + i, 1 + (s + i) % 256)))
                    .collect();
                if swap_every_iter {
                    let v = version.fetch_add(1, Ordering::Relaxed);
                    service
                        .swap_checkpoint(ckpt.clone().with_version(v), false)
                        .expect("publish");
                }
                let tail: Vec<_> = (8..16u64)
                    .map(|i| client.submit(gemm(s + i, 1 + (s + i) % 256)))
                    .collect();
                for p in pending.into_iter().chain(tail) {
                    assert!(matches!(p.wait(), Response::Recommendation(_)));
                }
            });
        });
        service.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_refresh_swap);
criterion_main!(benches);
