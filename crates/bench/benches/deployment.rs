//! Criterion bench: model-level deployment (paper §III-E / Fig. 7) —
//! Method 1 and Method 2 selection over a whole network's layers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_dse::{DesignPoint, EvalEngine};
use ai2_workloads::generator::DseInput;
use ai2_workloads::zoo;
use airchitect::deploy::{method1, method2, model_latency};

fn bench_deployment(c: &mut Criterion) {
    let engine = EvalEngine::table_i_default();
    let resnet = zoo::resnet18().to_dse_layers();
    let bert = zoo::bert_base().to_dse_layers();
    // a cheap, deterministic recommender so the bench isolates the
    // deployment machinery rather than model inference
    let rec = |input: &DseInput| -> DesignPoint {
        let pe = ((input.gemm.m as usize * 7 + input.gemm.n as usize) % 60) + 2;
        DesignPoint {
            pe_idx: pe.min(63),
            buf_idx: (input.gemm.k as usize % 10) + 1,
        }
    };

    let mut group = c.benchmark_group("deployment");
    group.bench_function("method1/resnet18", |b| {
        b.iter(|| black_box(method1(&engine, black_box(&resnet), &rec)))
    });
    group.bench_function("method2/resnet18", |b| {
        b.iter(|| black_box(method2(&engine, black_box(&resnet), &rec)))
    });
    group.bench_function("method1/bert_base", |b| {
        b.iter(|| black_box(method1(&engine, black_box(&bert), &rec)))
    });
    let p = DesignPoint {
        pe_idx: 30,
        buf_idx: 7,
    };
    group.bench_function("model_latency/resnet18", |b| {
        b.iter(|| black_box(model_latency(&engine, black_box(&resnet), p)))
    });
    group.finish();
}

criterion_group!(benches, bench_deployment);
criterion_main!(benches);
