//! Criterion bench: the serving layer's scaling knobs.
//!
//! * `shards/burst64_shards{1,2,4}` — an open-loop burst of 64 mixed
//!   GEMM queries (all three objectives, cold canonical keys per
//!   iteration) pipelined through the admission queue, swept over the
//!   shard count. Shards split the backlog into fair-share micro-batches,
//!   so throughput rises with the shard count until the machine
//!   saturates. (On a single-core container the sweep is flat by
//!   construction — the shard threads have nowhere to run in parallel;
//!   the interesting read-out there is that sharding costs nothing.)
//! * `cache/warm_repeat` vs `cache/cold_unique` — the same query served
//!   from the LRU response cache vs a never-seen query paying a forward
//!   pass + engine verification; the warm path is the p50 a steady-state
//!   deployment sees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_dse::{Budget, DseDataset, DseTask, EvalEngine, GenerateConfig, Objective};
use ai2_serve::{Query, RecommendRequest, RecommendService, Response, ServeConfig};
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelCheckpoint, ModelConfig};

fn trained_checkpoint() -> (Arc<EvalEngine>, ModelCheckpoint) {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 120,
            seed: 0x5EE5,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let engine = EvalEngine::shared(task);
    let mut model = Airchitect2::with_engine(&ModelConfig::tiny(), Arc::clone(&engine), &ds);
    model.fit(&ds, &TrainConfig::quick());
    (engine, model.checkpoint())
}

fn gemm(id: u64, m: u64, n: u64, k: u64, objective: Objective) -> RecommendRequest {
    RecommendRequest {
        id,
        query: Query::Gemm {
            m,
            n,
            k,
            dataflow: ["ws", "os", "rs"][id as usize % 3].into(),
        },
        objective,
        budget: Budget::Edge,
        deadline_ms: None,
        backend: None,
        pipeline: None,
    }
}

fn bench_serving(c: &mut Criterion) {
    let (engine, ckpt) = trained_checkpoint();

    let mut group = c.benchmark_group("shards");
    for shards in [1usize, 2, 4] {
        let service = RecommendService::start(
            ServeConfig {
                shards,
                max_batch: 16,
                // cold keys per burst: measure compute, not the LRU
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            Arc::clone(&engine),
            ckpt.clone(),
        );
        // unique dims per iteration so every request misses every cache
        let salt = AtomicU64::new(1);
        let client = service.client();
        group.bench_function(format!("burst64_shards{shards}"), |b| {
            b.iter(|| {
                let s = salt.fetch_add(1, Ordering::Relaxed);
                let pending: Vec<_> = (0..64u64)
                    .map(|id| {
                        client.submit(gemm(
                            id,
                            1 + (s * 131 + id * 17) % 256,
                            1 + (s * 257 + id * 41) % 1677,
                            1 + (s * 389 + id * 29) % 1185,
                            [Objective::Latency, Objective::Energy, Objective::Edp]
                                [id as usize % 3],
                        ))
                    })
                    .collect();
                for p in pending {
                    let resp = p.wait();
                    assert!(matches!(resp, Response::Recommendation(_)));
                    black_box(resp);
                }
            })
        });
        service.shutdown();
    }
    group.finish();

    let mut group = c.benchmark_group("cache");
    let service = RecommendService::start(ServeConfig::default(), engine, ckpt);
    let client = service.client();
    client.recommend(gemm(0, 64, 512, 256, Objective::Latency)); // prime
    group.bench_function("warm_repeat", |b| {
        b.iter(|| black_box(client.recommend(gemm(1, 64, 512, 256, Objective::Latency))))
    });
    let salt = AtomicU64::new(1);
    group.bench_function("cold_unique", |b| {
        b.iter(|| {
            let s = salt.fetch_add(1, Ordering::Relaxed);
            black_box(client.recommend(gemm(
                2,
                1 + (s * 37) % 256,
                1 + (s * 113) % 1677,
                1 + (s * 59) % 1185,
                Objective::Latency,
            )))
        })
    });
    group.finish();
    service.shutdown();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
