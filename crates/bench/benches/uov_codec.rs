//! Criterion bench: UOV encode / decode (paper Algorithm 1 and its
//! reverse) across bucket counts — the representation cost behind
//! Figs. 8b and 9.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_uov::{ConfigCodec, OneHotCodec, UovCodec};

fn bench_uov(c: &mut Criterion) {
    let mut group = c.benchmark_group("uov");
    for k in [4usize, 16, 32] {
        let codec = UovCodec::new(k, 64);
        group.bench_function(format!("encode/k{k}"), |b| {
            b.iter(|| black_box(codec.encode(black_box(37))))
        });
        let v = codec.encode(37);
        group.bench_function(format!("decode/k{k}"), |b| {
            b.iter(|| black_box(codec.decode(black_box(&v))))
        });
    }
    let onehot = OneHotCodec::new(64);
    let v = onehot.encode(37);
    group.bench_function("onehot/decode", |b| {
        b.iter(|| black_box(onehot.decode(black_box(&v))))
    });
    group.finish();
}

criterion_group!(benches, bench_uov);
criterion_main!(benches);
