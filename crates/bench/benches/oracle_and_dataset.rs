//! Criterion bench: the exhaustive oracle (768-point grid per workload)
//! and dataset-generation throughput — the pipeline behind the paper's
//! 100 K-sample corpus (§IV-A) and Figs. 3/4.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use ai2_dse::{DseDataset, DseTask, GenerateConfig};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;

fn bench_oracle(c: &mut Criterion) {
    let task = DseTask::table_i_default();
    let input = DseInput {
        gemm: GemmWorkload::new(96, 800, 400),
        dataflow: Dataflow::OutputStationary,
    };
    c.bench_function("oracle/768_grid_label", |b| {
        b.iter(|| black_box(task.oracle(black_box(&input))))
    });

    c.bench_function("dataset/generate_64_samples", |b| {
        b.iter_batched(
            || GenerateConfig {
                num_samples: 64,
                seed: 1,
                threads: 1,
                ..GenerateConfig::default()
            },
            |cfg| black_box(DseDataset::generate(&task, &cfg)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
