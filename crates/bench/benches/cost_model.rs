//! Criterion bench: throughput of the MAESTRO-style cost model — the
//! substrate every experiment (and the oracle labeling of the dataset)
//! rests on. One evaluation must stay in the microsecond range for the
//! 768-point oracle grid to be practical.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_maestro::{AcceleratorConfig, CostModel, Dataflow, GemmWorkload};

fn bench_cost_model(c: &mut Criterion) {
    let model = CostModel::default();
    let hw = AcceleratorConfig::new(128, 256 * 1024);

    let mut group = c.benchmark_group("cost_model");
    for (name, wl) in [
        ("small_gemm", GemmWorkload::new(16, 64, 32)),
        ("bert_ffn", GemmWorkload::new(128, 1536, 768)),
        ("table1_max", GemmWorkload::new(256, 1677, 1185)),
    ] {
        for df in Dataflow::ALL {
            group.bench_function(format!("{name}/{}", df.mnemonic()), |b| {
                b.iter(|| {
                    let r = model.evaluate(black_box(&wl), black_box(df), black_box(&hw));
                    black_box(r.latency_cycles)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
