//! Criterion bench: one optimizer step of each training stage and of the
//! Table III baselines — the per-step costs behind Tables II/III.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ai2_dse::{DseDataset, DseTask, GenerateConfig};
use ai2_nn::optim::{Adam, Optimizer};
use ai2_nn::Graph;
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelConfig};

fn setup() -> (DseTask, DseDataset, Airchitect2) {
    let task = DseTask::table_i_default();
    let ds = DseDataset::generate(
        &task,
        &GenerateConfig {
            num_samples: 256,
            seed: 3,
            threads: 0,
            ..GenerateConfig::default()
        },
    );
    let model = Airchitect2::new(&ModelConfig::default(), &task, &ds);
    (task, ds, model)
}

fn bench_training(c: &mut Criterion) {
    let (_task, ds, mut model) = setup();
    let prep = model.prepare(&ds);
    let cfg = TrainConfig::default();
    let idx: Vec<usize> = (0..cfg.batch_size.min(prep.len())).collect();
    let batch = prep.batch(&idx);

    c.bench_function("train/stage1_step_b256", |b| {
        let mut opt = Adam::new(1e-3);
        b.iter(|| {
            let mut g = Graph::new(model.store());
            let x = g.constant(batch.features.clone());
            let z = model.forward_encoder(&mut g, x);
            let zn = g.normalize_rows(z);
            let lc = g.info_nce_loss(zn, &batch.labels, cfg.tau);
            let p = model.forward_perf(&mut g, z);
            let lp = g.l1_loss(p, batch.perf.clone());
            let loss = g.add(lc, lp);
            let grads = g.backward(loss);
            drop(g);
            opt.step(model.store_mut(), &grads);
            black_box(())
        })
    });

    let embeddings = model.embeddings(&prep.features);
    let z = embeddings.slice_rows(0, idx.len());
    c.bench_function("train/stage2_step_b256", |b| {
        let mut opt = Adam::new(1e-3);
        b.iter(|| {
            let mut g = Graph::new(model.store());
            let zv = g.constant(z.clone());
            let (pe, buf) = model.forward_decoder(&mut g, zv);
            let l1 = g.unification_loss(pe, batch.pe_encoded.clone(), cfg.alpha, cfg.gamma);
            let l2 = g.unification_loss(buf, batch.buf_encoded.clone(), cfg.alpha, cfg.gamma);
            let loss = g.add(l1, l2);
            let grads = g.backward(loss);
            drop(g);
            opt.step(model.store_mut(), &grads);
            black_box(())
        })
    });
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
