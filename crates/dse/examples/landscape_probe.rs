//! Diagnostic: how isolated is the oracle optimum for the search tests?
use ai2_dse::DseTask;
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;

fn main() {
    let task = DseTask::table_i_default();
    let input = DseInput {
        gemm: GemmWorkload::new(48, 400, 300),
        dataflow: Dataflow::OutputStationary,
    };
    let oracle = task.oracle(&input);
    println!(
        "oracle: {:?} score {} feasible {}",
        oracle.best_point, oracle.best_score, oracle.feasible_points
    );
    let grid = task.score_grid(&input);
    let mut near = 0;
    let mut near5 = 0;
    for s in grid.iter().filter(|s| !s.is_nan()) {
        if *s <= oracle.best_score * 1.10 {
            near += 1;
        }
        if *s <= oracle.best_score * 1.05 {
            near5 += 1;
        }
    }
    println!("points within 10%: {near}, within 5%: {near5}");
    // top-10 points
    let mut idx: Vec<usize> = (0..grid.len()).filter(|&i| !grid[i].is_nan()).collect();
    idx.sort_by(|&a, &b| grid[a].partial_cmp(&grid[b]).unwrap());
    for &i in idx.iter().take(10) {
        let p = task.space().from_flat(i);
        println!(
            "  {:?} -> {} ({} PEs, {} KiB)",
            p,
            grid[i],
            task.space().pe_options()[p.pe_idx],
            task.space().buf_options()[p.buf_idx] / 1024
        );
    }
}
