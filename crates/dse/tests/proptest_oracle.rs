//! Property-based tests of the oracle and design-space invariants.
//!
//! Written as seeded random sweeps (the `proptest` crate is unavailable
//! offline), matching the 48-case budget of the original.

use ai2_dse::{DesignPoint, DseTask};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn arb_input(r: &mut StdRng) -> DseInput {
    DseInput {
        gemm: GemmWorkload::new(
            r.random_range(1u64..=256),
            r.random_range(1u64..=1677),
            r.random_range(1u64..=1185),
        ),
        dataflow: Dataflow::from_index(r.random_range(0usize..3)),
    }
}

#[test]
fn oracle_dominates_random_feasible_points() {
    let task = DseTask::table_i_default();
    let mut r = StdRng::seed_from_u64(0x0DE1);
    for _ in 0..CASES {
        let input = arb_input(&mut r);
        let oracle = task.oracle(&input);
        assert!(task.is_feasible(oracle.best_point));
        for _ in 0..20 {
            let p = DesignPoint {
                pe_idx: r.random_range(0usize..64),
                buf_idx: r.random_range(0usize..12),
            };
            if let Some(s) = task.score(&input, p) {
                assert!(
                    oracle.best_score <= s,
                    "oracle {} beaten by {p:?} with {s}",
                    oracle.best_score
                );
            }
        }
    }
}

#[test]
fn oracle_score_matches_its_point() {
    let task = DseTask::table_i_default();
    let mut r = StdRng::seed_from_u64(0x0DE2);
    for _ in 0..CASES {
        let input = arb_input(&mut r);
        let oracle = task.oracle(&input);
        let recomputed = task.score(&input, oracle.best_point).expect("feasible");
        assert_eq!(oracle.best_score, recomputed);
    }
}

#[test]
fn feasible_count_matches_grid_scan() {
    let task = DseTask::table_i_default();
    let mut r = StdRng::seed_from_u64(0x0DE3);
    for _ in 0..CASES {
        let input = arb_input(&mut r);
        let oracle = task.oracle(&input);
        let by_scan = task
            .space()
            .iter_points()
            .filter(|&p| task.is_feasible(p))
            .count();
        assert_eq!(oracle.feasible_points, by_scan);
    }
}

#[test]
fn score_grid_agrees_with_point_scores() {
    let task = DseTask::table_i_default();
    let mut r = StdRng::seed_from_u64(0x0DE4);
    for _ in 0..CASES {
        let input = arb_input(&mut r);
        let grid = task.score_grid(&input);
        let p = DesignPoint {
            pe_idx: r.random_range(0usize..64),
            buf_idx: r.random_range(0usize..12),
        };
        let flat = task.space().flat_index(p);
        match task.score(&input, p) {
            Some(s) => assert_eq!(grid[flat], s),
            None => assert!(grid[flat].is_nan()),
        }
    }
}
