//! Property-based tests of the oracle and design-space invariants.

use ai2_dse::{DesignPoint, DseTask};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;
use proptest::prelude::*;

fn arb_input() -> impl Strategy<Value = DseInput> {
    (1u64..=256, 1u64..=1677, 1u64..=1185, 0usize..3).prop_map(|(m, n, k, df)| DseInput {
        gemm: GemmWorkload::new(m, n, k),
        dataflow: Dataflow::from_index(df),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn oracle_dominates_random_feasible_points(input in arb_input(), probes in proptest::collection::vec((0usize..64, 0usize..12), 20)) {
        let task = DseTask::table_i_default();
        let oracle = task.oracle(&input);
        prop_assert!(task.is_feasible(oracle.best_point));
        for (pe, buf) in probes {
            let p = DesignPoint { pe_idx: pe, buf_idx: buf };
            if let Some(s) = task.score(&input, p) {
                prop_assert!(
                    oracle.best_score <= s,
                    "oracle {} beaten by {p:?} with {s}",
                    oracle.best_score
                );
            }
        }
    }

    #[test]
    fn oracle_score_matches_its_point(input in arb_input()) {
        let task = DseTask::table_i_default();
        let oracle = task.oracle(&input);
        let recomputed = task.score(&input, oracle.best_point).expect("feasible");
        prop_assert_eq!(oracle.best_score, recomputed);
    }

    #[test]
    fn feasible_count_matches_grid_scan(input in arb_input()) {
        let task = DseTask::table_i_default();
        let oracle = task.oracle(&input);
        let by_scan = task
            .space()
            .iter_points()
            .filter(|&p| task.is_feasible(p))
            .count();
        prop_assert_eq!(oracle.feasible_points, by_scan);
    }

    #[test]
    fn score_grid_agrees_with_point_scores(input in arb_input(), pe in 0usize..64, buf in 0usize..12) {
        let task = DseTask::table_i_default();
        let grid = task.score_grid(&input);
        let p = DesignPoint { pe_idx: pe, buf_idx: buf };
        let flat = task.space().flat_index(p);
        match task.score(&input, p) {
            Some(s) => prop_assert_eq!(grid[flat], s),
            None => prop_assert!(grid[flat].is_nan()),
        }
    }
}
