//! Searcher determinism across engine thread counts.
//!
//! Every searcher is seeded, and every cost query flows through the
//! shared [`EvalEngine`] — whose answers are bit-identical regardless
//! of how many worker threads evaluate them (pinned by the
//! engine-consistency property tests). Together those two facts promise
//! something stronger: an identical seed must produce an **identical
//! search** — same best point, same score bits, same query count, same
//! best-so-far trace — whether the engine runs 1, 2 or 4 threads. This
//! test pins that promise for all five `Searcher` impls, so a future
//! parallelism change that leaks evaluation order into search decisions
//! fails here instead of silently de-reproducing the paper's figures.

use ai2_dse::search::bo::BoSearcher;
use ai2_dse::search::{
    AnnealingSearcher, ConfuciuxSearcher, GammaSearcher, RandomSearcher, SearchResult, Searcher,
};
use ai2_dse::{DseTask, EvalEngine};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;

fn inputs() -> Vec<DseInput> {
    vec![
        DseInput {
            gemm: GemmWorkload::new(48, 400, 300),
            dataflow: Dataflow::OutputStationary,
        },
        DseInput {
            gemm: GemmWorkload::new(96, 96, 640),
            dataflow: Dataflow::WeightStationary,
        },
    ]
}

/// Runs one searcher over every probe input on an engine with the given
/// thread count.
fn run_all(make: &dyn Fn() -> Box<dyn Searcher>, threads: usize) -> Vec<SearchResult> {
    let engine = EvalEngine::with_threads(DseTask::table_i_default(), threads);
    inputs()
        .into_iter()
        .map(|input| make().search(&engine, input, 80))
        .collect()
}

fn assert_identical(name: &str, threads: usize, a: &SearchResult, b: &SearchResult) {
    assert_eq!(
        a.best_point, b.best_point,
        "{name}: best point diverged at {threads} threads"
    );
    assert_eq!(
        a.best_score.to_bits(),
        b.best_score.to_bits(),
        "{name}: best score diverged at {threads} threads"
    );
    assert_eq!(
        a.num_evals, b.num_evals,
        "{name}: query count diverged at {threads} threads"
    );
    assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "{name}: trace length diverged at {threads} threads"
    );
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}: trace[{i}] diverged at {threads} threads"
        );
    }
}

#[test]
fn every_searcher_is_seed_deterministic_across_thread_counts() {
    const SEED: u64 = 0xA1C2;
    type MakeSearcher = Box<dyn Fn() -> Box<dyn Searcher>>;
    let searchers: Vec<(&str, MakeSearcher)> = vec![
        ("random", Box::new(|| Box::new(RandomSearcher::new(SEED)))),
        (
            "annealing",
            Box::new(|| Box::new(AnnealingSearcher::new(SEED))),
        ),
        ("gamma", Box::new(|| Box::new(GammaSearcher::new(SEED)))),
        (
            "confuciux",
            Box::new(|| Box::new(ConfuciuxSearcher::new(SEED))),
        ),
        ("bo", Box::new(|| Box::new(BoSearcher::new(SEED)))),
    ];
    for (name, make) in &searchers {
        let reference = run_all(make, 1);
        for threads in [2usize, 4] {
            let got = run_all(make, threads);
            for (a, b) in reference.iter().zip(&got) {
                assert_identical(name, threads, a, b);
            }
        }
        // and re-running the same seed on the same thread count is a
        // fixed point too (no hidden global state between runs)
        let again = run_all(make, 1);
        for (a, b) in reference.iter().zip(&again) {
            assert_identical(name, 1, a, b);
        }
    }
}
