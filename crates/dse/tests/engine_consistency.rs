//! Property tests: the memoizing [`EvalEngine`] must be **bit-identical**
//! to the direct [`DseTask`] evaluation paths across random inputs,
//! objectives and budgets — cold cache, warm cache, and under concurrent
//! access.

use std::sync::Arc;

use ai2_dse::{Budget, DesignPoint, DseTask, EvalEngine, Objective};
use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_workloads::generator::DseInput;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_input(r: &mut StdRng) -> DseInput {
    DseInput {
        gemm: GemmWorkload::new(
            r.random_range(1u64..=256),
            r.random_range(1u64..=1677),
            r.random_range(1u64..=1185),
        ),
        dataflow: Dataflow::from_index(r.random_range(0usize..3)),
    }
}

fn arb_point(r: &mut StdRng) -> DesignPoint {
    DesignPoint {
        pe_idx: r.random_range(0usize..64),
        buf_idx: r.random_range(0usize..12),
    }
}

/// Exact equality that treats NaN as equal to NaN (score grids mark
/// infeasible points with NaN).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[test]
fn engine_point_queries_are_bit_identical_to_task() {
    let task = DseTask::table_i_default();
    let engine = EvalEngine::new(task.clone());
    let mut r = StdRng::seed_from_u64(0xE001);
    for _ in 0..32 {
        let input = arb_input(&mut r);
        for _ in 0..24 {
            let p = arb_point(&mut r);
            assert_eq!(engine.is_feasible(p), task.is_feasible(p));
            assert!(bits_eq(
                engine.score_unchecked(&input, p),
                task.score_unchecked(&input, p)
            ));
            match (engine.score(&input, p), task.score(&input, p)) {
                (Some(a), Some(b)) => assert!(bits_eq(a, b)),
                (None, None) => {}
                (a, b) => panic!("feasibility disagreement at {p:?}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn engine_oracle_and_grid_are_bit_identical_to_task() {
    let task = DseTask::table_i_default();
    let engine = EvalEngine::new(task.clone());
    let mut r = StdRng::seed_from_u64(0xE002);
    for _ in 0..24 {
        let input = arb_input(&mut r);
        // cold pass and warm (cached) pass must both match the task
        for pass in 0..2 {
            let res = engine.oracle(&input);
            assert_eq!(res, task.oracle(&input), "pass {pass}");
            let eg = engine.score_grid(&input);
            let tg = task.score_grid(&input);
            assert_eq!(eg.len(), tg.len());
            for (i, (a, b)) in eg.iter().zip(&tg).enumerate() {
                assert!(bits_eq(*a, *b), "grid[{i}]: {a} vs {b} (pass {pass})");
            }
        }
    }
}

#[test]
fn engine_matches_task_across_objectives_and_budgets() {
    let mut r = StdRng::seed_from_u64(0xE003);
    let objectives = [Objective::Latency, Objective::Energy, Objective::Edp];
    let budgets = [
        Budget::Edge,
        Budget::Cloud,
        Budget::Unbounded,
        Budget::Custom(0.4),
    ];
    // one engine serves every (objective, budget) combination from a
    // single raw-cost cache
    let base = DseTask::table_i_default();
    let engine = EvalEngine::new(base.clone());
    for _ in 0..6 {
        let input = arb_input(&mut r);
        for objective in objectives {
            for budget in budgets {
                let task = DseTask::new(base.space().clone(), objective, budget, base.cost_model);
                assert_eq!(
                    engine.oracle_with(&input, objective, budget),
                    task.oracle(&input),
                    "{objective:?} under {budget:?}"
                );
            }
        }
    }
}

#[test]
fn concurrent_access_returns_identical_results() {
    let task = DseTask::table_i_default();
    let engine = Arc::new(EvalEngine::new(task.clone()));
    let mut r = StdRng::seed_from_u64(0xE004);
    // a small input set shared by every thread, so cache cells are hit
    // concurrently while they are still being filled
    let inputs: Vec<DseInput> = (0..6).map(|_| arb_input(&mut r)).collect();
    let expected: Vec<_> = inputs.iter().map(|i| task.oracle(i)).collect();
    let expected_grids: Vec<Vec<f64>> = inputs.iter().map(|i| task.score_grid(i)).collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let engine = Arc::clone(&engine);
            let task = &task;
            let inputs = &inputs;
            let expected = &expected;
            let expected_grids = &expected_grids;
            scope.spawn(move || {
                let mut r = StdRng::seed_from_u64(0xE100 + t);
                for _ in 0..20 {
                    let i = r.random_range(0..inputs.len());
                    match r.random_range(0..3u32) {
                        0 => assert_eq!(engine.oracle(&inputs[i]), expected[i]),
                        1 => {
                            let g = engine.score_grid(&inputs[i]);
                            for (a, b) in g.iter().zip(&expected_grids[i]) {
                                assert!(bits_eq(*a, *b));
                            }
                        }
                        _ => {
                            let p = arb_point(&mut r);
                            assert_eq!(engine.score(&inputs[i], p), task.score(&inputs[i], p));
                        }
                    }
                }
            });
        }
    });

    // after the storm, caches are consistent and still answer correctly
    for (input, exp) in inputs.iter().zip(&expected) {
        assert_eq!(engine.oracle(input), *exp);
    }
    let stats = engine.stats();
    assert!(stats.oracle_entries >= inputs.len().min(6));
}

#[test]
fn batch_and_scalar_paths_agree_bitwise() {
    let task = DseTask::table_i_default();
    let engine = EvalEngine::new(task.clone());
    let mut r = StdRng::seed_from_u64(0xE005);
    let inputs: Vec<DseInput> = (0..40).map(|_| arb_input(&mut r)).collect();
    let batch = engine.oracle_batch(&inputs);
    for (input, res) in inputs.iter().zip(&batch) {
        assert_eq!(*res, task.oracle(input));
    }
    let queries: Vec<(DseInput, DesignPoint)> =
        inputs.iter().map(|&i| (i, arb_point(&mut r))).collect();
    let scores = engine.eval_batch(&queries);
    for ((input, p), s) in queries.iter().zip(&scores) {
        assert_eq!(*s, task.score(input, *p));
    }
}

#[test]
fn explicit_analytic_backend_is_bit_identical_to_task() {
    // the CostBackend indirection must not perturb a single bit: an
    // engine built through the named-backend path answers exactly like
    // the direct DseTask across random inputs, points and objectives
    use ai2_dse::BackendId;
    let task = DseTask::table_i_default();
    let engine = EvalEngine::for_backend(task.clone(), BackendId::Analytic);
    assert_eq!(engine.backend_id(), BackendId::Analytic);
    let mut r = StdRng::seed_from_u64(0xE006);
    for _ in 0..16 {
        let input = arb_input(&mut r);
        assert_eq!(engine.oracle(&input), task.oracle(&input));
        for _ in 0..8 {
            let p = arb_point(&mut r);
            assert!(bits_eq(
                engine.score_unchecked(&input, p),
                task.score_unchecked(&input, p)
            ));
            assert!(bits_eq(engine.area_mm2(p), {
                task.cost_model.area_mm2(&task.space().config(p))
            }));
        }
    }
}

#[test]
fn per_backend_engines_never_share_cached_answers() {
    // two engines over the same task but different backends: each must
    // answer from its own backend even with hot caches, and warming one
    // must leave the other's counters untouched
    use ai2_dse::BackendId;
    let task = DseTask::table_i_default();
    let analytic = EvalEngine::for_backend(task.clone(), BackendId::Analytic);
    let systolic = EvalEngine::for_backend(task.clone(), BackendId::Systolic);
    let mut r = StdRng::seed_from_u64(0xE007);
    let mut diverged = 0usize;
    for _ in 0..12 {
        let input = arb_input(&mut r);
        // cold and warm passes: answers are stable per engine
        let a1 = analytic.oracle(&input);
        let s1 = systolic.oracle(&input);
        assert_eq!(a1, analytic.oracle(&input));
        assert_eq!(s1, systolic.oracle(&input));
        // feasible sets agree (shared area model), scores generally not
        assert_eq!(a1.feasible_points, s1.feasible_points);
        if a1.best_score.to_bits() != s1.best_score.to_bits() {
            diverged += 1;
        }
        // the analytic engine stays the exact DseTask oracle throughout
        assert_eq!(a1, task.oracle(&input));
    }
    assert!(
        diverged >= 8,
        "backends agreed on {} of 12 oracles — caches may be crossing",
        12 - diverged
    );
    // the systolic engine's caches were exercised without ever touching
    // the analytic engine's backend
    assert!(systolic.stats().oracle_hits >= 12);
    assert!(analytic.stats().oracle_hits >= 12);
}

#[test]
fn dataset_generation_is_identical_direct_and_engine_shared() {
    use ai2_dse::{DseDataset, GenerateConfig};
    let task = DseTask::table_i_default();
    let cfg = GenerateConfig {
        num_samples: 40,
        seed: 99,
        threads: 3,
        ..GenerateConfig::default()
    };
    let direct = DseDataset::generate(&task, &cfg);
    let engine = EvalEngine::new(task.clone());
    let via_engine = DseDataset::generate_with(&engine, &cfg);
    assert_eq!(direct, via_engine);
    // and a second generation through the warm cache is still identical
    let warm = DseDataset::generate_with(&engine, &cfg);
    assert_eq!(direct, warm);
}
