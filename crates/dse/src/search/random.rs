//! Uniform random search.

use ai2_tensor::rng;
use ai2_workloads::generator::DseInput;
use rand::Rng;

use crate::engine::EvalEngine;
use crate::search::{SearchContext, SearchResult, Searcher};
use crate::space::DesignPoint;

/// Samples design points uniformly at random — the sanity baseline every
/// smarter searcher must beat in convergence speed.
#[derive(Debug, Clone)]
pub struct RandomSearcher {
    seed: u64,
}

impl RandomSearcher {
    /// Creates a seeded random searcher.
    pub fn new(seed: u64) -> Self {
        RandomSearcher { seed }
    }
}

impl Searcher for RandomSearcher {
    fn search(
        &mut self,
        engine: &EvalEngine,
        input: DseInput,
        budget_evals: usize,
    ) -> SearchResult {
        let mut r = rng::seeded(self.seed);
        let mut ctx = SearchContext::new(engine, input);
        let space = engine.space();
        for _ in 0..budget_evals {
            let p = DesignPoint {
                pe_idx: r.random_range(0..space.num_pe_choices()),
                buf_idx: r.random_range(0..space.num_buf_choices()),
            };
            ctx.evaluate(p);
        }
        SearchResult::from_context(ctx)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests::{assert_searcher_close_to_oracle, test_input};

    #[test]
    fn random_search_respects_budget() {
        let engine = EvalEngine::table_i_default();
        let mut s = RandomSearcher::new(1);
        let res = s.search(&engine, test_input(), 50);
        assert_eq!(res.num_evals, 50);
        assert_eq!(res.trace.len(), 50);
    }

    #[test]
    fn random_search_gets_reasonably_close_with_many_samples() {
        // 400 of 768 grid points sampled → should land within 15% of the oracle
        assert_searcher_close_to_oracle(&mut RandomSearcher::new(2), 400, 1.15);
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let engine = EvalEngine::table_i_default();
        let a = RandomSearcher::new(3).search(&engine, test_input(), 30);
        let b = RandomSearcher::new(3).search(&engine, test_input(), 30);
        assert_eq!(a, b);
    }
}
